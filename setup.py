"""Setuptools shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package installs in offline environments that lack the ``wheel`` package
(``python setup.py develop`` / ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
