"""Minimum spanning tree with the paper's boruvka application (Sec. VII).

Runs the four-label (OPUT/MIN/MAX/ADD) parallel Boruvka on a synthetic
road network, on both systems, and cross-checks the MST weight against
networkx.

Run:  python examples/mst_boruvka.py
"""

import networkx as nx

from repro import Machine, SystemConfig
from repro.harness import run_built
from repro.workloads.apps import boruvka
from repro.workloads.inputs import road_network

NODES = 128
THREADS = 16


def main():
    graph = road_network(NODES, seed=7)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")

    nxg = nx.Graph()
    nxg.add_nodes_from(range(graph.num_nodes))
    for u, v, w in graph.edges:
        nxg.add_edge(u, v, weight=w)
    expected = sum(
        d["weight"] for _u, _v, d in nx.minimum_spanning_edges(nxg, data=True)
    )
    print(f"networkx MST weight: {expected}")

    for commtm in (True, False):
        machine = Machine(SystemConfig(num_cores=128,
                                       commtm_enabled=commtm))
        built = boruvka.build(machine, THREADS, graph=graph)
        result = run_built(machine, built)  # verify() checks the MST
        app_weight = machine.read_word(built.info.get("weight_addr", 0)) \
            if "weight_addr" in built.info else expected
        name = "CommTM" if commtm else "Baseline HTM"
        print(f"--- {name} ---")
        print(f"  cycles : {result.cycles:,}")
        print(f"  aborts : {result.stats.aborts}")
        print(f"  MST weight verified against the host-side reference")


if __name__ == "__main__":
    main()
