"""Speculative loop parallelization (Sec. III-D "Other contexts").

A loop with (a) a rare loop-carried dependence through a key-value map and
(b) a reduction variable, parallelized with ordered transactions
(thread-level speculation on top of the HTM). With CommTM, the reduction
variable uses commutative ADD updates, so it no longer serializes the
speculation; on the baseline every iteration conflicts on it.

Run:  python examples/speculative_loop.py
"""

from repro import LabeledLoad, LabeledStore, Load, Machine, Store, SystemConfig, Work
from repro.core.labels import add_label
from repro.mem.address import WORD_BYTES
from repro.runtime.ordered import parallel_for

THREADS = 8
ITERATIONS = 128
CELLS = 32


def run(commtm: bool):
    machine = Machine(SystemConfig(num_cores=128, commtm_enabled=commtm))
    ADD = machine.register_label(add_label())
    cells = machine.alloc.alloc_words(CELLS)
    total = machine.alloc.alloc_line()

    def iteration(ctx, i):
        # Loop body: read a cell, compute, write the next cell (a sparse
        # loop-carried dependence), and accumulate into the reduction var.
        src = cells + (i % CELLS) * WORD_BYTES
        dst = cells + ((i * 7 + 1) % CELLS) * WORD_BYTES
        value = yield Load(src)
        yield Work(40)
        yield Store(dst, value + i)
        acc = yield LabeledLoad(total, ADD)
        yield LabeledStore(total, ADD, acc + i)

    bodies, region = parallel_for(machine, THREADS, ITERATIONS, iteration)
    result = machine.run(bodies)
    machine.flush_reducible()

    name = "CommTM" if commtm else "Baseline HTM"
    print(f"--- {name} ---")
    print(f"  committed in order : token = "
          f"{machine.read_word(region.token_addr)} / {ITERATIONS}")
    print(f"  reduction variable : {machine.read_word(total)} "
          f"(expected {sum(range(ITERATIONS))})")
    print(f"  cycles             : {result.cycles:,}")
    print(f"  aborts             : {result.stats.aborts}")
    assert machine.read_word(total) == sum(range(ITERATIONS))
    return result.cycles


if __name__ == "__main__":
    commtm_cycles = run(commtm=True)
    baseline_cycles = run(commtm=False)
    print(f"\nCommTM speedup on the speculative loop: "
          f"{baseline_cycles / commtm_cycles:.2f}x")
