"""Defining your own commutative operation: a concurrent bitmap (set union).

CommTM is not limited to the built-in labels — any operation with an
identity element, an associative-commutative merge, and (optionally) a
splitter can be accelerated. This example builds an OR label for bitmap
words: threads set bits concurrently (semantically commutative set-union
inserts), and a conventional read triggers the OR-reduction.

Run:  python examples/custom_label.py
"""

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, SystemConfig
from repro.core.labels import wordwise_label

THREADS = 16
BITS_PER_THREAD = 24
TOTAL_BITS = 512  # one 64-bit word per 64 bits -> 8 words, one line


def or_label():
    """Bitwise OR: identity 0, merge = a | b."""
    return wordwise_label("OR", identity=0, reduce_word=lambda a, b: a | b)


def main():
    machine = Machine(SystemConfig(num_cores=128))
    OR = machine.register_label(or_label())
    bitmap = machine.alloc.alloc_line()  # 8 words x 64 bits

    def set_bit(ctx, bit):
        word = bitmap + (bit // 64) * 8
        mask = 1 << (bit % 64)
        value = yield LabeledLoad(word, OR)
        if not value & mask:
            yield LabeledStore(word, OR, value | mask)

    def popcount(ctx):
        total = 0
        for w in range(8):
            value = yield Load(bitmap + w * 8)  # triggers OR-reductions
            total += bin(value).count("1")
        return total

    expected = set()

    def body(ctx):
        rng = ctx.rng
        for _ in range(BITS_PER_THREAD):
            bit = rng.randrange(TOTAL_BITS)
            expected.add(bit)
            yield Atomic(set_bit, bit)

    result = machine.run_spmd(body, THREADS)
    machine.flush_reducible()

    got = 0
    for w in range(8):
        got += bin(machine.read_word(bitmap + w * 8)).count("1")

    print(f"bits set       : {got} (expected {len(expected)})")
    print(f"cycles         : {result.stats.parallel_cycles:,}")
    print(f"aborts         : {result.stats.aborts}")
    print(f"reductions     : {result.stats.reductions}")
    assert got == len(expected)


if __name__ == "__main__":
    main()
