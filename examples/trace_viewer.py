"""Export a Perfetto trace and an abort-attribution report.

The same contended counter as ``fig1_timeline.py``, observed by the
structured observability layer (``repro.obs``) instead of the flat ASCII
tracer. Runs it on both systems and writes:

* ``trace_baseline.json`` / ``trace_commtm.json`` — Chrome/Perfetto
  traces (``repro-obs-trace/2``): one lane per core, transaction spans
  with attempt and outcome, conflict/NACK/reduction/gather instants,
  backoff intervals, and counter tracks for outstanding U lines and the
  abort rate. Open either file at https://ui.perfetto.dev (or
  chrome://tracing).
* ``trace_commtm_vector.json`` — the same CommTM run on the vector
  backend, which adds two lanes: **engine (vector)** (per-epoch spans
  annotated with op count and fence causes, gate-rebind and drain
  markers, certifier mispredicts) and **host (wall µs)** (the
  HostProfiler's phase accounting — epoch classify, kernel exec, strict
  stepping — in its own wall-clock timebase).
* A printed abort-attribution table — the paper's Fig. 18 wasted-cycle
  causes, refined to address/label level: which line, under which label,
  aborted whom, blamed on which attacking cores.

Observation never changes a simulated number (``tests/test_obs.py``
asserts bit-identical cycles and stats across all micro workloads, and
``tests/test_vector_obs_parity.py`` extends that to identical obs
payloads across backends), so what you see in the trace is exactly what
an unobserved run does.

Run:  python examples/trace_viewer.py
"""

import json

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Work
from repro.core.labels import add_label
from repro.obs import chrome_trace
from repro.params import small_config

WRITERS = 7
INCREMENTS = 12


def run(commtm: bool, backend: str = None) -> None:
    config = small_config(num_cores=8, commtm_enabled=commtm)
    machine = Machine(config, observe=True, backend=backend)
    add = machine.register_label(add_label())
    counter = machine.alloc.alloc_line()

    def increment(ctx):
        value = yield LabeledLoad(counter, add)
        yield Work(20)
        yield LabeledStore(counter, add, value + 1)

    def read(ctx):
        value = yield Load(counter)
        return value

    def body(ctx):
        if ctx.tid < WRITERS:
            for _ in range(INCREMENTS):
                yield Atomic(increment)
        else:
            yield Work(400)
            yield Atomic(read)

    machine.run_spmd(body, WRITERS + 1)
    machine.flush_reducible()

    name = "commtm" if commtm else "baseline"
    if backend:
        name = f"{name}_{backend}"
    path = f"trace_{name}.json"
    with open(path, "w") as fh:
        json.dump(chrome_trace(machine.obs, point=name), fh)

    payload = machine.obs.payload()
    summary = payload["lifecycle"]["summary"]
    print(f"--- {name}: {WRITERS} incrementers + 1 reader ---")
    print(f"wrote {path} (open at https://ui.perfetto.dev)")
    print(f"transactions = {summary['transactions']}, "
          f"aborted attempts = {summary['aborted_attempts']}, "
          f"wasted cycles = {summary['wasted_cycles']}")

    rows = payload["lifecycle"]["abort_attribution"]
    if rows:
        print("abort attribution (line, label, cause -> aborts, wasted, "
              "attackers):")
        for row in rows[:5]:
            attackers = ", ".join(f"core {c}×{n}"
                                  for c, n in row["attackers"].items())
            print(f"  line {row['line']} label={row['label']} "
                  f"{row['cause']!r}: {row['aborts']} aborts, "
                  f"{row['wasted_cycles']} cycles [{attackers}]")
    else:
        print("abort attribution: no aborts — commutative updates "
              "ran conflict-free in U state")
    hot = payload["metrics"]["hot_lines"][0]
    print(f"hottest line: {hot['line']} ({hot['touches']} touches, "
          f"{hot['labeled_touches']} labeled)")

    if backend == "vector":
        epochs = [e for e in payload["trace"]["vector_events"]
                  if e.get("name") == "epoch"]
        phases = payload["hostprof"]["phases"]
        top = sorted(phases.items(), key=lambda kv: -kv[1]["ns"])[:3]
        print(f"engine lane: {len(epochs)} epoch span(s), "
              f"{len(payload['trace']['vector_events'])} event(s) total")
        print("host lane (top phases): "
              + ", ".join(f"{n} {p['ns'] / 1e6:.2f}ms" for n, p in top))
    print()


if __name__ == "__main__":
    run(commtm=False)
    run(commtm=True)
    run(commtm=True, backend="vector")
