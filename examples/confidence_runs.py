"""Statistically-sound measurements (the paper's Sec. V protocol).

"To achieve statistically significant results, we introduce small amounts
of non-determinism, and perform enough runs to achieve 95% confidence
intervals <= 1% on all results." This example measures the counter
microbenchmark's CommTM speedup at 16 threads with that protocol.

Run:  python examples/confidence_runs.py
"""

from repro.harness import run_until_confident, run_workload
from repro.workloads.micro import counter

THREADS = 16
OPS = 2_000


def cycles(commtm: bool, seed: int) -> float:
    return run_workload(counter.build, THREADS, num_cores=128,
                        commtm=commtm, seed=seed, total_ops=OPS).cycles


def main():
    print(f"counter, {THREADS} threads, {OPS} ops, 95% CI target 1%\n")
    commtm = run_until_confident(lambda seed: cycles(True, seed),
                                 target_relative=0.01, max_runs=10)
    base = run_until_confident(lambda seed: cycles(False, seed),
                               target_relative=0.01, max_runs=10)
    print(f"CommTM cycles   : {commtm}")
    print(f"Baseline cycles : {base}")
    print(f"speedup         : {base.mean / commtm.mean:.1f}x")


if __name__ == "__main__":
    main()
