"""Reproduce the paper's Fig. 1 as an execution timeline.

Transactions X0-X4 increment a shared counter and X5 reads it. On a
conventional HTM the increments serialize (a chain of aborts and
retries); with CommTM they run concurrently in U state, and only the
reader triggers a reduction.

Run:  python examples/fig1_timeline.py
"""

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, SystemConfig, Work
from repro.core.labels import add_label
from repro.params import small_config
from repro.sim.trace import render_timeline

WRITERS = 5


def run(commtm: bool) -> None:
    config = small_config(num_cores=8, commtm_enabled=commtm,
                          trace_enabled=True)
    machine = Machine(config)
    add = machine.register_label(add_label())
    counter = machine.alloc.alloc_line()

    def increment(ctx):
        value = yield LabeledLoad(counter, add)
        yield Work(20)
        yield LabeledStore(counter, add, value + 1)

    def read(ctx):
        value = yield Load(counter)
        return value

    def body(ctx):
        if ctx.tid < WRITERS:
            for _ in range(2):
                yield Atomic(increment)   # X0..X4
        else:
            yield Work(150)
            value = yield Atomic(read)    # X5
            assert value <= 2 * WRITERS

    machine.run_spmd(body, WRITERS + 1)
    machine.flush_reducible()

    name = "CommTM" if commtm else "Conventional HTM"
    print(render_timeline(
        machine.tracer,
        title=f"--- {name}: X0-X4 increment, X5 reads ---",
    ))
    print(f"final counter = {machine.read_word(counter)}, "
          f"aborts = {machine.stats.aborts}, "
          f"reductions = {machine.stats.reductions}\n")


if __name__ == "__main__":
    run(commtm=False)
    run(commtm=True)
