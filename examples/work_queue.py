"""A work-sharing queue built on the commutative linked list (Sec. VI).

Producers enqueue task descriptors; consumers dequeue and "execute" them.
Enqueues and dequeues are semantically commutative (order is unimportant),
so with CommTM each thread operates on its local partial list; an empty
consumer issues a gather request, and the linked-list splitter donates the
head element of another thread's partial list (Fig. 11b).

Run:  python examples/work_queue.py
"""

from repro import Atomic, Machine, SystemConfig, Work
from repro.datatypes import ConcurrentLinkedList

PRODUCERS = 8
CONSUMERS = 8
TASKS_PER_PRODUCER = 50


def run(commtm: bool):
    machine = Machine(SystemConfig(num_cores=128, commtm_enabled=commtm))
    queue = ConcurrentLinkedList(machine)
    executed = []

    def producer(ctx):
        for i in range(TASKS_PER_PRODUCER):
            yield Work(20)  # produce the task
            yield Atomic(queue.enqueue, (ctx.tid, i))

    def consumer(ctx):
        idle = 0
        while idle < 30:
            task = yield Atomic(queue.dequeue)
            if task is None:
                idle += 1
                yield Work(10)
                continue
            idle = 0
            yield Work(50)  # execute the task
            executed.append(task)

    bodies = [producer] * PRODUCERS + [consumer] * CONSUMERS
    result = machine.run(bodies)
    machine.flush_reducible()

    name = "CommTM" if commtm else "Baseline HTM"
    print(f"--- {name} ---")
    print(f"  tasks executed : {len(executed)} / "
          f"{PRODUCERS * TASKS_PER_PRODUCER}")
    print(f"  cycles         : {result.cycles:,}")
    print(f"  aborts         : {result.stats.aborts}")
    print(f"  gathers        : {result.stats.gathers}")
    assert len(set(executed)) == len(executed), "a task ran twice!"
    return result.cycles


if __name__ == "__main__":
    commtm_cycles = run(commtm=True)
    baseline_cycles = run(commtm=False)
    print(f"\nCommTM speedup: {baseline_cycles / commtm_cycles:.1f}x")
