"""Quickstart: a contended shared counter on CommTM vs the baseline HTM.

This is the paper's Fig. 1 scenario: many transactions increment one
counter. On a conventional HTM every increment conflicts; with CommTM the
increments are labeled commutative updates that proceed concurrently in
U-state cache lines.

Run:  python examples/quickstart.py
"""

from repro import Atomic, LabeledLoad, LabeledStore, Machine, SystemConfig
from repro.core.labels import add_label

THREADS = 32
INCREMENTS_PER_THREAD = 200


def run(commtm: bool) -> None:
    config = SystemConfig(num_cores=128, commtm_enabled=commtm)
    machine = Machine(config)
    add = machine.register_label(add_label())
    counter = machine.alloc.alloc_line()

    def increment(ctx):
        value = yield LabeledLoad(counter, add)
        yield LabeledStore(counter, add, value + 1)

    def body(ctx):
        for _ in range(INCREMENTS_PER_THREAD):
            yield Atomic(increment)

    result = machine.run_spmd(body, THREADS)
    machine.flush_reducible()

    name = "CommTM" if commtm else "Baseline HTM"
    stats = result.stats
    print(f"--- {name} ---")
    print(f"  final counter : {machine.read_word(counter)}")
    print(f"  cycles        : {result.cycles:,}")
    print(f"  commits       : {stats.commits}")
    print(f"  aborts        : {stats.aborts}")
    print(f"  GETU requests : {stats.getu}")
    print(f"  reductions    : {stats.reductions}")
    return result.cycles


if __name__ == "__main__":
    expected = THREADS * INCREMENTS_PER_THREAD
    print(f"{THREADS} threads x {INCREMENTS_PER_THREAD} increments "
          f"(expected total: {expected})\n")
    commtm_cycles = run(commtm=True)
    baseline_cycles = run(commtm=False)
    print(f"\nCommTM speedup over the baseline: "
          f"{baseline_cycles / commtm_cycles:.1f}x")
