#!/usr/bin/env python
"""Render an observability hostprof artifact as a Markdown summary.

Reads a ``repro-obs-hostprof/1`` JSON file (written by ``python -m
repro.harness ... --hostprof-out``), prints a phase-accounting table to
stdout, and appends the same table to ``$GITHUB_STEP_SUMMARY`` when that
variable is set — so the CI bench-smoke leg surfaces where host time goes
(simulate vs verify vs build; epoch classify vs kernel exec vs strict
stepping on the vector backend) without anyone downloading the artifact.

Optionally takes a ``--report`` run-report JSON (``repro-obs-report/1``)
and adds each point's vector-engagement block (epochs, fused txs, kernel
reductions, gate state) next to its host phases.

Usage::

    python tools/obs_summary.py obs-hostprof.json [--report obs-report.json]
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _fmt_ns(ns: int) -> str:
    if ns >= 1_000_000_000:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1_000_000:
        return f"{ns / 1e6:.1f}ms"
    return f"{ns / 1e3:.0f}µs"


def _phase_rows(section: dict) -> list:
    phases = section.get("phases", {})
    order = sorted(phases.items(), key=lambda kv: -kv[1]["ns"])
    return [(name, p["ns"], p["calls"], p["share"]) for name, p in order]


def _engagement_by_point(report: dict) -> dict:
    out = {}
    for point in report.get("points", []):
        host = point.get("host", {})
        if "vector_engagement" in host:
            # Same label format as harness.artifacts.point_label, so the
            # block lands next to the matching hostprof section.
            system = "commtm" if point.get("commtm") else "baseline"
            label = (f"{point.get('name', '?')} "
                     f"t={point.get('num_threads', '?')} {system}")
            out[label] = host["vector_engagement"]
    return out


def render(doc: dict, engagement: dict) -> list:
    lines = [
        "## Observability: host phase accounting",
        "",
        f"experiment: **{doc.get('experiment', '?')}** "
        f"(`{doc.get('schema', '?')}`)",
        "",
    ]

    harness = doc.get("harness", {})
    if harness.get("phases"):
        lines += [
            "### Harness",
            "",
            "| phase | wall | calls | share |",
            "|---|---:|---:|---:|",
        ]
        for name, ns, calls, share in _phase_rows(harness):
            lines.append(f"| {name} | {_fmt_ns(ns)} | {calls} "
                         f"| {share:.1%} |")
        lines.append("")

    for point in doc.get("points", []):
        name = point.get("name", "?")
        section = point.get("hostprof", {})
        lines += [
            f"### {name}",
            "",
            "| phase | wall | calls | share |",
            "|---|---:|---:|---:|",
        ]
        for pname, ns, calls, share in _phase_rows(section):
            lines.append(f"| {pname} | {_fmt_ns(ns)} | {calls} "
                         f"| {share:.1%} |")
        eng = engagement.get(name)
        if eng:
            causes = ", ".join(f"{k}={v}" for k, v in
                               sorted(eng.get("fence_causes", {}).items())) \
                or "none"
            lines += [
                "",
                f"vector engagement: {eng.get('epochs', 0)} epoch(s), "
                f"{eng.get('epoch_ops', 0)} op(s), "
                f"{eng.get('fused_txs', 0)} fused tx(s), "
                f"{eng.get('kernel_reductions', 0)} kernel reduction(s), "
                f"gated={'yes' if eng.get('gated') else 'no'}; "
                f"fences: {causes}",
            ]
        lines.append("")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Markdown summary of a repro-obs-hostprof/1 artifact.")
    parser.add_argument("hostprof", help="hostprof JSON (--hostprof-out)")
    parser.add_argument("--report", default=None,
                        help="optional run-report JSON (--report-json) for "
                             "per-point vector-engagement blocks")
    args = parser.parse_args(argv)

    try:
        with open(args.hostprof) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs_summary: cannot read {args.hostprof}: {exc}",
              file=sys.stderr)
        return 2

    engagement = {}
    if args.report:
        try:
            with open(args.report) as fh:
                engagement = _engagement_by_point(json.load(fh))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"obs_summary: cannot read {args.report}: {exc} "
                  "(continuing without engagement)", file=sys.stderr)

    lines = render(doc, engagement)
    print("\n".join(lines))

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write("\n".join(lines) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
