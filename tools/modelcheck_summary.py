#!/usr/bin/env python
"""Run the exhaustive model checker and publish a CI job summary.

Invokes ``python -m repro.analysis modelcheck --json`` as a subprocess —
so CI exercises the same CLI surface and exit-code contract users get —
prints the explored-state count to stdout, appends a Markdown table to
``$GITHUB_STEP_SUMMARY`` when that variable is set, and propagates the
CLI's exit code (0 clean / 1 findings / 2 internal error).

Usage::

    PYTHONPATH=src python tools/modelcheck_summary.py [--budget 300] \
        [extra modelcheck args...]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    cmd = [sys.executable, "-m", "repro.analysis", "modelcheck",
           "--json"] + argv
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.stderr:
        sys.stderr.write(proc.stderr)
    try:
        payload = json.loads(proc.stdout)
    except json.JSONDecodeError:
        sys.stdout.write(proc.stdout)
        print("modelcheck_summary: CLI produced no JSON "
              f"(exit {proc.returncode})", file=sys.stderr)
        return proc.returncode if proc.returncode else 2

    mc = payload.get("modelcheck", {})
    states = mc.get("states", 0)
    transitions = mc.get("transitions", 0)
    exhausted = mc.get("exhausted", False)
    errors = payload.get("errors", 0)
    warnings = payload.get("warnings", 0)
    print(f"modelcheck: {states} states / {transitions} transitions "
          f"explored ({mc.get('cores')} cores x {mc.get('lines')} "
          f"line(s), depth {mc.get('depth')}); "
          f"{'exhausted' if exhausted else 'BUDGET CUT'}; "
          f"{errors} error(s), {warnings} warning(s)")
    for row in mc.get("per_label", []):
        print(f"  {row['label']:<5s} {row['states']:6d} states "
              f"{row['transitions']:7d} transitions "
              f"{row['elapsed_s']:7.2f}s "
              f"{'exhausted' if row['exhausted'] else 'BUDGET CUT'} "
              f"{row['findings']} finding(s)")
    for f in payload.get("findings", []):
        print(f"  {f['severity']}: [{f['pass']}:{f['check']}] "
              f"{f['message']}")

    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        lines = [
            "## Model check (MESI+U, bounded configs)",
            "",
            f"**{states} states / {transitions} transitions** explored "
            f"across {len(mc.get('per_label', []))} labels "
            f"({mc.get('cores')} cores × {mc.get('lines')} line(s), "
            f"depth {mc.get('depth')}) — "
            f"{'exhausted' if exhausted else '**budget cut**'}, "
            f"{errors} error(s), {warnings} warning(s).",
            "",
            "| label | states | transitions | time (s) | exhausted "
            "| findings |",
            "|---|---:|---:|---:|---|---:|",
        ]
        for row in mc.get("per_label", []):
            lines.append(
                f"| {row['label']} | {row['states']} "
                f"| {row['transitions']} | {row['elapsed_s']:.2f} "
                f"| {'yes' if row['exhausted'] else 'NO'} "
                f"| {row['findings']} |")
        with open(summary_path, "a") as fh:
            fh.write("\n".join(lines) + "\n")

    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
