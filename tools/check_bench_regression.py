"""Non-gating perf-regression check for CI's bench-smoke job.

Compares a freshly measured ``BENCH_sim_throughput.json`` against the
committed baseline copy and emits a GitHub Actions ``::warning::``
annotation for every single-run throughput entry that dropped by more
than the threshold. Baselines are per backend: the interpreted engine's
``single_run_ops_per_sec`` and the vector backend's
``single_run_ops_per_sec_vector`` are each compared like-for-like. Always exits 0: CI runners are far too noisy
for wall-clock numbers to gate a merge — the warnings exist so a real
hot-loop regression shows up on the PR instead of three PRs later.

Usage::

    python tools/check_bench_regression.py BASELINE.json FRESH.json

The committed baseline is measured with the full benchmark config while
CI measures with ``REPRO_BENCH_SMOKE=1`` (smaller runs, fewer reps).
Ops-per-second is a rate, so the two configs land in the same ballpark
and the comparison is still worth making — but when the documents
disagree on ``smoke`` the check says so up front, so a warning can be
read with the config difference (and the runner's speed) in mind.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Fractional drop in ops/sec that triggers a warning annotation.
THRESHOLD = 0.20


#: Per-backend single-run maps, checked against the like-for-like
#: baseline map: interp vs interp, vector vs vector. Throughputs differ
#: by design between backends, so cross-backend comparison would be
#: noise.
RUN_MAPS = (
    ("single_run_ops_per_sec", "interp"),
    ("single_run_ops_per_sec_vector", "vector"),
)

#: Per-workload floors for the interleaved interp-vs-vector speedup
#: (``backend_ab[name].speedup``). Unlike the ops/sec comparison these
#: are absolute: the ratio interleaves both backends in one process, so
#: host speed cancels and the floor holds across machines. kmeans and
#: the CommTM counter must keep their epoch-path wins; the baseline
#: counter never engages epochs, so its floor asserts the adaptive gate
#: keeps the backend within noise of the interpreted engine rather than
#: regressing behind it.
VECTOR_SPEEDUP_FLOORS = {
    "counter_commtm": 5.0,
    "counter_baseline": 0.98,
    "kmeans_commtm": 1.3,
}

#: Smoke configs run points too short for the ratios to stabilize (the
#: epoch path amortizes per-run setup); floors are held with this slack.
SMOKE_FLOOR_SLACK = 0.5


def check(baseline: dict, fresh: dict) -> list:
    """Warning strings for every entry that regressed past THRESHOLD."""
    warnings = []
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        print(f"note: bench configs differ (baseline "
              f"smoke={baseline.get('smoke')}, fresh "
              f"smoke={fresh.get('smoke')}); ops/sec is a rate, so the "
              f"comparison holds approximately, but read warnings with "
              f"the config difference in mind")
    for map_key, backend in RUN_MAPS:
        base_runs = baseline.get(map_key, {})
        fresh_runs = fresh.get(map_key, {})
        if base_runs and not fresh_runs:
            # The whole map is absent — a fresh run without numpy has no
            # vector numbers; one missing warning beats one per entry.
            warnings.append(
                f"[{backend}] baseline has entries but none were measured")
            continue
        for name, base_ops in sorted(base_runs.items()):
            fresh_ops = fresh_runs.get(name)
            if fresh_ops is None:
                warnings.append(
                    f"[{backend}] {name}: present in baseline but not "
                    f"measured")
                continue
            if base_ops <= 0:
                continue
            drop = 1.0 - fresh_ops / base_ops
            if drop > THRESHOLD:
                warnings.append(
                    f"[{backend}] {name}: {fresh_ops:,} ops/s is {drop:.0%} "
                    f"below the baseline {base_ops:,} ops/s "
                    f"(threshold {THRESHOLD:.0%})")

    ab = fresh.get("backend_ab", {})
    if ab:
        slack = SMOKE_FLOOR_SLACK if fresh.get("smoke") else 1.0
        for name, floor in sorted(VECTOR_SPEEDUP_FLOORS.items()):
            entry = ab.get(name)
            if entry is None:
                warnings.append(
                    f"[vector] {name}: no backend_ab speedup measured "
                    f"(floor {floor}x)")
                continue
            speedup = entry.get("speedup", 0)
            if speedup < floor * slack:
                warnings.append(
                    f"[vector] {name}: interp-vs-vector speedup "
                    f"{speedup}x is below the floor {floor}x"
                    + (f" (smoke slack {slack})" if slack != 1.0 else ""))
    return warnings


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: check_bench_regression.py BASELINE.json FRESH.json")
        return 0  # non-gating even on misuse
    baseline_path, fresh_path = Path(args[0]), Path(args[1])
    try:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::bench regression check skipped: {exc}")
        return 0
    warnings = check(baseline, fresh)
    for message in warnings:
        print(f"::warning::bench: {message}")
    if not warnings:
        print(f"bench regression check: no entry dropped more than "
              f"{THRESHOLD:.0%} vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
