"""Non-gating perf-regression check for CI's bench-smoke job.

Compares a freshly measured ``BENCH_sim_throughput.json`` against the
committed baseline copy and emits a GitHub Actions ``::warning::``
annotation for every ``single_run_ops_per_sec`` entry that dropped by
more than the threshold. Always exits 0: CI runners are far too noisy
for wall-clock numbers to gate a merge — the warnings exist so a real
hot-loop regression shows up on the PR instead of three PRs later.

Usage::

    python tools/check_bench_regression.py BASELINE.json FRESH.json

The committed baseline is measured with the full benchmark config while
CI measures with ``REPRO_BENCH_SMOKE=1`` (smaller runs, fewer reps).
Ops-per-second is a rate, so the two configs land in the same ballpark
and the comparison is still worth making — but when the documents
disagree on ``smoke`` the check says so up front, so a warning can be
read with the config difference (and the runner's speed) in mind.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Fractional drop in ops/sec that triggers a warning annotation.
THRESHOLD = 0.20


def check(baseline: dict, fresh: dict) -> list:
    """Warning strings for every entry that regressed past THRESHOLD."""
    warnings = []
    if bool(baseline.get("smoke")) != bool(fresh.get("smoke")):
        print(f"note: bench configs differ (baseline "
              f"smoke={baseline.get('smoke')}, fresh "
              f"smoke={fresh.get('smoke')}); ops/sec is a rate, so the "
              f"comparison holds approximately, but read warnings with "
              f"the config difference in mind")
    base_runs = baseline.get("single_run_ops_per_sec", {})
    fresh_runs = fresh.get("single_run_ops_per_sec", {})
    for name, base_ops in sorted(base_runs.items()):
        fresh_ops = fresh_runs.get(name)
        if fresh_ops is None:
            warnings.append(f"{name}: present in baseline but not measured")
            continue
        if base_ops <= 0:
            continue
        drop = 1.0 - fresh_ops / base_ops
        if drop > THRESHOLD:
            warnings.append(
                f"{name}: {fresh_ops:,} ops/s is {drop:.0%} below the "
                f"baseline {base_ops:,} ops/s (threshold {THRESHOLD:.0%})")
    return warnings


def main(argv=None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 2:
        print("usage: check_bench_regression.py BASELINE.json FRESH.json")
        return 0  # non-gating even on misuse
    baseline_path, fresh_path = Path(args[0]), Path(args[1])
    try:
        baseline = json.loads(baseline_path.read_text())
        fresh = json.loads(fresh_path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"::warning::bench regression check skipped: {exc}")
        return 0
    warnings = check(baseline, fresh)
    for message in warnings:
        print(f"::warning::bench: {message}")
    if not warnings:
        print(f"bench regression check: no entry dropped more than "
              f"{THRESHOLD:.0%} vs {baseline_path.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
