"""ASCII report rendering and the experiment registry/CLI."""

import pytest

from repro.harness.report import render_speedup_chart, render_stacked_bars
from repro.harness.experiments import REGISTRY, list_experiments, run_experiment


class TestSpeedupChart:
    CURVES = {
        "CommTM": {1: 1.0, 8: 7.9, 32: 30.0},
        "Baseline": {1: 1.0, 8: 0.5, 32: 0.3},
    }

    def test_contains_title_and_legend(self):
        out = render_speedup_chart(self.CURVES, "My Figure")
        assert out.startswith("My Figure")
        assert "o CommTM" in out
        assert "* Baseline" in out

    def test_axis_labels_show_threads(self):
        out = render_speedup_chart(self.CURVES)
        assert "32" in out
        assert "(threads)" in out

    def test_scales_to_max(self):
        out = render_speedup_chart(self.CURVES)
        assert "30.0" in out  # top axis label

    def test_empty_curves(self):
        assert render_speedup_chart({}, "t") == "t"

    def test_single_point(self):
        out = render_speedup_chart({"X": {4: 2.0}})
        assert "4" in out


class TestStackedBars:
    ROWS = {
        "Base@8": {"a": 1.0, "b": 0.5},
        "CommTM@8": {"a": 0.2, "b": 0.1},
    }

    def test_renders_rows_and_totals(self):
        out = render_stacked_bars(self.ROWS, ["a", "b"], "Bars")
        assert "Base@8" in out and "CommTM@8" in out
        assert "1.500" in out and "0.300" in out

    def test_legend(self):
        out = render_stacked_bars(self.ROWS, ["a", "b"])
        assert "# a" in out and "= b" in out

    def test_bar_lengths_proportional(self):
        out = render_stacked_bars(self.ROWS, ["a", "b"])
        base_line = next(l for l in out.splitlines() if "Base@8" in l)
        commtm_line = next(l for l in out.splitlines() if "CommTM@8" in l)
        assert base_line.count("#") > commtm_line.count("#")

    def test_empty(self):
        assert render_stacked_bars({}, ["a"], "t") == "t"


class TestRegistry:
    def test_all_figures_registered(self):
        names = set(REGISTRY)
        for expected in ("fig09", "fig10", "fig12a", "fig12b", "fig13",
                         "fig14"):
            assert expected in names
        for app in ("boruvka", "kmeans", "ssca2", "genome", "vacation"):
            assert f"fig16-{app}" in names
            assert f"fig17-{app}" in names
            assert f"fig18-{app}" in names
        assert "fig19-boruvka" in names and "fig19-kmeans" in names

    def test_list_experiments(self):
        lines = list_experiments()
        assert len(lines) == len(REGISTRY)
        assert any("counter" in l for l in lines)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_run_small_experiment(self):
        out = run_experiment("fig09", threads=[1, 2], scale=0.02)
        assert "Fig. 9" in out
        assert "CommTM" in out


class TestCli:
    def test_list(self, capsys):
        from repro.harness.__main__ import main
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out

    def test_unknown(self, capsys):
        from repro.harness.__main__ import main
        assert main(["fig99"]) == 2

    def test_run(self, capsys):
        from repro.harness.__main__ import main
        assert main(["fig09", "--threads", "1,2", "--scale", "0.02"]) == 0
        assert "Fig. 9" in capsys.readouterr().out
