"""Property-based tests (hypothesis) on core invariants.

Two families:

* algebraic properties of labels and their handlers (reduction order
  independence, identity, split conservation);
* end-to-end serializability/conservation properties of randomly-generated
  workloads on small machines (CommTM vs the sequential model).
"""

import functools

from hypothesis import given, settings, strategies as st

from repro import Atomic, Machine, Work
from repro.core.labels import (
    HandlerContext,
    add_label,
    max_label,
    min_label,
    oput_label,
)
from repro.datatypes import BoundedCounter, SharedCounter, TopKSet
from repro.mem.layout import Allocator, _align_up, _next_pow2
from repro.params import WORD_BYTES, NocConfig, small_config
from repro.coherence.noc import Mesh

DUMMY = HandlerContext(lambda a: 0, lambda a, v: None)


# ---------------------------------------------------------------------------
# Label algebra
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=8))
def test_add_reduction_order_independent(values):
    """Reducing partials in any order yields the same total (commutative +
    associative merge)."""
    label = add_label()
    lines = [[v] * 8 for v in values]
    forward = functools.reduce(lambda a, b: label.reduce(DUMMY, a, b), lines)
    backward = functools.reduce(lambda a, b: label.reduce(DUMMY, a, b),
                                reversed(lines))
    assert forward == backward == [sum(values)] * 8


@given(st.lists(st.integers(0, 10**6), min_size=1, max_size=8))
def test_min_max_reduction_order_independent(values):
    for label, fn in ((min_label(), min), (max_label(), max)):
        lines = [[v] * 8 for v in values]
        out = functools.reduce(lambda a, b: label.reduce(DUMMY, a, b), lines)
        out_r = functools.reduce(lambda a, b: label.reduce(DUMMY, a, b),
                                 reversed(lines))
        assert out == out_r == [fn(values)] * 8


@given(st.lists(st.tuples(st.integers(0, 1000), st.integers()),
                min_size=1, max_size=8))
def test_oput_reduction_keeps_global_min_key(pairs):
    label = oput_label()
    lines = [[p] * 8 for p in pairs]
    out = functools.reduce(lambda a, b: label.reduce(DUMMY, a, b), lines)
    assert out[0][0] == min(k for k, _v in pairs)


@given(st.integers(0, 10**9), st.integers(1, 256))
def test_add_split_conserves_and_terminates(value, sharers):
    label = add_label()
    kept, donated = label.split(DUMMY, [value] * 8, sharers)
    assert kept[0] + donated[0] == value
    assert kept[0] >= 0 and donated[0] >= 0
    if value > 0:
        assert donated[0] >= 1  # a positive sharer always donates


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
def test_identity_is_neutral(values):
    label = add_label()
    line = [values[0]] * 8
    assert label.reduce(DUMMY, line, label.identity_line()) == line
    assert label.reduce(DUMMY, label.identity_line(), line) == line


# ---------------------------------------------------------------------------
# Allocator / mesh arithmetic
# ---------------------------------------------------------------------------

@given(st.integers(0, 2**32), st.sampled_from([1, 2, 4, 8, 16, 64]))
def test_align_up(addr, align):
    out = _align_up(addr, align)
    assert out >= addr
    assert out % align == 0
    assert out - addr < align


@given(st.integers(1, 2**20))
def test_next_pow2(n):
    p = _next_pow2(n)
    assert p >= n and p & (p - 1) == 0
    assert p < 2 * n or n == 1


@given(st.lists(st.integers(1, 64), min_size=1, max_size=30))
def test_allocator_never_overlaps(sizes):
    alloc = Allocator()
    spans = []
    for nwords in sizes:
        a = alloc.alloc_words(nwords)
        spans.append((a, a + nwords * WORD_BYTES))
    spans.sort()
    for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


@given(st.integers(0, 15), st.integers(0, 15), st.integers(0, 15))
def test_mesh_triangle_inequality(a, b, c):
    mesh = Mesh(NocConfig())
    assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)
    assert mesh.hops(a, a) == 0


# ---------------------------------------------------------------------------
# End-to-end workload properties
# ---------------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    deltas=st.lists(st.integers(-5, 10), min_size=4, max_size=24),
    seed=st.integers(0, 5),
    commtm=st.booleans(),
)
def test_counter_sum_invariant(deltas, seed, commtm):
    """Any interleaving of commutative adds totals the arithmetic sum."""
    machine = Machine(small_config(num_cores=4, seed=seed,
                                   commtm_enabled=commtm))
    counter = SharedCounter(machine, initial=7)
    chunks = [deltas[t::4] for t in range(4)]

    def make_body(chunk):
        def body(ctx):
            for d in chunk:
                yield Atomic(counter.add, d)
        return body

    machine.run([make_body(c) for c in chunks])
    machine.flush_reducible()
    assert machine.read_word(counter.addr) == 7 + sum(deltas)


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(st.booleans(), min_size=4, max_size=30),
    initial=st.integers(0, 6),
    seed=st.integers(0, 3),
    gather=st.booleans(),
)
def test_bounded_counter_never_negative(ops, initial, seed, gather):
    """Whatever the interleaving, the counter stays non-negative, and the
    final value equals initial + successful increments - successful
    decrements."""
    machine = Machine(small_config(num_cores=4, seed=seed))
    counter = BoundedCounter(machine, initial=initial, use_gather=gather)
    results = []

    def make_body(chunk):
        def body(ctx):
            for is_inc in chunk:
                if is_inc:
                    ok = yield Atomic(counter.increment, 1)
                else:
                    ok = yield Atomic(counter.decrement)
                results.append((is_inc, ok))
        return body

    machine.run([make_body(ops[t::4]) for t in range(4)])
    machine.flush_reducible()
    value = machine.read_word(counter.addr)
    incs = sum(1 for is_inc, ok in results if is_inc and ok)
    decs = sum(1 for is_inc, ok in results if not is_inc and ok)
    assert value == initial + incs - decs
    assert value >= 0


@settings(max_examples=8, deadline=None)
@given(
    values=st.lists(st.integers(0, 10**6), min_size=1, max_size=40,
                    unique=True),
    k=st.integers(1, 10),
    seed=st.integers(0, 3),
)
def test_topk_matches_sorted_tail(values, k, seed):
    machine = Machine(small_config(num_cores=4, seed=seed))
    topk = TopKSet(machine, k=k)

    def make_body(chunk):
        def body(ctx):
            for v in chunk:
                yield Atomic(topk.insert, v)
        return body

    machine.run([make_body(values[t::4]) for t in range(4)])
    machine.flush_reducible()
    final = machine.read_word(topk.addr)
    final = () if final == 0 else final
    assert tuple(final) == tuple(sorted(values)[-k:])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_runs_are_deterministic_per_seed(seed):
    """Two machines with the same seed produce identical cycle counts and
    stats; the seed is the only source of non-determinism."""

    def run_once():
        machine = Machine(small_config(num_cores=4, seed=seed))
        counter = SharedCounter(machine)

        def body(ctx):
            for _ in range(5):
                yield Atomic(counter.add, 1)
                yield Work(3)

        machine.run_spmd(body, 4)
        return (machine.stats.parallel_cycles, machine.stats.commits,
                machine.stats.aborts, machine.stats.getu)

    assert run_once() == run_once()
