"""Transactional execution through the engine: atomicity, replay, commits,
nesting, conflicts, NACKs, backoff, and the CommTM-specific abort paths."""

import pytest

from repro import (
    Atomic,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Machine,
    Store,
    Work,
)
from repro.core.labels import add_label
from repro.errors import SimulationError, TransactionError
from repro.params import small_config
from repro.runtime.ops import Barrier
from repro.sim.stats import WastedCause


def make(**kw):
    machine = Machine(small_config(num_cores=4, **kw))
    machine.register_label(add_label())
    return machine


ADDR = 0x1000


class TestBasics:
    def test_single_tx_commits(self):
        machine = make()

        def txn(ctx):
            v = yield Load(ADDR)
            yield Store(ADDR, v + 1)
            return v

        def body(ctx):
            r = yield Atomic(txn)
            assert r == 0

        machine.run([body])
        assert machine.read_word(ADDR) == 1
        assert machine.stats.commits == 1
        assert machine.stats.aborts == 0

    def test_tx_return_value_propagates(self):
        machine = make()
        got = []

        def txn(ctx, x):
            yield Work(1)
            return x * 2

        def body(ctx):
            got.append((yield Atomic(txn, 21)))

        machine.run([body])
        assert got == [42]

    def test_work_counts_instructions(self):
        machine = make()

        def body(ctx):
            yield Work(100)

        machine.run([body])
        assert machine.stats.instructions == 100

    def test_nested_atomic_flattened(self):
        machine = make()

        def inner(ctx):
            yield Store(ADDR + 8, 2)
            return "inner"

        def outer(ctx):
            yield Store(ADDR, 1)
            r = yield Atomic(inner)
            return r

        def body(ctx):
            r = yield Atomic(outer)
            assert r == "inner"

        machine.run([body])
        # One flat transaction: a single commit.
        assert machine.stats.commits == 1
        assert machine.read_word(ADDR) == 1
        assert machine.read_word(ADDR + 8) == 2

    def test_machine_runs_once(self):
        machine = make()

        def noop(ctx):
            yield Work(1)

        machine.run([noop])
        with pytest.raises(SimulationError):
            machine.run([noop])

    def test_too_many_threads(self):
        machine = make()

        def noop(ctx):
            yield Work(1)

        with pytest.raises(SimulationError):
            machine.run([noop] * 5)


class TestConflicts:
    def _conflict_run(self, policy="timestamp"):
        machine = make(conflict_policy=policy)

        def txn(ctx, delta):
            v = yield Load(ADDR)
            yield Work(50)  # widen the conflict window
            yield Store(ADDR, v + delta)

        def body(ctx):
            for _ in range(20):
                yield Atomic(txn, 1)

        machine.run_spmd(body, 4)
        return machine

    def test_serializability_under_conflicts(self):
        machine = self._conflict_run()
        assert machine.read_word(ADDR) == 80
        assert machine.stats.aborts > 0  # contention actually happened

    def test_requester_wins_policy_also_serializable(self):
        machine = self._conflict_run(policy="requester_wins")
        assert machine.read_word(ADDR) == 80

    def test_wasted_cycles_recorded(self):
        machine = self._conflict_run()
        assert machine.stats.tx_aborted_cycles > 0
        assert sum(machine.stats.wasted_by_cause.values()) == \
            machine.stats.tx_aborted_cycles

    def test_read_after_write_dominates_counter(self):
        machine = self._conflict_run()
        causes = machine.stats.wasted_by_cause
        raw = causes.get(WastedCause.READ_AFTER_WRITE, 0)
        assert raw == max(causes.values())

    def test_nacks_under_timestamp_policy(self):
        machine = self._conflict_run()
        assert machine.stats.nacks_sent > 0

    def test_no_nacks_under_requester_wins(self):
        machine = self._conflict_run(policy="requester_wins")
        assert machine.stats.nacks_sent == 0


class TestCommTMPaths:
    def test_commutative_adds_no_aborts(self):
        machine = make()
        add = machine.labels.get("ADD")

        def txn(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)

        def body(ctx):
            for _ in range(25):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 100
        assert machine.stats.aborts == 0

    def test_baseline_demotes_labeled_ops(self):
        machine = Machine(small_config(num_cores=4, commtm_enabled=False))
        add = machine.register_label(add_label())

        def txn(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)

        def body(ctx):
            for _ in range(25):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        assert machine.read_word(ADDR) == 100
        assert machine.stats.getu == 0
        assert machine.stats.labeled_instructions == 0
        assert machine.stats.aborts > 0  # real HTM conflicts

    def test_unlabeled_after_labeled_self_abort(self):
        """A tx that labeled-modifies data then reads it unlabeled aborts
        itself and retries with labels disabled (Sec. III-B4)."""
        machine = make()
        add = machine.labels.get("ADD")
        observed = []

        def holder(ctx):
            # Keep a second U copy alive so the unlabeled read must reduce.
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 10)

        def mixed(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)
            full = yield Load(ADDR)  # unlabeled read of own spec U data
            return full

        def body0(ctx):
            yield Atomic(holder)

        def body1(ctx):
            yield Work(200)  # let core 0 commit its partial first
            observed.append((yield Atomic(mixed)))

        machine.run([body0, body1])
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 11
        assert machine.stats.aborts >= 1
        # The retried transaction saw the full reduced value.
        assert observed == [11]

    def test_gather_in_engine(self):
        machine = make()
        add = machine.labels.get("ADD")
        machine.seed_word(ADDR, 8)
        results = []

        def holder(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 0)

        def gatherer(ctx):
            v = yield LoadGather(ADDR, add)
            return v

        def body0(ctx):
            yield Atomic(holder)
            yield Work(500)

        def body1(ctx):
            yield Work(200)
            results.append((yield Atomic(gatherer)))

        machine.run([body0, body1])
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 8
        assert results and results[0] >= 4  # received a donation

    def test_livelock_guard(self):
        machine = make(max_restarts=3)
        add = machine.labels.get("ADD")

        class Forever:
            def __init__(self):
                self.machine = machine

        def txn(ctx):
            v = yield Load(ADDR)
            yield Work(100)
            yield Store(ADDR, v + 1)

        def body(ctx):
            for _ in range(50):
                yield Atomic(txn)

        with pytest.raises(SimulationError):
            machine.run_spmd(body, 4)


class TestBarrier:
    def test_barrier_synchronizes(self):
        machine = make()
        phases = []

        def body(ctx):
            phases.append(("a", ctx.tid))
            yield Barrier()
            phases.append(("b", ctx.tid))
            yield Barrier()

        machine.run_spmd(body, 3)
        # All "a" records precede all "b" records.
        kinds = [k for k, _ in phases]
        assert kinds == ["a"] * 3 + ["b"] * 3

    def test_barrier_aligns_clocks(self):
        machine = make()
        times = {}

        def body(ctx):
            if ctx.tid == 0:
                yield Work(1000)
            yield Barrier()
            yield Work(1)

        machine.run_spmd(body, 3)
        # Everyone waited for the slow thread: completion ~1000 cycles.
        assert machine.stats.parallel_cycles >= 1000

    def test_barrier_inside_tx_rejected(self):
        machine = make()

        def txn(ctx):
            yield Barrier()

        def body(ctx):
            yield Atomic(txn)

        with pytest.raises(TransactionError):
            machine.run_spmd(body, 2)

    def test_finished_threads_release_barrier(self):
        machine = make()

        def body(ctx):
            if ctx.tid == 0:
                return  # finishes immediately, never reaches the barrier
                yield  # pragma: no cover
            yield Barrier()
            yield Work(1)

        machine.run_spmd(body, 3)  # must terminate
        assert machine.stats.instructions == 2


class TestTimestamps:
    def test_older_transaction_wins(self):
        """The first-started transaction must never lose to later ones."""
        machine = make()
        order = []

        def txn(ctx, tid):
            v = yield Load(ADDR)
            yield Work(120)
            yield Store(ADDR, v + 1)
            return tid

        def body(ctx):
            order.append((yield Atomic(txn, ctx.tid)))

        machine.run_spmd(body, 4)
        assert machine.read_word(ADDR) == 4
        # Timestamps are kept across retries, so every thread commits.
        assert machine.stats.commits == 4
