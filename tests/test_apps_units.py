"""Unit-level tests of application internals (chunking, reference
algorithms, request handlers) that the end-to-end app tests don't cover
directly."""


from repro import Machine
from repro.params import small_config
from repro.workloads.apps.boruvka import _chunk, _reference_mst
from repro.workloads.apps.kmeans import _nearest
from repro.workloads.inputs.graphs import Graph, road_network


class TestChunking:
    def test_covers_all_without_overlap(self):
        for n in (0, 1, 7, 100):
            for parts in (1, 3, 8):
                seen = []
                for i in range(parts):
                    seen.extend(_chunk(n, parts, i))
                assert seen == list(range(n))

    def test_balanced(self):
        sizes = [len(_chunk(10, 3, i)) for i in range(3)]
        assert max(sizes) - min(sizes) <= 1


class TestReferenceMst:
    def test_triangle(self):
        g = Graph(num_nodes=3, edges=[(0, 1, 1), (1, 2, 2), (0, 2, 3)])
        weight, chosen = _reference_mst(g)
        assert weight == 3
        assert chosen == {0, 1}

    def test_spanning_size(self):
        g = road_network(40, seed=5)
        _w, chosen = _reference_mst(g)
        assert len(chosen) == 39

    def test_unique_with_distinct_weights(self):
        g = road_network(30, seed=9)
        w1, c1 = _reference_mst(g)
        w2, c2 = _reference_mst(g)
        assert (w1, c1) == (w2, c2)


class TestNearest:
    def test_picks_closest(self):
        cents = [(0, 0), (10, 10), (20, 20)]
        assert _nearest((1, 1), cents) == 0
        assert _nearest((11, 9), cents) == 1
        assert _nearest((19, 22), cents) == 2

    def test_tie_breaks_to_first(self):
        cents = [(0, 0), (2, 0)]
        assert _nearest((1, 0), cents) == 0


class TestVacationHandlers:
    def _build(self, **kw):
        from repro.workloads.apps import vacation
        machine = Machine(small_config(num_cores=4))
        built = vacation.build(machine, 2, num_tasks=8, relations=8, **kw)
        return machine, built

    def test_resources_seeded(self):
        machine, built = self._build()
        assert built.info["relations"] == 8

    def test_requests_split_across_threads(self):
        machine, built = self._build()
        assert len(built.bodies) == 2


class TestGenomeBuild:
    def test_table_sized_to_segments(self):
        from repro.workloads.apps import genome
        machine = Machine(small_config(num_cores=4))
        built = genome.build(machine, 2, num_segments=600, gene_length=256)
        # initial_buckets = max(64, 600 // 6) = 100 -> capacity 400.
        assert built.info["segments"] == 600

    def test_explicit_buckets_respected(self):
        from repro.workloads.apps import genome
        machine = Machine(small_config(num_cores=4))
        genome.build(machine, 2, num_segments=100, gene_length=256,
                     initial_buckets=16)
