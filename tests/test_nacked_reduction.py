"""The NACKed-reduction corner (Fig. 6b) and data-retention invariants.

When a reduction's invalidation is NACKed by an older transaction, the
requester merges the forwarded data it did receive, *retains it in U*, and
aborts. The merged data is non-speculative: it must survive the abort, so
no partial update is ever lost or duplicated.
"""


from repro import (
    Atomic,
    LabeledLoad,
    LabeledStore,
    Load,
    Machine,
    Store,
    Work,
)
from repro.coherence.states import State
from repro.core.labels import add_label
from repro.params import small_config


def make(**kw):
    machine = Machine(small_config(num_cores=4, **kw))
    machine.register_label(add_label())
    return machine


ADDR = 0x1000


def test_nacked_reduction_retains_merged_data():
    """Three U sharers; a younger reader's reduction gets NACKed by an
    older transaction mid-update. The reader must retain the other
    sharers' merged partials in U, and the final total must be exact."""
    machine = make()
    add = machine.labels.get("ADD")
    observed = []

    def old_updater(ctx):
        # Starts first (oldest ts), holds the line in its labeled set for
        # a long time, then commits: the reader's reduction gets NACKed.
        def txn(c):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 100)
            yield Work(800)

        yield Atomic(txn)

    def quick_updater(ctx):
        yield Work(50)

        def txn(c):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 10)

        yield Atomic(txn)

    def reader(ctx):
        yield Work(300)  # both updaters have U copies by now

        def txn(c):
            value = yield Load(ADDR)
            return value

        observed.append((yield Atomic(txn)))

    machine.run([old_updater, quick_updater, reader])
    machine.flush_reducible()
    assert machine.read_word(ADDR) == 110
    # The reader eventually observed the complete value.
    assert observed == [110]
    # The retry machinery actually exercised a NACK.
    assert machine.stats.nacks_sent >= 1
    assert machine.stats.aborts >= 1


def test_no_partial_updates_lost_under_churn():
    """Many rounds of concurrent labeled updates interleaved with
    conventional reads (constant reductions, NACKs, retries): the total
    must be exact regardless."""
    machine = make()
    add = machine.labels.get("ADD")
    increments_per_thread = 30

    def body(ctx):
        def update(c):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)

        def read(c):
            v = yield Load(ADDR)
            return v

        for i in range(increments_per_thread):
            yield Atomic(update)
            if i % 7 == ctx.tid:
                yield Atomic(read)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    assert machine.read_word(ADDR) == 4 * increments_per_thread


def test_reduction_data_survives_requester_rollback():
    """A transaction that triggers a reduction and then aborts must not
    lose the reduced value: the merged line persists non-speculatively."""
    machine = make()
    add = machine.labels.get("ADD")

    def holder(ctx):
        v = yield LabeledLoad(ADDR, add)
        yield LabeledStore(ADDR, add, v + 7)

    def doomed(ctx):
        yield Work(200)

        def txn(c):
            v = yield Load(ADDR)       # triggers the reduction
            yield Work(400)            # plenty of time to be aborted
            yield Store(ADDR + 0x40, v)

        yield Atomic(txn)

    def aggressor(ctx):
        yield Work(350)

        def txn(c):
            yield Store(ADDR + 0x40, -1)  # conflicts with doomed's write

        yield Atomic(txn)

    machine.run([holder, doomed, aggressor])
    machine.flush_reducible()
    # Whatever the conflict outcome, the counter value is intact.
    assert machine.read_word(ADDR) == 7


def test_state_after_nacked_reduction_is_u():
    """Direct protocol-level check of Fig. 6b's final state."""
    machine = make()
    add = machine.labels.get("ADD")
    msys = machine.msys
    from repro.coherence.messages import Requester

    # Core 0: an old transaction with a speculative labeled update.
    tx0 = machine.htm.begin(0)
    r0 = Requester(0, tx0.ts, now=0)
    v = msys.labeled_load(0, ADDR, add, r0).value
    msys.labeled_store(0, ADDR, add, v + 3, r0)

    # Core 1: a committed partial.
    r1 = Requester(1, None, now=0)
    msys.labeled_load(1, ADDR, add, r1)
    msys.labeled_store(1, ADDR, add, 4, r1)

    # Core 2: a younger transaction triggers the reduction -> NACKed by
    # core 0, but core 1's partial is merged and retained in U.
    tx2 = machine.htm.begin(2)
    res = msys.load(2, ADDR, Requester(2, tx2.ts, now=0))
    assert res.abort_requester
    assert msys.state_of(2, ADDR) is State.U
    assert msys.caches[2].lookup(ADDR // 64).words[0] == 4
    assert msys.state_of(0, ADDR) is State.U  # NACKer kept its copy
    assert msys.state_of(1, ADDR) is State.I  # forwarded and invalidated
    # Global invariant: reduce(copies) still yields the logical value
    # (core 0's speculative +3 excluded until it commits).
    assert msys.peek_word(ADDR) == 4
