"""Microbenchmark builders (Sec. VI): construction, execution, and the
built-in verifiers, on both systems."""

import pytest

from repro.harness import run_workload
from repro.workloads.micro import (
    counter,
    linked_list,
    ordered_put,
    refcount,
    topk,
    split_ops,
)


class TestSplitOps:
    def test_even_division(self):
        assert split_ops(12, 4) == [3, 3, 3, 3]

    def test_remainder_to_first(self):
        assert split_ops(10, 4) == [3, 3, 2, 2]

    def test_total_preserved(self):
        for total in (1, 7, 100):
            for threads in (1, 3, 8):
                assert sum(split_ops(total, threads)) == total

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            split_ops(10, 0)


MICROS = [
    ("counter", counter.build, {}),
    ("refcount", refcount.build, {}),
    ("list_enq", linked_list.build, {"enqueue_fraction": 1.0}),
    ("list_mix", linked_list.build,
     {"enqueue_fraction": 0.5, "prefill": 64}),
    ("oput", ordered_put.build, {}),
    ("topk", topk.build, {"k": 8}),
]


@pytest.mark.parametrize("name,build,kw", MICROS,
                         ids=[m[0] for m in MICROS])
@pytest.mark.parametrize("commtm", [True, False], ids=["commtm", "baseline"])
def test_micro_runs_and_verifies(name, build, kw, commtm):
    result = run_workload(build, 4, num_cores=16, commtm=commtm,
                          total_ops=120, **kw)
    assert result.cycles > 0
    assert result.stats.commits > 0


def test_counter_expected_total_in_info():
    result = run_workload(counter.build, 2, num_cores=16, total_ops=50)
    assert result.info["total_ops"] == 50


def test_counter_commtm_avoids_aborts():
    commtm = run_workload(counter.build, 8, num_cores=16, total_ops=400)
    base = run_workload(counter.build, 8, num_cores=16, total_ops=400,
                        commtm=False)
    assert commtm.stats.aborts == 0
    assert base.stats.aborts > 0
    assert commtm.cycles < base.cycles


def test_refcount_gather_beats_no_gather_at_scale():
    with_g = run_workload(refcount.build, 16, num_cores=16, total_ops=2000)
    without = run_workload(refcount.build, 16, num_cores=16, total_ops=2000,
                           use_gather=False)
    assert with_g.cycles < without.cycles
    assert with_g.stats.gathers > 0
    assert without.stats.gathers == 0
    assert without.stats.reductions > with_g.stats.reductions


def test_single_thread_no_gathers_no_conflicts():
    result = run_workload(refcount.build, 1, num_cores=16, total_ops=100)
    assert result.stats.aborts == 0
    assert result.stats.gathers == 0


def test_linked_list_baseline_prefill_in_memory():
    result = run_workload(linked_list.build, 2, num_cores=16, commtm=False,
                          total_ops=60, enqueue_fraction=0.5, prefill=16)
    assert result.cycles > 0


def test_topk_labeled_instructions_counted():
    result = run_workload(topk.build, 4, num_cores=16, total_ops=100, k=8)
    assert result.stats.labeled_instructions > 0
    base = run_workload(topk.build, 4, num_cores=16, total_ops=100, k=8,
                        commtm=False)
    assert base.stats.labeled_instructions == 0


def test_oput_baseline_partially_scales():
    """Only smaller keys cause conflicting writes in the baseline, so its
    abort rate must be well below the counter benchmark's."""
    oput = run_workload(ordered_put.build, 8, num_cores=16, total_ops=400,
                        commtm=False)
    cnt = run_workload(counter.build, 8, num_cores=16, total_ops=400,
                       commtm=False)
    assert oput.stats.abort_rate < cnt.stats.abort_rate
