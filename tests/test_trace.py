"""Execution tracer and timeline rendering."""


from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Work
from repro.core.labels import add_label
from repro.params import small_config
from repro.runtime.ops import Barrier
from repro.sim.trace import EventKind, Tracer, render_timeline


def traced_machine(**kw):
    machine = Machine(small_config(num_cores=4, trace_enabled=True, **kw))
    machine.register_label(add_label())
    return machine


class TestTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        assert tracer.events == []

    def test_limit_respected(self):
        tracer = Tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.record(i, 0, EventKind.TX_BEGIN)
        assert len(tracer.events) == 2

    def test_counts_and_for_core(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        tracer.record(1, 0, EventKind.TX_COMMIT)
        tracer.record(2, 1, EventKind.TX_ABORT)
        assert tracer.counts()[EventKind.TX_BEGIN] == 1
        assert len(tracer.for_core(0)) == 2


class TestEngineTracing:
    def test_commits_and_begins_recorded(self):
        machine = traced_machine()
        addr = machine.alloc.alloc_line()

        def txn(ctx):
            yield Work(5)

        def body(ctx):
            for _ in range(3):
                yield Atomic(txn)

        machine.run_spmd(body, 2)
        counts = machine.tracer.counts()
        assert counts[EventKind.TX_BEGIN] == 6
        assert counts[EventKind.TX_COMMIT] == 6
        assert EventKind.TX_ABORT not in counts

    def test_aborts_recorded_with_cause(self):
        machine = traced_machine()
        addr = machine.alloc.alloc_line()

        from repro.runtime.ops import Store

        def txn2(ctx):
            v = yield Load(addr)
            yield Work(50)
            yield Store(addr, v + 1)

        def body(ctx):
            for _ in range(10):
                yield Atomic(txn2)

        machine.run_spmd(body, 4)
        aborts = [e for e in machine.tracer.events
                  if e.kind is EventKind.TX_ABORT]
        assert aborts and all(e.detail for e in aborts)

    def test_reductions_and_gathers_recorded(self):
        machine = traced_machine()
        add = machine.labels.get("ADD")
        addr = machine.alloc.alloc_line()
        machine.seed_word(addr, 8)
        from repro.runtime.ops import LoadGather

        def holder(ctx):
            v = yield LabeledLoad(addr, add)
            yield LabeledStore(addr, add, v + 0)

        def gatherer(ctx):
            v = yield LoadGather(addr, add)
            return v

        def reader(ctx):
            v = yield Load(addr)
            return v

        def body(ctx):
            if ctx.tid < 2:
                yield Atomic(holder)
                yield Work(1000)
            elif ctx.tid == 2:
                yield Work(300)
                yield Atomic(gatherer)
                yield Work(700)
            else:
                yield Work(600)
                yield Atomic(reader)

        machine.run_spmd(body, 4)
        counts = machine.tracer.counts()
        assert counts.get(EventKind.GATHER, 0) >= 1
        assert counts.get(EventKind.REDUCTION, 0) >= 1

    def test_barrier_recorded(self):
        machine = traced_machine()

        def body(ctx):
            yield Work(1)
            yield Barrier()

        machine.run_spmd(body, 3)
        assert machine.tracer.counts()[EventKind.BARRIER] == 3


class TestRenderTimeline:
    def test_render_contains_lanes_and_legend(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        tracer.record(100, 0, EventKind.TX_COMMIT)
        tracer.record(50, 1, EventKind.TX_ABORT)
        out = render_timeline(tracer, title="T")
        assert out.startswith("T")
        assert "core   0 |" in out
        assert "core   1 |" in out
        assert "legend:" in out
        assert "C" in out and "x" in out

    def test_empty_tracer(self):
        assert render_timeline(Tracer(enabled=True)) == "(no events)"

    def test_severity_wins_in_shared_column(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        tracer.record(0, 0, EventKind.TX_ABORT)  # same column
        out = render_timeline(tracer, width=10)
        lane = next(l for l in out.splitlines() if l.startswith("core"))
        body = lane.split("|")[1]
        assert "x" in body and "(" not in body

    def test_lane_totals_count_shadowed_events(self):
        # The begin shares a column with (and loses to) the abort; the
        # lane annotation must still report it.
        tracer = Tracer(enabled=True)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        tracer.record(0, 0, EventKind.TX_ABORT)
        out = render_timeline(tracer, width=10)
        lane = next(l for l in out.splitlines() if l.startswith("core"))
        annot = lane.split("|")[2]
        assert "(:1" in annot and "x:1" in annot

    def test_dropped_events_warned_in_timeline(self):
        tracer = Tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.record(i, 0, EventKind.TX_BEGIN)
        out = render_timeline(tracer)
        assert "warning: 3 event(s) dropped" in out


class TestDroppedCounting:
    def test_dropped_counted_at_limit(self):
        tracer = Tracer(enabled=True, limit=2)
        for i in range(5):
            tracer.record(i, 0, EventKind.TX_BEGIN)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        counts = tracer.counts()
        assert counts["dropped"] == 3
        assert counts[EventKind.TX_BEGIN] == 2

    def test_no_drops_reports_zero(self):
        tracer = Tracer(enabled=True)
        tracer.record(0, 0, EventKind.TX_BEGIN)
        assert tracer.counts()["dropped"] == 0
        assert "warning" not in render_timeline(tracer)

    def test_disabled_tracer_drops_nothing(self):
        tracer = Tracer(enabled=False, limit=1)
        for i in range(3):
            tracer.record(i, 0, EventKind.TX_BEGIN)
        assert tracer.dropped == 0
