"""Differential-oracle parity tests for the vector engine backend.

The vector backend (``repro.sim.vector``) advances the simulation in
fence-bounded epochs — bulk-executing provably local operations (private
hits, think time, fused commutative transactions, interpreted tx
begin/commit under eager detection) off a min-start heap, interleaved
with strict per-op phases for everything else. It is a host-side
optimization only: every simulated quantity must be *bit-identical* to
the interpreted engine. These tests run all ten workloads — the five
micros and the five ported applications (kmeans, vacation, ssca2,
genome, boruvka) — under both systems (CommTM and the baseline HTM),
plus a randomized op mix, and compare per-thread cycles,
``parallel_cycles``, and the full ``Stats.comparable()`` dict — the
same differential oracle the run-ahead scheduler is held to in
tests/test_runahead_equivalence.py.

Composition is covered too. The coherence sanitizer is a per-op layer:
``REPRO_SANITIZE=1`` plus ``backend="vector"`` forces delegation to the
interpreted path with a logged notice (bit-identical, zero epochs). The
obs layer is *vector-native*: ``REPRO_OBS=1`` keeps the epochs engaged
and the engine synthesizes the interpreted path's emissions at their
exact strict positions — the full payload-equality matrix lives in
``tests/test_vector_obs_parity.py``; here we assert the engagement and
stats parity.
"""

import logging

import pytest

from repro.analysis.sanitizer import SANITIZE_ENV
from repro.harness.runner import run_workload
from repro.obs import OBS_ENV
from repro.runtime.ops import BARRIER, Atomic
from repro.sim.engine import NO_FASTPATH_ENV, NO_RUNAHEAD_ENV
from repro.sim.vector import BACKEND_ENV, available
from repro.workloads.apps import boruvka, genome, kmeans, ssca2, vacation
from repro.workloads.micro import (counter, linked_list, ordered_put,
                                   refcount, topk)
from repro.workloads.micro.common import BuiltWorkload

pytestmark = pytest.mark.skipif(
    not available(), reason="vector backend requires numpy")

MICROS = {
    "counter": counter.build,
    "topk": topk.build,
    "ordered_put": ordered_put.build,
    "linked_list": linked_list.build,
    "refcount": refcount.build,
}

#: The five ported applications at differential-oracle scale: big enough
#: that every fence class fires (misses, barriers, restarts, gathers,
#: resizes, thread finish), small enough to run the full 10-workload x
#: 2-system matrix in tier 1. ``total_ops=None`` opts the apps out of the
#: micro-only default in ``_run``.
APPS = {
    "boruvka": (boruvka.build, dict(num_nodes=48)),
    "genome": (genome.build, dict(num_segments=160, gene_length=256,
                                  initial_buckets=16)),
    "kmeans": (kmeans.build, dict(num_points=64, clusters=4, iterations=2)),
    "ssca2": (ssca2.build, dict(scale=5, edge_factor=3)),
    "vacation": (vacation.build, dict(num_tasks=96, relations=32)),
}


def _run(build, *, backend, commtm, seed, monkeypatch, sanitize=False,
         observe=False, **params):
    # Parity must not depend on ambient escape hatches.
    for env in (NO_RUNAHEAD_ENV, NO_FASTPATH_ENV, BACKEND_ENV):
        monkeypatch.delenv(env, raising=False)
    if sanitize:
        monkeypatch.setenv(SANITIZE_ENV, "1")
    else:
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
    if observe:
        monkeypatch.setenv(OBS_ENV, "1")
    else:
        monkeypatch.delenv(OBS_ENV, raising=False)
    params.setdefault("total_ops", 240)
    # total_ops=None opts a build without that parameter (kmeans, the
    # random mix) out of the micro default.
    params = {k: v for k, v in params.items() if v is not None}
    return run_workload(build, 4, num_cores=16, commtm=commtm, seed=seed,
                        backend=backend, **params)


def _assert_parity(interp, vector):
    assert interp.cycles == vector.cycles
    assert interp.stats.parallel_cycles == vector.stats.parallel_cycles
    assert interp.stats.aborts == vector.stats.aborts
    assert interp.stats.commits == vector.stats.commits
    assert interp.stats.comparable() == vector.stats.comparable()


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_vector_is_bit_identical(name, commtm, seed, monkeypatch):
    build = MICROS[name]
    interp = _run(build, backend="interp", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch)
    vector = _run(build, backend="vector", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch)
    _assert_parity(interp, vector)

    # The backends really ran where they claim: epochs engaged on the
    # vector side (every micro has at least one certifiable window) and
    # never on the interpreted side.
    assert interp.stats.host_backend == "interp"
    assert interp.stats.host_vector_epochs == 0
    assert vector.stats.host_backend == "vector"
    assert vector.stats.host_vector_epochs > 0
    assert vector.stats.host_vector_epoch_ops > 0


@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(APPS))
def test_vector_is_bit_identical_on_apps(name, commtm, monkeypatch):
    """The full application matrix under both systems. kmeans mixes fused
    commutative transactions with reduction resets, barriers, and
    first-touch misses — the densest fence profile in the repo; genome and
    vacation bring hash-table gathers and resizes, ssca2 and boruvka bring
    irregular graph footprints with MIN-labeled reductions."""
    build, params = APPS[name]
    interp = _run(build, backend="interp", commtm=commtm, seed=1,
                  monkeypatch=monkeypatch, total_ops=None, **params)
    vector = _run(build, backend="vector", commtm=commtm, seed=1,
                  monkeypatch=monkeypatch, total_ops=None, **params)
    _assert_parity(interp, vector)
    assert vector.stats.host_vector_epochs > 0
    if name == "kmeans" and commtm:
        # The accumulate transaction lowers through the fused-plan
        # registry, so the closed form must actually fire.
        assert vector.stats.host_vector_fused_txs > 0


def _random_mix(machine, num_threads: int, iters: int = 60) -> BuiltWorkload:
    """Deterministic per-thread random mixes of conventional loads,
    private stores, variable think time, commutative transactions, and
    barriers — irregular core clocks stress epoch certification, fence
    placement, and strict-phase hand-off edges."""
    from repro.datatypes.counter import SharedCounter

    shared_counter = SharedCounter(machine)
    lines = [machine.alloc.alloc_line() for _ in range(4)]
    for addr in lines:
        machine.seed_word(addr, 0)

    def make_body(tid: int):
        def body(ctx):
            rng = ctx.rng
            scratch = ctx.thread_alloc_words(1)
            add_one = Atomic(shared_counter.add, 1)
            for i in range(iters):
                r = rng.random()
                if r < 0.4:
                    yield ctx.load(lines[rng.randrange(len(lines))])
                elif r < 0.6:
                    yield ctx.store(scratch, i)
                elif r < 0.85:
                    yield ctx.work(1 + rng.randrange(50))
                else:
                    yield add_one
                if i % 20 == 10:
                    yield BARRIER
        return body

    return BuiltWorkload(
        name="random_mix",
        bodies=[make_body(t) for t in range(num_threads)],
        verify=None,
        info={},
    )


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
def test_random_mix_parity(commtm, seed, monkeypatch):
    interp = _run(_random_mix, backend="interp", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch, total_ops=None)
    vector = _run(_random_mix, backend="vector", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch, total_ops=None)
    _assert_parity(interp, vector)


def test_vector_composes_with_sanitize(monkeypatch, caplog):
    """REPRO_SANITIZE is a per-op layer: combined with the vector backend
    the whole run must delegate to the interpreted path (zero epochs),
    say so in the log, and stay bit-identical."""
    interp = _run(MICROS["counter"], backend="interp", commtm=True, seed=1,
                  monkeypatch=monkeypatch, sanitize=True)
    with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
        vector = _run(MICROS["counter"], backend="vector", commtm=True,
                      seed=1, monkeypatch=monkeypatch, sanitize=True)
    _assert_parity(interp, vector)
    assert vector.stats.host_backend == "vector"
    assert vector.stats.host_vector_epochs == 0
    assert any("interpreted engine" in r.message for r in caplog.records)


def test_vector_composes_with_obs(monkeypatch):
    """REPRO_OBS is vector-native: epochs stay engaged under observation
    and the simulated results remain bit-identical. (Payload equality
    across every workload is tests/test_vector_obs_parity.py's job.)"""
    interp = _run(MICROS["counter"], backend="interp", commtm=True, seed=1,
                  monkeypatch=monkeypatch, observe=True)
    vector = _run(MICROS["counter"], backend="vector", commtm=True, seed=1,
                  monkeypatch=monkeypatch, observe=True)
    _assert_parity(interp, vector)
    assert vector.stats.host_backend == "vector"
    assert vector.stats.host_vector_epochs > 0
    assert vector.stats.host_vector_epoch_ops > 0
    assert vector.info["obs"] is not None


@pytest.mark.parametrize("env", [NO_FASTPATH_ENV, NO_RUNAHEAD_ENV])
def test_vector_respects_reference_escape_hatches(env, monkeypatch):
    """The reference escape hatches exist to pin down the simplest
    possible execution; the vector backend must honor them by running
    per-op (zero epochs) and stay bit-identical doing so."""
    interp = _run(MICROS["topk"], backend="interp", commtm=True, seed=1,
                  monkeypatch=monkeypatch)
    monkeypatch.setenv(env, "1")
    vector = run_workload(MICROS["topk"], 4, num_cores=16, commtm=True,
                          seed=1, backend="vector", total_ops=240)
    _assert_parity(interp, vector)
    assert vector.stats.host_vector_epochs == 0
