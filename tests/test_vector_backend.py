"""Backend selection, dispatch, and degradation tests for sim/vector.

Parity of simulated results is proven in tests/test_vector_equivalence.py;
this file covers the *plumbing*: how a backend is chosen (argument > env >
default), what happens when numpy is missing (explicit request raises
``BackendUnavailableError``, env request degrades to the interpreted
engine with a warning), how the harness carries the backend through point
specs and cache fingerprints, and how the host-side reporting surfaces
change under the vector backend ("n/a (vector)" rates, host counters kept
out of ``Stats.comparable()``).
"""

import pytest

from repro import Machine
from repro.errors import BackendUnavailableError, ConfigError
from repro.harness.parallel import make_spec
from repro.harness.runner import run_workload
from repro.obs.report import _rate
from repro.params import small_config
from repro.sim.engine import Engine
from repro.sim.stats import Stats
from repro.sim.vector import (BACKEND_ENV, BACKENDS, available,
                              resolve_backend)
from repro.workloads.micro import counter

needs_numpy = pytest.mark.skipif(
    not available(), reason="vector backend requires numpy")


@pytest.fixture(autouse=True)
def _clean_backend_env(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)


# ---------------------------------------------------------------------------
# resolve_backend precedence
# ---------------------------------------------------------------------------

def test_default_is_interp():
    assert resolve_backend() == "interp"
    assert Machine(small_config()).backend == "interp"


@needs_numpy
def test_explicit_argument_selects_vector():
    assert resolve_backend("vector") == "vector"
    assert Machine(small_config(), backend="vector").backend == "vector"


@needs_numpy
def test_env_selects_vector(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "vector")
    assert resolve_backend() == "vector"
    assert Machine(small_config()).backend == "vector"


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "vector")
    assert resolve_backend("interp") == "interp"
    assert Machine(small_config(), backend="interp").backend == "interp"


def test_names_are_normalized():
    assert resolve_backend("  INTERP ") == "interp"


@pytest.mark.parametrize("bogus", ["jit", "numpy", "fast"])
def test_unknown_backend_raises_config_error(bogus, monkeypatch):
    with pytest.raises(ConfigError):
        resolve_backend(bogus)
    monkeypatch.setenv(BACKEND_ENV, bogus)
    with pytest.raises(ConfigError):
        Machine(small_config())


# ---------------------------------------------------------------------------
# Degradation without numpy
# ---------------------------------------------------------------------------

def test_explicit_vector_without_numpy_raises(monkeypatch):
    monkeypatch.setattr("repro.sim.vector.available", lambda: False)
    with pytest.raises(BackendUnavailableError):
        resolve_backend("vector")
    with pytest.raises(BackendUnavailableError):
        Machine(small_config(), backend="vector")


def test_env_vector_without_numpy_falls_back_with_warning(
        monkeypatch, caplog):
    monkeypatch.setattr("repro.sim.vector.available", lambda: False)
    monkeypatch.setenv(BACKEND_ENV, "vector")
    with caplog.at_level("WARNING", logger="repro.sim.vector"):
        machine = Machine(small_config())
    assert machine.backend == "interp"
    assert machine.stats.host_backend == "interp"
    assert any("falling back" in r.message for r in caplog.records)


def test_backend_unavailable_is_a_config_error():
    # Callers catching ConfigError (the harness CLI) cover both.
    assert issubclass(BackendUnavailableError, ConfigError)


# ---------------------------------------------------------------------------
# Engine dispatch
# ---------------------------------------------------------------------------

@needs_numpy
def test_machine_run_dispatches_vector_engine(monkeypatch):
    from repro.sim.vector.engine import VectorEngine
    seen = []
    orig = VectorEngine.run

    def spy(self):
        seen.append(type(self))
        return orig(self)

    monkeypatch.setattr(VectorEngine, "run", spy)
    res = run_workload(counter.build, 2, num_cores=16, commtm=True, seed=1,
                       backend="vector", total_ops=40)
    assert seen == [VectorEngine]
    assert res.stats.host_backend == "vector"


def test_interp_run_never_touches_vector_engine():
    res = run_workload(counter.build, 2, num_cores=16, commtm=True, seed=1,
                       backend="interp", total_ops=40)
    assert res.stats.host_backend == "interp"
    assert res.stats.host_vector_epochs == 0
    assert res.stats.host_vector_epoch_ops == 0
    assert res.stats.host_vector_fused_txs == 0


@needs_numpy
def test_vector_engine_is_an_engine():
    # The strict phases are a clone of the interpreted scheduler; keeping
    # the subclass relationship means handler-table surgery (obs,
    # sanitizer, fast-path gate) applies unmodified.
    from repro.sim.vector.engine import VectorEngine
    assert issubclass(VectorEngine, Engine)


# ---------------------------------------------------------------------------
# Harness plumbing: specs, fingerprints, workers
# ---------------------------------------------------------------------------

@needs_numpy
def test_backend_is_part_of_spec_canonical_form():
    interp = make_spec(counter.build, 2, backend="interp", total_ops=40)
    vector = make_spec(counter.build, 2, backend="vector", total_ops=40)
    assert interp.backend == "interp"
    assert vector.backend == "vector"
    assert "backend=interp" in interp.canonical()
    assert "backend=vector" in vector.canonical()
    # Cached results are keyed on the canonical form: the two backends
    # must never share a cache slot.
    assert interp.canonical() != vector.canonical()


@needs_numpy
def test_make_spec_resolves_env_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "vector")
    spec = make_spec(counter.build, 2, total_ops=40)
    # Resolved at spec creation, not left to the worker's environment.
    assert spec.backend == "vector"
    assert "backend=vector" in spec.canonical()


def test_make_spec_defaults_to_interp():
    spec = make_spec(counter.build, 2, total_ops=40)
    assert spec.backend == "interp"


# ---------------------------------------------------------------------------
# Host-side reporting under the vector backend
# ---------------------------------------------------------------------------

def test_host_counters_stay_out_of_comparable():
    stats = Stats(num_cores=2)
    comparable = stats.comparable()
    for key in ("host_backend", "host_vector_epochs",
                "host_vector_epoch_ops", "host_vector_fused_txs"):
        assert key not in comparable


def test_rates_report_na_under_vector_backend():
    stats = Stats(num_cores=2)
    stats.host_backend = "vector"
    stats.host_fastpath_hits = 10
    stats.host_runahead_batches = 3
    stats.host_runahead_ops = 30
    assert stats.fastpath_hit_rate == "n/a (vector)"
    assert stats.runahead_ops_per_batch == "n/a (vector)"


def test_rates_still_numeric_under_interp():
    stats = Stats(num_cores=2)
    stats.host_fastpath_hits = 3
    stats.host_fastpath_misses = 1
    stats.host_runahead_batches = 2
    stats.host_runahead_ops = 10
    assert stats.fastpath_hit_rate == 0.75
    assert stats.runahead_ops_per_batch == 5.0


def test_report_rate_helper_passes_through_non_numeric():
    assert _rate(None, 4, none="disabled") == "disabled"
    assert _rate(None, 3) is None
    assert _rate("n/a (vector)", 4) == "n/a (vector)"
    assert _rate(0.123456, 4) == 0.1235


def test_backend_names_are_closed():
    assert BACKENDS == ("interp", "vector")
