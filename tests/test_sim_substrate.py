"""RNG streams, core clocks, stats accounting."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import CoreClocks
from repro.sim.rng import RngStreams
from repro.sim.stats import Stats, WastedCause


class TestRng:
    def test_same_seed_same_sequence(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(1).stream("x")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x")
        b = RngStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_streams_independent(self):
        rngs = RngStreams(1)
        before = RngStreams(1).stream("b").random()
        rngs.stream("a").random()  # draw from another stream
        assert rngs.stream("b").random() == before

    def test_stream_identity_cached(self):
        rngs = RngStreams(1)
        assert rngs.stream("x") is rngs.stream("x")

    def test_named_helpers(self):
        rngs = RngStreams(1)
        assert rngs.backoff() is rngs.stream("backoff")
        assert rngs.eviction() is rngs.stream("eviction")


class TestCoreClocks:
    def test_min_clock_order(self):
        clocks = CoreClocks(3)
        order = []
        for _ in range(3):
            core = clocks.next_core()
            order.append(core)
            clocks.advance(core, 10 + core)
            clocks.reschedule(core)
        assert sorted(order) == [0, 1, 2]
        # Next scheduled should be the one with smallest clock (core 0).
        assert clocks.next_core() == 0

    def test_advance_negative_rejected(self):
        clocks = CoreClocks(1)
        with pytest.raises(SimulationError):
            clocks.advance(0, -1)

    def test_finish_excludes_core(self):
        clocks = CoreClocks(2)
        clocks.finish(0)
        assert clocks.next_core() == 1
        clocks.finish(1)
        assert clocks.next_core() is None

    def test_stale_heap_entries_requeued(self):
        clocks = CoreClocks(2)
        clocks.advance(0, 100)  # stale entry for core 0 in the heap
        assert clocks.next_core() == 1
        clocks.advance(1, 200)
        clocks.reschedule(1)
        assert clocks.next_core() == 0  # requeued at its true time

    def test_park_until(self):
        clocks = CoreClocks(1)
        clocks.park_until(0, 500)
        assert clocks.now(0) == 500
        clocks.park_until(0, 100)  # never goes backwards
        assert clocks.now(0) == 500

    def test_max_cycle(self):
        clocks = CoreClocks(3)
        clocks.advance(1, 42)
        assert clocks.max_cycle >= 42

    def test_jitter_bounded(self):
        import random
        clocks = CoreClocks(16, jitter=random.Random(1), max_jitter=8)
        assert all(0 <= c < 8 for c in clocks.cycles)


class TestStats:
    def test_charge_buckets(self):
        s = Stats(num_cores=2)
        s.charge(0, 10, in_tx=False)
        s.charge(0, 5, in_tx=True)
        s.charge(1, 7, in_tx=True)
        assert s.non_tx_cycles == 10
        assert s.tx_committed_cycles == 12
        assert s.tx_aborted_cycles == 0
        assert s.total_cycles == 22

    def test_reclassify_moves_cycles(self):
        s = Stats(num_cores=1)
        s.charge(0, 100, in_tx=True)
        s.reclassify_aborted(0, 40, WastedCause.READ_AFTER_WRITE)
        assert s.tx_committed_cycles == 60
        assert s.tx_aborted_cycles == 40
        assert s.wasted_by_cause[WastedCause.READ_AFTER_WRITE] == 40

    def test_reclassify_clamps(self):
        s = Stats(num_cores=1)
        s.charge(0, 10, in_tx=True)
        s.reclassify_aborted(0, 50, WastedCause.OTHER)
        assert s.tx_committed_cycles == 0
        assert s.tx_aborted_cycles == 10

    def test_get_breakdown(self):
        s = Stats(num_cores=1)
        s.gets, s.getx, s.getu = 3, 2, 1
        assert s.l3_get_requests == 6
        assert s.get_breakdown() == {"GETS": 3, "GETX": 2, "GETU": 1}

    def test_labeled_fraction(self):
        s = Stats(num_cores=1)
        assert s.labeled_fraction == 0.0
        s.instructions = 200
        s.labeled_instructions = 2
        assert s.labeled_fraction == 0.01

    def test_abort_rate(self):
        s = Stats(num_cores=1)
        assert s.abort_rate == 0.0
        s.commits, s.aborts = 3, 1
        assert s.abort_rate == 0.25

    def test_wasted_breakdown_has_all_causes(self):
        s = Stats(num_cores=1)
        wb = s.wasted_breakdown()
        assert set(wb) == {c.value for c in WastedCause}

    def test_summary_keys(self):
        s = Stats(num_cores=1)
        summary = s.summary()
        for key in ("cycles", "commits", "aborts", "l3_gets",
                    "labeled_fraction"):
            assert key in summary
