"""Evictions (Sec. III-B5): private U evictions (sole sharer writeback vs
forward-to-random-sharer), L3 inclusion evictions with reduction."""


from repro import Machine
from repro.coherence.messages import Requester
from repro.coherence.states import State
from repro.core.labels import add_label
from repro.params import CacheGeometry, small_config


def req(core):
    return Requester(core=core, ts=None, now=0)


def tiny_private_machine(l2_lines=2):
    """Machine whose private caches hold only a couple of lines."""
    cfg = small_config(
        num_cores=4,
        l1=CacheGeometry(size_bytes=l2_lines * 64, ways=1, latency=1),
        l2=CacheGeometry(size_bytes=l2_lines * 64, ways=1, latency=6),
    )
    machine = Machine(cfg)
    add = machine.register_label(add_label())
    return machine, machine.msys, add


class TestPrivateEvictions:
    def test_clean_eviction_drops_sharer(self):
        machine, msys, add = tiny_private_machine(l2_lines=2)
        msys.load(0, 0x1000, req(0))
        msys.load(0, 0x2000, req(0))
        msys.load(0, 0x3000, req(0))  # evicts 0x1000
        ent = msys.directory.peek(0x1000 // 64)
        assert ent.unshared  # no silent drops: the directory knows

    def test_dirty_eviction_writes_back(self):
        machine, msys, add = tiny_private_machine(l2_lines=2)
        msys.store(0, 0x1000, 77, req(0))
        msys.load(0, 0x2000, req(0))
        msys.load(0, 0x3000, req(0))
        ent = msys.directory.peek(0x1000 // 64)
        assert ent.unshared
        assert ent.words[0] == 77
        assert machine.stats.writebacks >= 1

    def test_sole_u_eviction_is_dirty_writeback(self):
        machine, msys, add = tiny_private_machine(l2_lines=2)
        machine.seed_word(0x1000, 10)
        msys.labeled_load(0, 0x1000, add, req(0))
        msys.labeled_store(0, 0x1000, add, 16, req(0))
        msys.load(0, 0x2000, req(0))
        msys.load(0, 0x3000, req(0))  # evicts the U line
        ent = msys.directory.peek(0x1000 // 64)
        assert ent.unshared
        assert ent.words[0] == 16
        assert machine.stats.u_evictions == 1

    def test_u_eviction_forwards_to_sharer(self):
        machine, msys, add = tiny_private_machine(l2_lines=2)
        machine.seed_word(0x1000, 10)
        msys.labeled_load(0, 0x1000, add, req(0))   # holds 10
        msys.labeled_load(1, 0x1000, add, req(1))   # identity
        msys.labeled_store(1, 0x1000, add, 5, req(1))
        # Evict core 1's U line by filling its private cache.
        msys.load(1, 0x2000, req(1))
        msys.load(1, 0x3000, req(1))
        ent = msys.directory.peek(0x1000 // 64)
        assert ent.u_sharers == {0}
        # Core 0 absorbed the evicted partial: 10 + 5.
        assert msys.caches[0].lookup(0x1000 // 64).words[0] == 15
        assert msys.peek_word(0x1000) == 15


class TestL3Evictions:
    def tiny_l3_machine(self):
        cfg = small_config(
            num_cores=4,
            l3=CacheGeometry(size_bytes=4 * 64, ways=1, latency=15),
            l3_banks=1,
        )
        machine = Machine(cfg)
        add = machine.register_label(add_label())
        return machine, machine.msys, add

    def test_l3_eviction_invalidate_owner(self):
        machine, msys, add = self.tiny_l3_machine()
        msys.store(0, 0x1000, 5, req(0))
        for i in range(1, 5):
            msys.load(1, 0x1000 + i * 0x40, req(1))
        # Line 0x1000 was evicted from the inclusive L3.
        assert msys.state_of(0, 0x1000) is State.I
        assert machine.memory.read_word(0x1000) == 5

    def test_l3_eviction_reduces_u_lines(self):
        machine, msys, add = self.tiny_l3_machine()
        machine.seed_word(0x1000, 3)
        msys.labeled_load(0, 0x1000, add, req(0))
        msys.labeled_load(1, 0x1000, add, req(1))
        msys.labeled_store(1, 0x1000, add, 4, req(1))
        for i in range(1, 5):
            msys.load(2, 0x1000 + i * 0x40, req(2))
        assert msys.state_of(0, 0x1000) is State.I
        assert msys.state_of(1, 0x1000) is State.I
        assert machine.memory.read_word(0x1000) == 7  # 3 + 4 reduced
