"""Differential tests for the coherence protocol's private-hit fast path.

The fast path (``MemorySystem.fast_load`` and friends, dispatched from the
engine's ``_op_*_fast`` handlers) is a host-side optimization only: for
every workload it must produce *bit-identical* simulated behaviour —
cycles, aborts, traffic, breakdowns — to the full protocol path that
``REPRO_NO_FASTPATH=1`` forces. These tests run every micro workload both
ways and compare ``Stats.comparable()``, which covers every simulated
statistic and excludes only the ``host_*`` instrumentation counters.
"""

import pytest

from repro.analysis.sanitizer import SANITIZE_ENV
from repro.harness.runner import run_workload
from repro.obs import OBS_ENV
from repro.sim.engine import NO_FASTPATH_ENV, fastpath_enabled
from repro.workloads.micro import (counter, linked_list, ordered_put,
                                   refcount, topk)

MICROS = {
    "counter": counter.build,
    "topk": topk.build,
    "ordered_put": ordered_put.build,
    "linked_list": linked_list.build,
    "refcount": refcount.build,
}


def _run(build, *, commtm, seed, no_fastpath, monkeypatch, sanitize=False):
    if no_fastpath:
        monkeypatch.setenv(NO_FASTPATH_ENV, "1")
    else:
        monkeypatch.delenv(NO_FASTPATH_ENV, raising=False)
    if sanitize:
        monkeypatch.setenv(SANITIZE_ENV, "1")
    else:
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
    # Pinned to the interpreted engine: this file differentially tests
    # *its* fast path, and asserts its host counters, which the vector
    # backend reports as "n/a (vector)". The vector backend has its own
    # oracle in tests/test_vector_equivalence.py. Obs is pinned off too:
    # an ambient REPRO_OBS=1 (the CI obs x vector leg exports it
    # suite-wide) deliberately disables the interpreted fast path, which
    # would contradict the hit-count assertions below.
    monkeypatch.delenv(OBS_ENV, raising=False)
    return run_workload(build, 4, num_cores=16, commtm=commtm, seed=seed,
                        total_ops=240, backend="interp")


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_fastpath_is_bit_identical(name, commtm, seed, monkeypatch):
    build = MICROS[name]
    fast = _run(build, commtm=commtm, seed=seed, no_fastpath=False,
                monkeypatch=monkeypatch)
    slow = _run(build, commtm=commtm, seed=seed, no_fastpath=True,
                monkeypatch=monkeypatch)

    assert fast.cycles == slow.cycles
    assert fast.stats.parallel_cycles == slow.stats.parallel_cycles
    assert fast.stats.aborts == slow.stats.aborts
    assert fast.stats.commits == slow.stats.commits
    # The full simulated surface: per-core breakdowns, wasted-cycle causes,
    # coherence traffic, CommTM mechanism counts, instruction counts.
    assert fast.stats.comparable() == slow.stats.comparable()

    # The escape hatch really forces the slow path: zero hits, zero
    # *attempts* — the hit rate reads None ("disabled"), not 0.0.
    assert slow.stats.host_fastpath_hits == 0
    assert slow.stats.host_fastpath_misses == 0
    assert slow.stats.fastpath_hit_rate is None
    # ...and the fast path really fires (every micro has private hits).
    assert fast.stats.host_fastpath_hits > 0
    assert 0.0 < fast.stats.fastpath_hit_rate <= 1.0


@pytest.mark.parametrize("no_fastpath", [False, True],
                         ids=["fastpath", "no-fastpath"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_sanitized_runs_are_clean_and_equivalent(name, no_fastpath,
                                                 monkeypatch):
    """REPRO_SANITIZE=1 finds no violation on any micro, on either path,
    and observes without disturbing: the simulated statistics are
    bit-identical to the unsanitized run."""
    build = MICROS[name]
    plain = _run(build, commtm=True, seed=1, no_fastpath=no_fastpath,
                 monkeypatch=monkeypatch)
    # A violation anywhere in the run raises SanitizerError and fails here.
    checked = _run(build, commtm=True, seed=1, no_fastpath=no_fastpath,
                   monkeypatch=monkeypatch, sanitize=True)
    assert checked.cycles == plain.cycles
    assert checked.stats.comparable() == plain.stats.comparable()
    for off in ("1", "true", "yes", " 1 "):
        monkeypatch.setenv(NO_FASTPATH_ENV, off)
        assert not fastpath_enabled()
    for on in ("", "0", "false", " FALSE "):
        monkeypatch.setenv(NO_FASTPATH_ENV, on)
        assert fastpath_enabled()
    monkeypatch.delenv(NO_FASTPATH_ENV)
    assert fastpath_enabled()


def test_counter_commtm_is_hit_dominated(monkeypatch):
    # The labeled counter is the fast path's best case: after warmup every
    # access is a U-state hit with a matching label.
    res = _run(MICROS["counter"], commtm=True, seed=1, no_fastpath=False,
               monkeypatch=monkeypatch)
    assert res.stats.fastpath_hit_rate > 0.9
