"""Structured observability layer (``repro.obs``).

Three contracts, in roughly increasing strength:

1. the Perfetto/Chrome trace export is schema-valid (required keys,
   monotonic per-lane timestamps, matched B/E span trees) and JSON
   round-trips;
2. transaction lifecycle records and hot-line metrics answer the
   attribution questions the aggregate Stats cannot ("which core aborted
   whom, on which line, under which label");
3. observing never disturbs: an obs-on run is bit-identical in cycles and
   ``Stats.comparable()`` to the obs-off run, across every micro workload
   on both systems (the obs-on engine takes the full-handler path, already
   proven equivalent by ``test_fastpath_equivalence.py``).
"""

import json
import pickle

import pytest

from repro.core.machine import Machine
from repro.harness.runner import run_workload
from repro.obs import (
    METRICS_SCHEMA,
    OBS_ENV,
    REPORT_SCHEMA,
    TRACE_SCHEMA,
    MetricsRegistry,
    TraceRecorder,
    chrome_trace,
    merge_traces,
    obs_enabled,
    per_label_table,
    point_report,
)
from repro.params import small_config
from repro.workloads.micro import (counter, linked_list, ordered_put,
                                   refcount, topk)

MICROS = {
    "counter": counter.build,
    "topk": topk.build,
    "ordered_put": ordered_put.build,
    "linked_list": linked_list.build,
    "refcount": refcount.build,
}


def _run(build, *, commtm, seed=1, observe=False, monkeypatch):
    if observe:
        monkeypatch.setenv(OBS_ENV, "1")
    else:
        monkeypatch.delenv(OBS_ENV, raising=False)
    # Pinned to the interpreted engine: these tests assert its host-side
    # instrumentation (fast-path hit rates, run-ahead batching) which the
    # vector backend reports as "n/a (vector)". The vector x obs
    # composition — identical payloads across backends — is covered by
    # tests/test_vector_obs_parity.py.
    return run_workload(build, 4, num_cores=16, commtm=commtm, seed=seed,
                        total_ops=240, backend="interp")


def _observed_machine(build=None, *, commtm=True, threads=8, total_ops=400,
                      seed=3):
    """A completed counter-micro run with the Observer installed."""
    build = build or MICROS["counter"]
    machine = Machine(small_config(num_cores=16, seed=seed,
                                   commtm_enabled=commtm), observe=True)
    built = build(machine, threads, total_ops=total_ops)
    machine.run(built.bodies)
    return machine


# ---------------------------------------------------------------------------
# Perfetto export: schema validation and round-trip
# ---------------------------------------------------------------------------

REQUIRED_BY_PH = {
    "B": ("name", "cat", "tid", "ts"),
    "E": ("tid", "ts"),
    "X": ("name", "tid", "ts", "dur"),
    "i": ("name", "tid", "ts", "s"),
    "C": ("name", "ts", "args"),
    "M": ("name", "args"),
}


def validate_chrome_trace(trace: dict) -> None:
    assert trace["schema"] == TRACE_SCHEMA
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    last_ts = {}
    depth = {}
    for event in events:
        ph = event["ph"]
        assert ph in REQUIRED_BY_PH, f"unknown phase {ph!r}"
        assert "pid" in event
        for key in REQUIRED_BY_PH[ph]:
            assert key in event, f"{ph} event missing {key}: {event}"
        if ph == "M":
            continue
        lane = (event["pid"], event["tid"])
        assert event["ts"] >= last_ts.get(lane, 0), \
            f"non-monotonic ts in lane {lane}"
        last_ts[lane] = event["ts"]
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            assert depth[lane] >= 0, f"E without B in lane {lane}"
    assert all(d == 0 for d in depth.values()), f"unclosed spans: {depth}"


@pytest.mark.parametrize("commtm", [True, False], ids=["commtm", "baseline"])
def test_counter_trace_is_schema_valid(commtm):
    machine = _observed_machine(commtm=commtm)
    trace = chrome_trace(machine.obs, point="counter")
    validate_chrome_trace(trace)
    counts = trace["otherData"]["event_counts"]
    assert counts["tx"] == counts["E"] > 0
    if not commtm:  # contended unlabeled counter: aborts guaranteed
        assert counts["backoff"] > 0


def test_trace_json_round_trip(tmp_path):
    machine = _observed_machine()
    trace = chrome_trace(machine.obs, point="counter")
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(trace))
    validate_chrome_trace(json.loads(path.read_text()))


def test_merge_traces_assigns_one_pid_per_point():
    machines = [_observed_machine(threads=2, total_ops=60, seed=s)
                for s in (1, 2)]
    payloads = [(f"point{i}", m.obs.payload()["trace"])
                for i, m in enumerate(machines)]
    merged = merge_traces(payloads)
    validate_chrome_trace(merged)
    pids = {e["pid"] for e in merged["traceEvents"]}
    assert pids == {0, 1}
    names = {e["args"]["name"] for e in merged["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert names == {"point0", "point1"}


class TestTraceRecorder:
    def test_dropped_counted_and_spans_stay_matched(self):
        rec = TraceRecorder(limit=3)
        rec.begin_span(0, 0, "tx")
        rec.begin_span(1, 1, "tx")
        rec.instant(0, 2, "nack")      # hits the limit exactly
        rec.instant(0, 3, "nack")      # dropped
        rec.begin_span(2, 4, "tx")     # dropped: no E may follow
        rec.end_span(0, 5)             # open span: E forced past the limit
        rec.end_span(2, 6)             # B was dropped: must not emit
        assert rec.dropped == 2
        assert rec.counts()["dropped"] == 2
        phases = [e["ph"] for e in rec.events]
        assert phases.count("B") == phases.count("E") + 1  # core 1 open
        assert rec.close_open_spans() == 1

    def test_close_open_spans_uses_max_ts(self):
        rec = TraceRecorder()
        rec.begin_span(0, 10, "tx")
        rec.instant(1, 99, "nack")
        rec.close_open_spans()
        assert rec.events[-1]["ph"] == "E"
        assert rec.events[-1]["ts"] == 99
        assert rec.events[-1]["args"]["outcome"] == "unfinished"


# ---------------------------------------------------------------------------
# Lifecycle records and abort attribution
# ---------------------------------------------------------------------------

def test_lifecycle_records_and_attribution():
    # Contended unlabeled counter: every abort is a conflict on the one
    # counter line, so attribution must name it, with attacker cores.
    machine = _observed_machine(commtm=False)
    payload = machine.obs.payload()
    summary = payload["lifecycle"]["summary"]
    assert summary["transactions"] == summary["committed"] == 400
    assert summary["aborted_attempts"] > 0
    assert summary["wasted_cycles"] > 0

    attribution = payload["lifecycle"]["abort_attribution"]
    assert attribution, "contended run must produce attribution rows"
    top = attribution[0]
    assert top["line"] is not None
    assert top["cause"]
    assert top["aborts"] > 0
    assert top["attackers"], "attacker cores must be attributed"
    # Rows are sorted most-aborting first.
    aborts = [row["aborts"] for row in attribution]
    assert aborts == sorted(aborts, reverse=True)
    # Per-event detail: every abort carries its cycle, attempt and sizes.
    aborted = [t for t in payload["lifecycle"]["transactions"] if t["aborts"]]
    assert aborted
    event = aborted[0]["aborts"][0]
    assert event["attempt"] >= 1
    assert event["read_set"] + event["write_set"] + event["labeled_set"] > 0

    assert sum(len(t["aborts"]) for t in payload["lifecycle"]["transactions"]
               ) == summary["aborted_attempts"]


def test_committed_lifecycle_has_labeled_sets():
    machine = _observed_machine(commtm=True)
    payload = machine.obs.payload()
    assert payload["lifecycle"]["summary"]["max_labeled_set"] >= 1
    committed = [t for t in payload["lifecycle"]["transactions"]
                 if t["outcome"] == "committed"]
    assert committed and all(t["end_cycle"] is not None for t in committed)


def test_payload_is_picklable():
    machine = _observed_machine(threads=2, total_ops=60)
    payload = machine.obs.payload()
    assert pickle.loads(pickle.dumps(payload)) == payload


# ---------------------------------------------------------------------------
# Hot-line metrics
# ---------------------------------------------------------------------------

def test_hot_line_metrics_surface_via_stats():
    machine = _observed_machine(commtm=True)
    hot = machine.stats.host_hot_lines
    assert hot, "an observed run must publish hot lines"
    assert hot == machine.obs.metrics.top()
    touches = [m["touches"] for m in hot]
    assert touches == sorted(touches, reverse=True)
    # The counter line dominates and is labeled.
    assert hot[0]["labeled_touches"] > 0
    assert "ADD" in hot[0]["by_label"]


def test_metrics_registry_top_k():
    reg = MetricsRegistry()
    for _ in range(3):
        reg.touch(7, "ADD")
    reg.touch(9)
    reg.nack(9)
    reg.invalidation(7, 4)
    top = reg.top(1)
    assert len(top) == 1 and top[0]["line"] == 7
    assert top[0]["touches"] == 3
    assert top[0]["invalidations"] == 4
    assert reg.top()[1] == {
        "line": 9, "touches": 1, "labeled_touches": 0, "reductions": 0,
        "gathers": 0, "invalidations": 0, "nacks": 1, "by_label": {},
    }
    assert reg.per_label() == {"ADD": 3}


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def test_per_label_table_covers_gathers(monkeypatch):
    res = _run(MICROS["topk"], commtm=True, monkeypatch=monkeypatch)
    table = per_label_table(res.stats)
    assert table, "topk exercises labeled ops"
    name, row = next(iter(table.items()))
    assert set(row) == {"labeled_instructions", "reductions", "gathers"}
    assert sum(r["labeled_instructions"] for r in table.values()) == \
        res.stats.labeled_instructions
    assert sum(r["gathers"] for r in table.values()) == res.stats.gathers


def test_point_report_includes_obs_sections(monkeypatch):
    res = _run(MICROS["counter"], commtm=False, observe=True,
               monkeypatch=monkeypatch)
    report = point_report(res)
    assert report["name"] == "counter"
    assert report["cycles"] == res.cycles
    for key in ("lifecycle", "abort_attribution", "hot_lines", "per_label"):
        assert key in report
    assert report["abort_attribution"]
    # Observed runs never attempt the coherence fast path, and the host
    # section spells the resulting None hit rate as "disabled".
    assert report["host"]["fastpath_hit_rate"] == "disabled"
    assert report["host"]["fastpath_gated"] is False
    assert report["host"]["runahead_batches"] > 0
    assert report["host"]["runahead_ops_per_batch"] >= 1.0
    # Without obs the report still renders, minus the obs sections.
    plain = _run(MICROS["counter"], commtm=False, monkeypatch=monkeypatch)
    bare = point_report(plain)
    assert "abort_attribution" not in bare
    assert bare["cycles"] == report["cycles"]  # obs never disturbs
    assert bare["host"]["fastpath_hit_rate"] != "disabled"


def test_cli_writes_versioned_artifacts(tmp_path, monkeypatch):
    # main() mutates OBS_ENV directly; seed it so monkeypatch restores it.
    monkeypatch.setenv(OBS_ENV, "0")
    from repro.harness.__main__ import main

    trace_out = tmp_path / "trace.json"
    report_out = tmp_path / "report.json"
    metrics_out = tmp_path / "metrics.json"
    rc = main(["fig09", "--threads", "1", "--scale", "0.02", "--jobs", "1",
               "--no-cache",
               "--trace-out", str(trace_out),
               "--report-json", str(report_out),
               "--metrics-out", str(metrics_out)])
    assert rc == 0
    trace = json.loads(trace_out.read_text())
    validate_chrome_trace(trace)
    report = json.loads(report_out.read_text())
    assert report["schema"] == REPORT_SCHEMA
    assert report["experiment"] == "fig09"
    assert report["points"]
    assert all("per_label" in p and "lifecycle" in p
               for p in report["points"])
    metrics = json.loads(metrics_out.read_text())
    assert metrics["schema"] == METRICS_SCHEMA
    assert any(p["hot_lines"] for p in metrics["points"])


# ---------------------------------------------------------------------------
# Equivalence: observing never disturbs the simulation
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("commtm", [True, False], ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_obs_is_bit_identical(name, commtm, monkeypatch):
    # Interpreted engine only; tests/test_vector_obs_parity.py holds the
    # vector backend to the same bar plus payload equality.
    build = MICROS[name]
    plain = _run(build, commtm=commtm, monkeypatch=monkeypatch)
    observed = _run(build, commtm=commtm, observe=True,
                    monkeypatch=monkeypatch)
    assert observed.cycles == plain.cycles
    assert observed.stats.comparable() == plain.stats.comparable()
    # The observed run really took the full-handler path and collected.
    assert observed.stats.host_fastpath_hits == 0
    assert observed.info.get("obs") is not None
    assert plain.info.get("obs") is None


def test_obs_enabled_env_parsing(monkeypatch):
    monkeypatch.delenv(OBS_ENV, raising=False)
    assert not obs_enabled()
    assert obs_enabled(default=True)
    for on in ("1", "true", "yes", " 1 "):
        monkeypatch.setenv(OBS_ENV, on)
        assert obs_enabled()
    for off in ("", "0", "false", " NO "):
        monkeypatch.setenv(OBS_ENV, off)
        assert not obs_enabled()


def test_machine_without_obs_installs_nothing(monkeypatch):
    monkeypatch.delenv(OBS_ENV, raising=False)
    machine = Machine(small_config(num_cores=4))
    assert machine.obs is None
    assert machine.msys.obs is None
    assert machine.conflicts.obs is None
