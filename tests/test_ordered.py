"""Ordered speculation (TLS-style loop parallelization, Sec. III-D
"Other contexts")."""

import pytest

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Store, Work
from repro.core.labels import add_label
from repro.params import small_config
from repro.runtime.ordered import OrderedAtomic, OrderedRegion, parallel_for


def make(**kw):
    machine = Machine(small_config(num_cores=4, **kw))
    machine.register_label(add_label())
    return machine


class TestOrderedAtomic:
    def test_carries_negative_timestamp(self):
        def fn(ctx):
            yield Work(1)

        op = OrderedAtomic(fn, 7)
        assert op.order == 7
        assert op.ts < 0

    def test_rejects_negative_order(self):
        with pytest.raises(ValueError):
            OrderedAtomic(lambda ctx: iter(()), -1)

    def test_order_is_priority(self):
        assert OrderedAtomic(lambda c: iter(()), 0).ts < \
            OrderedAtomic(lambda c: iter(()), 1).ts


class TestOrderedExecution:
    def test_commits_in_program_order(self):
        machine = make()
        committed = []

        def iteration(ctx, i):
            yield Work((5 - i % 4) * 20)  # later iterations finish earlier

        bodies, region = parallel_for(machine, 4, 12, iteration)

        # Record order by reading the token trajectory: the final token
        # must equal the iteration count, and serializability of the
        # token increments forces program order.
        machine.run(bodies)
        assert machine.read_word(region.token_addr) == 12

    def test_loop_carried_dependence_respected(self):
        """Each iteration appends to a sequence cell: the result must be
        exactly program order despite parallel speculation."""
        machine = make()
        seq = machine.alloc.alloc_line()
        machine.seed_word(seq, ())

        def iteration(ctx, i):
            cur = yield Load(seq)
            yield Work(10)
            yield Store(seq, cur + (i,))

        bodies, _region = parallel_for(machine, 4, 10, iteration)
        machine.run(bodies)
        assert machine.read_word(seq) == tuple(range(10))
        assert machine.stats.aborts > 0  # speculation actually happened

    def test_reduction_variable_with_commtm(self):
        """A commutative reduction variable does not serialize the
        speculative loop: labeled updates cross iterations freely."""
        machine = make()
        add = machine.labels.get("ADD")
        total = machine.alloc.alloc_line()

        def iteration(ctx, i):
            v = yield LabeledLoad(total, add)
            yield LabeledStore(total, add, v + i)

        bodies, _region = parallel_for(machine, 4, 16, iteration)
        machine.run(bodies)
        machine.flush_reducible()
        assert machine.read_word(total) == sum(range(16))

    def test_ordered_wins_against_unordered(self):
        """Ordered transactions carry older timestamps than any unordered
        transaction, so the speculative loop is never starved."""
        machine = make()
        cell = machine.alloc.alloc_line()
        region = OrderedRegion(machine)

        def iteration(ctx, i):
            v = yield Load(cell)
            yield Work(30)
            yield Store(cell, v + 1)

        def ordered_body(ctx):
            for i in range(6):
                yield region.atomic(iteration, i)

        def unordered_txn(ctx):
            v = yield Load(cell)
            yield Work(30)
            yield Store(cell, v + 1)

        def unordered_body(ctx):
            for _ in range(6):
                yield Atomic(unordered_txn)

        machine.run([ordered_body, unordered_body])
        assert machine.read_word(cell) == 12

    def test_single_thread_no_aborts(self):
        machine = make()

        def iteration(ctx, i):
            yield Work(5)

        bodies, region = parallel_for(machine, 1, 8, iteration)
        machine.run(bodies)
        assert machine.stats.aborts == 0
        assert machine.read_word(region.token_addr) == 8
