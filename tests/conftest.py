"""Shared fixtures: small machines and protocol sandboxes."""

import pytest

from repro import Machine
from repro.params import small_config
from repro.coherence.messages import Requester
from repro.core.labels import add_label


@pytest.fixture
def machine():
    """A small 4-core CommTM machine."""
    return Machine(small_config(num_cores=4))


@pytest.fixture
def machine8():
    """A small 8-core CommTM machine."""
    return Machine(small_config(num_cores=8))


@pytest.fixture
def baseline_machine():
    """A small 4-core machine with CommTM disabled (baseline HTM)."""
    return Machine(small_config(num_cores=4, commtm_enabled=False))


@pytest.fixture
def msys(machine):
    """Direct access to the memory system, with an ADD label registered."""
    machine.register_label(add_label())
    return machine.msys


def nonspec(core: int) -> Requester:
    """A non-speculative requester for direct protocol tests."""
    return Requester(core=core, ts=None, now=0)


@pytest.fixture
def req():
    return nonspec
