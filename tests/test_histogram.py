"""Histogram datatype: packed per-line ADD counters."""

import pytest

from repro import Atomic, Machine
from repro.datatypes import Histogram
from repro.params import small_config


def make():
    return Machine(small_config(num_cores=4))


def test_bins_pack_eight_per_line():
    machine = make()
    hist = Histogram(machine, num_bins=16)
    assert hist.bin_addr(0) % 64 == 0
    assert hist.bin_addr(7) // 64 == hist.bin_addr(0) // 64
    assert hist.bin_addr(8) // 64 == hist.bin_addr(0) // 64 + 1


def test_concurrent_updates_no_conflicts():
    machine = make()
    hist = Histogram(machine, num_bins=12)

    def body(ctx):
        for i in range(24):
            yield Atomic(hist.add, i % 12, 1)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    assert hist.snapshot(machine) == [8] * 12
    assert machine.stats.aborts == 0


def test_partial_line_identity_padding():
    machine = make()
    hist = Histogram(machine, num_bins=3)  # 5 padding words on the line

    def body(ctx):
        yield Atomic(hist.add, ctx.tid % 3, 10)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    snap = hist.snapshot(machine)
    assert sum(snap) == 40
    assert all(v >= 0 for v in snap)


def test_read_bin_triggers_reduction():
    machine = make()
    hist = Histogram(machine, num_bins=8)
    seen = []

    def writer(ctx):
        for _ in range(5):
            yield Atomic(hist.add, 2, 1)

    def reader(ctx):
        from repro.runtime.ops import Work
        yield Work(2000)
        seen.append((yield Atomic(hist.read_bin, 2)))

    machine.run([writer, writer, reader])
    assert seen and 0 <= seen[0] <= 10
    assert machine.stats.reductions >= 1


def test_out_of_range_bin():
    machine = make()
    hist = Histogram(machine, num_bins=4)
    with pytest.raises(IndexError):
        hist.bin_addr(4)


def test_invalid_bin_count():
    with pytest.raises(ValueError):
        Histogram(make(), num_bins=0)
