"""Obs-payload parity: the vector backend under ``REPRO_OBS=1``.

The observability layer used to force the vector engine to delegate whole
runs to the interpreted path. It no longer does: epochs stay engaged, and
the engine synthesizes the interpreted path's emissions at their exact
strict positions — fused transactions emit begin spans at pop time and
*deferred* commit records (ordered by ``(commit cycle, core)``, fired
from the epoch and strict loops so the machine-wide counter samples taken
inside ``tx_commit`` see the same interleaved state), per-op touches feed
the aggregate metrics registry, certifier-executed misses report through
the ordinary hooks via ``Requester.now``, and the strict stepper reuses
the interpreted handler path unchanged.

These tests prove the strong form of that contract across all ten
workloads on both systems: an observed vector run is bit-identical in
simulated results *and* produces the identical observability payload —
trace events, transaction lifecycle records, abort attribution, hot-line
metrics — as the observed interpreted run. The only deltas allowed are
the vector-only additions with no interpreted counterpart (the engine
lane, the host wall-clock lane, and the hostprof section), which are
stripped before comparison and asserted separately.
"""

import copy

import pytest

from repro.obs import TRACE_SCHEMA, chrome_trace
from repro.sim.vector import available

from .test_obs import validate_chrome_trace
from .test_vector_equivalence import APPS, MICROS, _assert_parity, _run

pytestmark = pytest.mark.skipif(
    not available(), reason="vector backend requires numpy")


def _stripped_payload(result):
    """The obs payload minus the vector-only sections (deep-copied: the
    comparison must not mutate ``result.info``)."""
    payload = copy.deepcopy(result.info["obs"])
    payload.pop("hostprof", None)
    payload["trace"].pop("vector_events", None)
    payload["trace"].pop("host_events", None)
    return payload


def _run_pair(build, *, commtm, seed, monkeypatch, **params):
    interp = _run(build, backend="interp", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch, observe=True, **params)
    vector = _run(build, backend="vector", commtm=commtm, seed=seed,
                  monkeypatch=monkeypatch, observe=True, **params)
    return interp, vector


def _assert_obs_parity(interp, vector):
    _assert_parity(interp, vector)
    assert _stripped_payload(interp) == _stripped_payload(vector)
    # The vector run really ran vectorized while observed.
    assert vector.stats.host_backend == "vector"
    assert vector.stats.host_vector_epochs > 0
    # The vector-only sections exist and carry the host accounting.
    obs = vector.info["obs"]
    assert obs["hostprof"]["schema"] == "repro-obs-hostprof/1"
    assert "epoch" in obs["hostprof"]["phases"]
    assert interp.info["obs"]["trace"]["vector_events"] == []


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_observed_vector_micro_payloads_match(name, commtm, seed,
                                              monkeypatch):
    interp, vector = _run_pair(MICROS[name], commtm=commtm, seed=seed,
                               monkeypatch=monkeypatch)
    _assert_obs_parity(interp, vector)


@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(APPS))
def test_observed_vector_app_payloads_match(name, commtm, monkeypatch):
    build, params = APPS[name]
    interp, vector = _run_pair(build, commtm=commtm, seed=1,
                               monkeypatch=monkeypatch, total_ops=None,
                               **params)
    _assert_obs_parity(interp, vector)
    if name == "kmeans" and commtm:
        # Fused transactions fired under observation: the synthesized
        # begin/commit emissions above came from the closed form, not
        # from an interpreted fallback.
        assert vector.stats.host_vector_fused_txs > 0


@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
def test_observed_vector_trace_is_schema_valid(commtm, monkeypatch):
    """The merged v2 trace — core lanes plus the engine and host lanes —
    passes the same structural validation as the interpreted export."""
    _, vector = _run_pair(MICROS["counter"], commtm=commtm, seed=1,
                          monkeypatch=monkeypatch)
    from repro.core.machine import Machine  # noqa: F401 (import guard)

    obs = vector.info["obs"]

    # Rebuild a chrome trace from the payload the way merge_traces does:
    # the payload carries the raw event lists.
    from repro.obs.perfetto import merge_traces

    merged = merge_traces([("vector-point", obs["trace"])])
    assert merged["schema"] == TRACE_SCHEMA
    validate_chrome_trace(merged)
    lanes = {e["tid"] for e in merged["traceEvents"] if e["ph"] == "M"
             and e["name"] == "thread_name"}
    names = {e["args"]["name"] for e in merged["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "engine (vector)" in names
    assert "host (wall µs)" in names
    assert len(lanes) >= 3  # cores + engine + host


def test_merge_traces_reads_v1_payloads(monkeypatch):
    """Backward compatibility: a /1-era payload (no vector_events /
    host_events keys) still merges cleanly."""
    interp, _ = _run_pair(MICROS["counter"], commtm=True, seed=1,
                          monkeypatch=monkeypatch)
    from repro.obs.perfetto import merge_traces

    legacy = copy.deepcopy(interp.info["obs"]["trace"])
    legacy.pop("vector_events", None)
    legacy.pop("host_events", None)
    merged = merge_traces([("legacy-point", legacy)])
    validate_chrome_trace(merged)
    names = {e["args"]["name"] for e in merged["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert "engine (vector)" not in names
    assert "host (wall µs)" not in names


def test_obs_off_vector_engine_installs_nothing(monkeypatch):
    """With no Observer the engine carries no obs machinery: the hooks
    resolve to None once at setup, the deferred-commit heap stays empty
    (its truthiness is the only per-iteration check the hot loops pay),
    and no profiler exists. The wall-clock side of this guarantee is the
    paired obs-off/obs-on A/B in benchmarks/test_sim_throughput.py."""
    from repro.core.machine import Machine
    from repro.params import small_config
    from repro.obs import OBS_ENV
    from repro.sim.vector.engine import VectorEngine

    monkeypatch.delenv(OBS_ENV, raising=False)
    machine = Machine(small_config(num_cores=8, seed=1, commtm_enabled=True))
    built = MICROS["counter"](machine, 4, total_ops=120)
    engine = VectorEngine(machine, built.bodies)
    assert machine.obs is None
    assert engine._obs is None
    assert engine._prof is None
    engine.run()
    assert engine._obs_deferred == []
    assert machine.stats.host_vector_epochs > 0


def test_live_chrome_trace_includes_vector_lanes(monkeypatch):
    """chrome_trace on a live observed machine (not a pickled payload)
    exports the engine and host lanes directly."""
    from repro.core.machine import Machine
    from repro.params import small_config
    from repro.obs import OBS_ENV

    monkeypatch.delenv(OBS_ENV, raising=False)
    machine = Machine(small_config(num_cores=8, seed=1, commtm_enabled=True),
                      observe=True, backend="vector")
    built = MICROS["counter"](machine, 4, total_ops=120)
    machine.run(built.bodies)
    trace = chrome_trace(machine.obs, point="counter-vector")
    validate_chrome_trace(trace)
    epoch_spans = [e for e in trace["traceEvents"]
                   if e.get("name") == "epoch" and e.get("cat") == "interval"]
    assert epoch_spans
    assert all("ops" in e["args"] and "causes" in e["args"]
               for e in epoch_spans)
    host_spans = [e for e in trace["traceEvents"]
                  if e.get("cat") == "host"]
    assert host_spans
