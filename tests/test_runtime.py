"""Runtime vocabulary and thread context."""

import pytest

from repro import Machine
from repro.core.labels import add_label
from repro.params import small_config
from repro.runtime import ops as ops_module
from repro.runtime.ops import (
    Atomic,
    Barrier,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    MEMORY_OPS,
    Store,
    Work,
)
from repro.runtime.thread_api import ThreadCtx


class TestOps:
    def test_ops_are_mutable_and_slotted(self):
        # The shuttle API reuses op instances by mutating their fields
        # (consume-before-resume contract), so ops must be writable —
        # but still slotted: no stray attributes, no per-op __dict__.
        op = Load(addr=8)
        op.addr = 16
        assert op.addr == 16
        with pytest.raises(AttributeError):
            op.extra = 1

    def test_work_and_barrier_are_interned(self):
        assert ops_module.work(40) is ops_module.work(40)
        assert ops_module.work(40).cycles == 40
        assert ops_module.work(40) is not ops_module.work(41)
        assert ops_module.BARRIER is ops_module.BARRIER
        assert isinstance(ops_module.BARRIER, Barrier)

    def test_memory_ops_tuple(self):
        assert Load in MEMORY_OPS
        assert Store in MEMORY_OPS
        assert LoadGather in MEMORY_OPS
        assert Work not in MEMORY_OPS
        assert Barrier not in MEMORY_OPS

    def test_atomic_repr(self):
        def my_txn(ctx):
            yield Work(1)

        op = Atomic(my_txn, 1, 2)
        assert "my_txn" in repr(op)
        assert op.args == (1, 2)

    def test_atomic_make_generator(self):
        seen = []

        def txn(ctx, x):
            seen.append((ctx, x))
            yield Work(1)

        gen = Atomic(txn, 42).make_generator("CTX")
        next(gen)
        assert seen == [("CTX", 42)]

    def test_labeled_ops_hold_label(self):
        label = add_label()
        assert LabeledLoad(0, label).label is label
        assert LabeledStore(0, label, 5).value == 5
        assert LoadGather(8, label).addr == 8


class TestThreadCtx:
    def make_ctx(self, tid=0):
        machine = Machine(small_config(num_cores=4))
        machine.register_label(add_label())
        return machine, ThreadCtx(tid, machine)

    def test_tid_and_num_threads(self):
        machine, ctx = self.make_ctx(2)
        assert ctx.tid == 2
        assert ctx.num_threads == 4

    def test_label_lookup(self):
        machine, ctx = self.make_ctx()
        assert ctx.label("ADD") is machine.labels.get("ADD")

    def test_alloc_routes_to_machine(self):
        machine, ctx = self.make_ctx()
        a = ctx.alloc_words(2)
        b = ctx.alloc_line()
        assert b % 64 == 0
        assert a != b

    def test_thread_alloc_private(self):
        machine, ctx0 = self.make_ctx(0)
        ctx1 = ThreadCtx(1, machine)
        a = ctx0.thread_alloc_words(2)
        b = ctx1.thread_alloc_words(2)
        assert abs(a - b) >= 0x0100_0000

    def test_rng_deterministic_per_thread(self):
        machine, ctx = self.make_ctx(3)
        machine2 = Machine(small_config(num_cores=4))
        ctx2 = ThreadCtx(3, machine2)
        assert ctx.rng.random() == ctx2.rng.random()

    def test_rng_differs_across_threads(self):
        machine, ctx0 = self.make_ctx(0)
        ctx1 = ThreadCtx(1, machine)
        assert ctx0.rng.random() != ctx1.rng.random()

    def test_op_shuttles_reuse_one_instance(self):
        machine, ctx = self.make_ctx()
        first = ctx.load(8)
        second = ctx.load(64)
        assert first is second  # mutate-and-return, no per-op allocation
        assert second.addr == 64
        assert ctx.store(8, "v") is ctx.store(16, "w")
        assert ctx.work(40) is ctx.work(120)
        assert ctx.work(120).cycles == 120

    def test_labeled_shuttles_carry_full_payload(self):
        machine, ctx = self.make_ctx()
        label = machine.labels.get("ADD")
        op = ctx.labeled_store(24, label, 7)
        assert (op.addr, op.label, op.value) == (24, label, 7)
        assert isinstance(op, LabeledStore)
        gather = ctx.load_gather(24, label)
        assert isinstance(gather, LoadGather)
        assert gather.label is label
        assert isinstance(ctx.labeled_load(8, label), LabeledLoad)

    def test_shuttles_are_private_per_ctx(self):
        machine, ctx0 = self.make_ctx(0)
        ctx1 = ThreadCtx(1, machine)
        assert ctx0.load(8) is not ctx1.load(8)
        assert ctx0.barrier() is ctx1.barrier()  # payload-free: interned
