"""Runtime vocabulary and thread context."""

import pytest

from repro import Machine
from repro.core.labels import add_label
from repro.params import small_config
from repro.runtime.ops import (
    Atomic,
    Barrier,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    MEMORY_OPS,
    Store,
    Work,
)
from repro.runtime.thread_api import ThreadCtx


class TestOps:
    def test_ops_are_immutable(self):
        op = Load(addr=8)
        with pytest.raises(Exception):
            op.addr = 16

    def test_memory_ops_tuple(self):
        assert Load in MEMORY_OPS
        assert Store in MEMORY_OPS
        assert LoadGather in MEMORY_OPS
        assert Work not in MEMORY_OPS
        assert Barrier not in MEMORY_OPS

    def test_atomic_repr(self):
        def my_txn(ctx):
            yield Work(1)

        op = Atomic(my_txn, 1, 2)
        assert "my_txn" in repr(op)
        assert op.args == (1, 2)

    def test_atomic_make_generator(self):
        seen = []

        def txn(ctx, x):
            seen.append((ctx, x))
            yield Work(1)

        gen = Atomic(txn, 42).make_generator("CTX")
        next(gen)
        assert seen == [("CTX", 42)]

    def test_labeled_ops_hold_label(self):
        label = add_label()
        assert LabeledLoad(0, label).label is label
        assert LabeledStore(0, label, 5).value == 5
        assert LoadGather(8, label).addr == 8


class TestThreadCtx:
    def make_ctx(self, tid=0):
        machine = Machine(small_config(num_cores=4))
        machine.register_label(add_label())
        return machine, ThreadCtx(tid, machine)

    def test_tid_and_num_threads(self):
        machine, ctx = self.make_ctx(2)
        assert ctx.tid == 2
        assert ctx.num_threads == 4

    def test_label_lookup(self):
        machine, ctx = self.make_ctx()
        assert ctx.label("ADD") is machine.labels.get("ADD")

    def test_alloc_routes_to_machine(self):
        machine, ctx = self.make_ctx()
        a = ctx.alloc_words(2)
        b = ctx.alloc_line()
        assert b % 64 == 0
        assert a != b

    def test_thread_alloc_private(self):
        machine, ctx0 = self.make_ctx(0)
        ctx1 = ThreadCtx(1, machine)
        a = ctx0.thread_alloc_words(2)
        b = ctx1.thread_alloc_words(2)
        assert abs(a - b) >= 0x0100_0000

    def test_rng_deterministic_per_thread(self):
        machine, ctx = self.make_ctx(3)
        machine2 = Machine(small_config(num_cores=4))
        ctx2 = ThreadCtx(3, machine2)
        assert ctx.rng.random() == ctx2.rng.random()

    def test_rng_differs_across_threads(self):
        machine, ctx0 = self.make_ctx(0)
        ctx1 = ThreadCtx(1, machine)
        assert ctx0.rng.random() != ctx1.rng.random()
