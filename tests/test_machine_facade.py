"""Machine facade: seeding, flushing, label registration, result object."""

import pytest

from repro import Atomic, LabeledLoad, LabeledStore, Machine, Work
from repro.core.labels import add_label, min_label
from repro.datatypes.linked_list import ConcurrentLinkedList
from repro.errors import SimulationError
from repro.params import small_config


def make(**kw):
    return Machine(small_config(num_cores=4, **kw))


class TestSeedReducible:
    def test_commtm_installs_u_lines(self):
        machine = make()
        add = machine.register_label(add_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, add, {0: 3, 1: 4, 2: 5})
        assert machine.read_word(addr) == 12
        ent = machine.msys.directory.peek(addr // 64)
        assert ent.u_sharers == {0, 1, 2}

    def test_baseline_reduces_host_side(self):
        machine = make(commtm_enabled=False)
        add = machine.register_label(add_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, add, {0: 3, 1: 4})
        assert machine.memory.read_word(addr) == 7
        assert machine.msys.directory.peek(addr // 64) is None

    def test_baseline_nonnumeric_label(self):
        machine = make(commtm_enabled=False)
        mi = machine.register_label(min_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, mi, {0: 9, 1: 2, 2: 5})
        assert machine.memory.read_word(addr) == 2

    def test_rejects_already_shared_line(self):
        machine = make()
        add = machine.register_label(add_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, add, {0: 1})
        with pytest.raises(SimulationError):
            machine.seed_reducible(addr, add, {1: 2})

    def test_seeded_state_runs_correctly(self):
        machine = make()
        add = machine.register_label(add_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, add, {c: 10 for c in range(4)})

        def txn(ctx):
            v = yield LabeledLoad(addr, add)
            yield LabeledStore(addr, add, v + 1)

        def body(ctx):
            for _ in range(5):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(addr) == 40 + 20


class TestFlushReducible:
    def test_flush_idempotent(self):
        machine = make()
        add = machine.register_label(add_label())
        addr = machine.alloc.alloc_line()
        machine.seed_reducible(addr, add, {0: 1, 1: 2})
        machine.flush_reducible()
        machine.flush_reducible()
        assert machine.read_word(addr) == 3

    def test_flush_runs_line_level_handlers(self):
        """Linked-list reductions write real next pointers; flushing must
        produce a walkable chain."""
        machine = make()
        lst = ConcurrentLinkedList(machine)

        def body(ctx):
            yield Atomic(lst.enqueue, ctx.tid)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        desc = machine.read_word(lst.desc_addr)
        assert desc != 0
        node, _tail = desc
        seen = []
        while node != 0:
            seen.append(machine.read_word(node))
            node = machine.read_word(node + 8)
        assert sorted(seen) == [0, 1, 2, 3]


class TestResultObject:
    def test_cycles_property(self):
        machine = make()

        def body(ctx):
            yield Work(10)

        result = machine.run([body])
        assert result.cycles == machine.stats.parallel_cycles
        assert result.machine is machine
