"""Full applications (Sec. VII): execution + semantic verification on both
systems at several thread counts."""

import pytest

from repro.harness import run_workload
from repro.workloads.apps import boruvka, genome, kmeans, ssca2, vacation

APPS = [
    ("boruvka", boruvka.build, dict(num_nodes=48)),
    ("kmeans", kmeans.build, dict(num_points=96, clusters=4, iterations=2)),
    ("ssca2", ssca2.build, dict(scale=5, edge_factor=3)),
    ("genome", genome.build,
     dict(num_segments=160, gene_length=256, initial_buckets=16)),
    ("vacation", vacation.build, dict(num_tasks=96, relations=32)),
]


@pytest.mark.parametrize("name,build,kw", APPS, ids=[a[0] for a in APPS])
@pytest.mark.parametrize("threads", [1, 4, 8])
@pytest.mark.parametrize("commtm", [True, False], ids=["commtm", "baseline"])
def test_app_verifies(name, build, kw, threads, commtm):
    # The builders' verify() raises on any semantic violation.
    result = run_workload(build, threads, num_cores=16, commtm=commtm, **kw)
    assert result.cycles > 0
    assert result.stats.commits > 0


def test_boruvka_uses_all_four_labels():
    result = run_workload(boruvka.build, 4, num_cores=16, num_nodes=48)
    machine = result.stats  # noqa: F841
    # Labels registered on the machine: OPUT, MIN, MAX, ADD.
    # (Checked via the machine the harness returns in info-less runs by
    # rebuilding here.)
    from repro import Machine
    from repro.params import small_config
    m = Machine(small_config(num_cores=16))
    boruvka.build(m, 4, num_nodes=48)
    assert set(m.labels.names()) >= {"OPUT", "MIN", "MAX", "ADD"}


def test_boruvka_deterministic_inputs():
    a = run_workload(boruvka.build, 4, num_cores=16, num_nodes=48, seed=3)
    b = run_workload(boruvka.build, 4, num_cores=16, num_nodes=48, seed=3)
    assert a.info["edges"] == b.info["edges"]


def test_kmeans_commtm_reduces_aborts():
    commtm = run_workload(kmeans.build, 8, num_cores=16, num_points=96,
                          clusters=4, iterations=2)
    base = run_workload(kmeans.build, 8, num_cores=16, num_points=96,
                        clusters=4, iterations=2, commtm=False)
    assert commtm.stats.aborts < base.stats.aborts


def test_ssca2_low_labeled_fraction():
    result = run_workload(ssca2.build, 4, num_cores=16, scale=5)
    assert result.stats.labeled_fraction < 0.005


def test_genome_gather_configuration():
    with_g = run_workload(genome.build, 8, num_cores=16, num_segments=160,
                          gene_length=256, initial_buckets=16)
    without = run_workload(genome.build, 8, num_cores=16, num_segments=160,
                           gene_length=256, initial_buckets=16,
                           use_gather=False)
    assert with_g.stats.gathers >= 0
    assert without.stats.gathers == 0


def test_vacation_conservation_checked():
    # The verifier checks reservation/availability conservation; a
    # completed run that returns implies the invariant held.
    result = run_workload(vacation.build, 8, num_cores=16, num_tasks=96,
                          relations=32)
    assert result.stats.commits >= 96
