"""Conflict manager: policies, cause attribution, abort machinery."""

import pytest

from repro import Machine
from repro.coherence.line import CacheLine
from repro.coherence.messages import Requester
from repro.coherence.protocol import Resolution, Trigger
from repro.coherence.states import State
from repro.errors import ProtocolError
from repro.htm.backoff import backoff_cycles
from repro.htm.conflict import victim_cause
from repro.params import small_config
from repro.sim.stats import WastedCause


def _entry(read=False, written=False, labeled=False):
    entry = CacheLine(line=0, state=State.M, words=[0] * 8)
    entry.spec_read = read
    entry.spec_written = written
    entry.spec_labeled = labeled
    return entry


class TestVictimCause:
    def test_write_hits_reader(self):
        assert victim_cause(Trigger.WRITE, _entry(read=True)) is \
            WastedCause.READ_AFTER_WRITE

    def test_read_hits_writer(self):
        assert victim_cause(Trigger.READ, _entry(written=True)) is \
            WastedCause.WRITE_AFTER_READ

    def test_gather_hits_labeled(self):
        assert victim_cause(Trigger.GATHER, _entry(labeled=True)) is \
            WastedCause.GATHER_AFTER_LABELED

    def test_eviction_is_other(self):
        assert victim_cause(Trigger.EVICTION, _entry(read=True)) is \
            WastedCause.OTHER

    def test_labeled_invalidation_counts_as_raw(self):
        assert victim_cause(Trigger.LABELED, _entry(read=True)) is \
            WastedCause.READ_AFTER_WRITE

    def test_reduction_triggers(self):
        assert victim_cause(Trigger.REDUCTION_READ, _entry(labeled=True)) is \
            WastedCause.WRITE_AFTER_READ
        assert victim_cause(Trigger.REDUCTION_WRITE, _entry(labeled=True)) is \
            WastedCause.READ_AFTER_WRITE


class TestConflictManager:
    def make(self, policy="timestamp"):
        machine = Machine(small_config(num_cores=4, conflict_policy=policy))
        return machine, machine.conflicts, machine.htm

    def test_older_requester_aborts_victim(self):
        machine, cm, htm = self.make()
        old_tx = htm.begin(0)   # ts 0
        victim_tx = htm.begin(1)  # ts 1
        entry = _entry(read=True)
        out = cm.resolve(1, 0, Requester(0, ts=old_tx.ts), Trigger.WRITE,
                         entry)
        assert out is Resolution.ABORT_VICTIM
        assert victim_tx.aborted
        assert machine.stats.aborts == 1

    def test_younger_requester_gets_nack(self):
        machine, cm, htm = self.make()
        victim_tx = htm.begin(0)  # ts 0 (older)
        young = htm.begin(1)      # ts 1
        out = cm.resolve(0, 0, Requester(1, ts=young.ts), Trigger.WRITE,
                         _entry(read=True))
        assert out is Resolution.NACK
        assert not victim_tx.aborted

    def test_nonspeculative_requester_always_wins(self):
        machine, cm, htm = self.make()
        victim_tx = htm.begin(0)
        out = cm.resolve(0, 0, Requester(1, ts=None), Trigger.WRITE,
                         _entry(read=True))
        assert out is Resolution.ABORT_VICTIM
        assert victim_tx.aborted

    def test_requester_wins_policy(self):
        machine, cm, htm = self.make(policy="requester_wins")
        htm.begin(0)  # older victim
        young = htm.begin(1)
        out = cm.resolve(0, 0, Requester(1, ts=young.ts), Trigger.WRITE,
                         _entry(read=True))
        assert out is Resolution.ABORT_VICTIM

    def test_abort_is_idempotent(self):
        machine, cm, htm = self.make()
        tx = htm.begin(0)
        cm.abort(0, WastedCause.OTHER)
        cm.abort(0, WastedCause.OTHER)
        assert machine.stats.aborts == 1
        assert tx.aborted

    def test_abort_without_tx_raises(self):
        machine, cm, htm = self.make()
        with pytest.raises(ProtocolError):
            cm.abort(0, WastedCause.OTHER)

    def test_abort_requester_disables_labels(self):
        machine, cm, htm = self.make()
        tx = htm.begin(0)
        cm.abort_requester(0, WastedCause.OTHER, disable_labels=True)
        assert tx.labels_disabled

    def test_resolve_without_tx_is_protocol_error(self):
        machine, cm, htm = self.make()
        with pytest.raises(ProtocolError):
            cm.resolve(0, 0, Requester(1, ts=3), Trigger.WRITE,
                       _entry(read=True))


class TestBackoff:
    def test_window_grows_with_attempts(self):
        import random
        rng = random.Random(1)
        small = max(backoff_cycles(rng, 1, 16, 4096) for _ in range(200))
        big = max(backoff_cycles(rng, 6, 16, 4096) for _ in range(200))
        assert small <= 16
        assert big > 64

    def test_capped_at_maximum(self):
        import random
        rng = random.Random(1)
        for _ in range(100):
            assert backoff_cycles(rng, 30, 16, 512) <= 512

    def test_zero_base_disables(self):
        import random
        assert backoff_cycles(random.Random(1), 5, 0, 512) == 0

    def test_always_positive_with_base(self):
        import random
        rng = random.Random(2)
        assert all(backoff_cycles(rng, a, 8, 128) >= 1 for a in range(1, 10))


class TestHtmRuntime:
    def test_timestamps_monotonic(self):
        machine = Machine(small_config(num_cores=4))
        txs = [machine.htm.begin(c) for c in range(3)]
        assert [t.ts for t in txs] == [0, 1, 2]

    def test_double_begin_rejected(self):
        from repro.errors import TransactionError
        machine = Machine(small_config(num_cores=4))
        machine.htm.begin(0)
        with pytest.raises(TransactionError):
            machine.htm.begin(0)

    def test_retry_keeps_timestamp(self):
        machine = Machine(small_config(num_cores=4))
        tx = machine.htm.begin(0)
        machine.conflicts.abort(0, WastedCause.OTHER)
        machine.htm.finish_abort(0)
        tx2 = machine.htm.begin_retry(0, tx)
        assert tx2.ts == tx.ts
        assert tx2.attempts == 2
        assert not tx2.aborted

    def test_commit_of_aborted_tx_rejected(self):
        from repro.errors import TransactionError
        machine = Machine(small_config(num_cores=4))
        machine.htm.begin(0)
        machine.conflicts.abort(0, WastedCause.OTHER)
        with pytest.raises(TransactionError):
            machine.htm.commit(0)
