"""Labels: definitions, handlers, registry, virtualization."""

import pytest

from repro.core.labels import (
    HandlerContext,
    Label,
    LabelRegistry,
    add_label,
    max_label,
    min_label,
    oput_label,
    wordwise_label,
)
from repro.errors import LabelError
from repro.params import WORDS_PER_LINE

DUMMY = HandlerContext(lambda a: 0, lambda a, v: None)


class TestLabelDefinition:
    def test_requires_exactly_one_reduce(self):
        with pytest.raises(LabelError):
            Label("X", identity=0)
        with pytest.raises(LabelError):
            Label("X", identity=0, reduce_word=lambda a, b: a,
                  reduce_line=lambda c, d, s: d)

    def test_split_requires_matching_reduce_kind(self):
        with pytest.raises(LabelError):
            Label("X", identity=0, reduce_line=lambda c, d, s: d,
                  split_word=lambda v, n: (v, 0))
        with pytest.raises(LabelError):
            Label("X", identity=0, reduce_word=lambda a, b: a,
                  split_line=lambda c, w, n: (w, w))

    def test_identity_line(self):
        label = wordwise_label("X", identity=7, reduce_word=lambda a, b: a)
        assert label.identity_line() == [7] * WORDS_PER_LINE
        assert label.is_identity_line([7] * WORDS_PER_LINE)
        assert not label.is_identity_line([7] * 7 + [0])

    def test_is_identity_line_uses_label_predicate(self):
        # Labels with several encodings of "empty" supply is_identity_word;
        # the line-level test must route through it instead of comparing
        # words to the declared identity value. Regression: gathers used to
        # treat all-zero OPUT/TOPK lines (untouched memory) as carrying
        # data, forwarding empty donations into needless reductions.
        label = wordwise_label(
            "X", identity=None, reduce_word=lambda a, b: a or b,
            is_identity_word=lambda w: w is None or w == 0)
        assert label.is_identity_line([None] * WORDS_PER_LINE)
        assert label.is_identity_line([0] * WORDS_PER_LINE)
        assert label.is_identity_line([None, 0] * (WORDS_PER_LINE // 2))
        assert not label.is_identity_line([0] * (WORDS_PER_LINE - 1) + [(1, "v")])

    def test_standard_labels_accept_zero_as_empty(self):
        from repro.datatypes.topk import EMPTY, topk_label

        # OPUT words are (key, value) tuples or None; untouched memory
        # reads as 0 and must count as empty too.
        oput = oput_label()
        assert oput.is_identity_line([0] * WORDS_PER_LINE)
        assert oput.is_identity_line([None] * WORDS_PER_LINE)
        assert not oput.is_identity_line([(3, "v")] + [0] * (WORDS_PER_LINE - 1))

        topk = topk_label(4)
        assert topk.is_identity_line([0] * WORDS_PER_LINE)
        assert topk.is_identity_line([EMPTY] * WORDS_PER_LINE)

        # MIN/MAX identity is None; 0 is a real observed value there and
        # must NOT be classified as empty.
        assert not min_label().is_identity_line([0] * WORDS_PER_LINE)
        assert not max_label().is_identity_line([0] * WORDS_PER_LINE)

    def test_supports_gather(self):
        plain = wordwise_label("X", 0, lambda a, b: a + b)
        withsplit = add_label()
        assert not plain.supports_gather
        assert withsplit.supports_gather
        with pytest.raises(LabelError):
            plain.split(DUMMY, [0] * 8, 2)


class TestStandardLabels:
    def test_add_reduce(self):
        label = add_label()
        out = label.reduce(DUMMY, [1] * 8, [2] * 8)
        assert out == [3] * 8

    def test_add_identity_is_zero(self):
        label = add_label()
        assert label.reduce(DUMMY, [5] * 8, label.identity_line()) == [5] * 8

    def test_add_split_donates_ceil_share(self):
        label = add_label()
        kept, donated = label.split(DUMMY, [10] * 8, 4)
        assert donated == [3] * 8  # ceil(10/4)
        assert kept == [7] * 8

    def test_add_split_zero_value(self):
        label = add_label()
        kept, donated = label.split(DUMMY, [0] * 8, 4)
        assert donated == [0] * 8
        assert kept == [0] * 8

    def test_add_split_conserves_mass(self):
        label = add_label()
        for value in (1, 5, 17, 128):
            for n in (1, 2, 7, 128):
                kept, donated = label.split(DUMMY, [value] * 8, n)
                assert kept[0] + donated[0] == value
                assert kept[0] >= 0 and donated[0] >= 0

    def test_min_reduce(self):
        label = min_label()
        assert label.reduce(DUMMY, [3] * 8, [5] * 8) == [3] * 8
        assert label.reduce(DUMMY, [None] * 8, [5] * 8) == [5] * 8
        assert label.reduce(DUMMY, [2] * 8, [None] * 8) == [2] * 8

    def test_max_reduce(self):
        label = max_label()
        assert label.reduce(DUMMY, [3] * 8, [5] * 8) == [5] * 8
        assert label.reduce(DUMMY, [None] * 8, [None] * 8) == [None] * 8

    def test_oput_keeps_lowest_key(self):
        label = oput_label()
        a = [(5, "a")] * 8
        b = [(3, "b")] * 8
        assert label.reduce(DUMMY, a, b) == [(3, "b")] * 8

    def test_oput_handles_zero_padding(self):
        label = oput_label()
        assert label.reduce(DUMMY, [0] * 8, [(3, "b")] * 8) == [(3, "b")] * 8
        assert label.reduce(DUMMY, [None] * 8, [0] * 8) == [0] * 8


class TestRegistry:
    def test_register_and_get(self):
        reg = LabelRegistry(8)
        label = reg.register(add_label())
        assert reg.get("ADD") is label
        assert "ADD" in reg
        assert label.label_id == 0

    def test_duplicate_name_rejected(self):
        reg = LabelRegistry(8)
        reg.register(add_label())
        with pytest.raises(LabelError):
            reg.register(add_label())

    def test_unknown_name(self):
        with pytest.raises(LabelError):
            LabelRegistry(8).get("NOPE")

    def test_budget_enforced(self):
        reg = LabelRegistry(2)
        reg.register(wordwise_label("A", 0, lambda a, b: a))
        reg.register(wordwise_label("B", 0, lambda a, b: a))
        with pytest.raises(LabelError):
            reg.register(wordwise_label("C", 0, lambda a, b: a))

    def test_virtualization_wraps_ids(self):
        reg = LabelRegistry(2, virtualize=True)
        a = reg.register(wordwise_label("A", 0, lambda a, b: a))
        b = reg.register(wordwise_label("B", 0, lambda a, b: a))
        c = reg.register(wordwise_label("C", 0, lambda a, b: a))
        assert (a.label_id, b.label_id, c.label_id) == (0, 1, 0)
        assert len(reg) == 3

    def test_names_in_order(self):
        reg = LabelRegistry(8)
        reg.register(min_label())
        reg.register(max_label())
        assert reg.names() == ["MIN", "MAX"]

    def test_needs_at_least_one_label(self):
        with pytest.raises(LabelError):
            LabelRegistry(0)
