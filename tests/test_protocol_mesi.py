"""MESI protocol behaviour through the MemorySystem (non-transactional)."""


from repro import Machine
from repro.coherence.messages import Requester
from repro.coherence.states import State
from repro.params import small_config


def make():
    machine = Machine(small_config(num_cores=4))
    return machine, machine.msys


def req(core):
    return Requester(core=core, ts=None, now=0)


class TestLoads:
    def test_first_load_gets_exclusive(self):
        machine, msys = make()
        machine.seed_word(0x1000, 42)
        res = msys.load(0, 0x1000, req(0))
        assert res.value == 42
        assert msys.state_of(0, 0x1000) is State.E

    def test_second_load_downgrades_to_shared(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        msys.load(1, 0x1000, req(1))
        assert msys.state_of(0, 0x1000) is State.S
        assert msys.state_of(1, 0x1000) is State.S

    def test_load_hit_is_cheap(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        res = msys.load(0, 0x1000, req(0))
        assert res.cycles == machine.config.l1.latency

    def test_miss_charges_directory_and_memory(self):
        machine, msys = make()
        res = msys.load(0, 0x1000, req(0))
        assert res.cycles >= machine.config.mem_latency

    def test_load_from_modified_owner_forwards_data(self):
        machine, msys = make()
        msys.store(0, 0x1000, 7, req(0))
        res = msys.load(1, 0x1000, req(1))
        assert res.value == 7
        assert msys.state_of(0, 0x1000) is State.S
        assert msys.state_of(1, 0x1000) is State.S
        # The writeback made the L3 copy current.
        assert msys.directory.peek(0x1000 // 64).words[0] == 7


class TestStores:
    def test_store_gets_modified(self):
        machine, msys = make()
        msys.store(0, 0x1000, 9, req(0))
        assert msys.state_of(0, 0x1000) is State.M
        assert msys.peek_word(0x1000) == 9

    def test_silent_e_to_m_upgrade(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        getx_before = machine.stats.getx
        msys.store(0, 0x1000, 1, req(0))
        assert machine.stats.getx == getx_before  # silent upgrade
        assert msys.state_of(0, 0x1000) is State.M

    def test_s_to_m_upgrade_invalidates_sharers(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        msys.load(1, 0x1000, req(1))
        msys.store(0, 0x1000, 5, req(0))
        assert msys.state_of(0, 0x1000) is State.M
        assert msys.state_of(1, 0x1000) is State.I
        assert machine.stats.invalidations >= 1

    def test_store_invalidates_modified_owner(self):
        machine, msys = make()
        msys.store(0, 0x1000, 1, req(0))
        msys.store(1, 0x1000, 2, req(1))
        assert msys.state_of(0, 0x1000) is State.I
        assert msys.state_of(1, 0x1000) is State.M
        assert msys.peek_word(0x1000) == 2

    def test_store_preserves_other_words(self):
        machine, msys = make()
        machine.seed_word(0x1008, 77)
        msys.store(0, 0x1000, 1, req(0))
        assert msys.peek_word(0x1008) == 77


class TestTrafficCounters:
    def test_gets_counted_on_miss_only(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        msys.load(0, 0x1000, req(0))
        assert machine.stats.gets == 1

    def test_getx_counted(self):
        machine, msys = make()
        msys.store(0, 0x1000, 1, req(0))
        assert machine.stats.getx == 1
        assert machine.stats.gets == 0

    def test_l3_miss_counted_once(self):
        machine, msys = make()
        msys.load(0, 0x1000, req(0))
        msys.load(1, 0x1000, req(1))
        assert machine.stats.l3_misses == 1


class TestOccupancy:
    def test_contended_line_serializes(self):
        machine, msys = make()
        # Two cores miss on the same line at the same local time: the
        # second request must stall behind the first.
        r0 = msys.load(0, 0x1000, Requester(0, None, now=0))
        r1 = msys.store(1, 0x1000, 1, Requester(1, None, now=0))
        assert r1.cycles > r0.cycles

    def test_different_lines_do_not_serialize(self):
        machine, msys = make()
        r0 = msys.load(0, 0x1000, Requester(0, None, now=0))
        r1 = msys.load(1, 0x2000, Requester(1, None, now=0))
        # Same path length, no stall.
        base = msys.load(2, 0x3000, Requester(2, None, now=0))
        assert r1.cycles == base.cycles

    def test_private_hits_never_stall(self):
        machine, msys = make()
        msys.load(0, 0x1000, Requester(0, None, now=0))
        msys.store(1, 0x1040, 1, Requester(1, None, now=0))
        res = msys.load(0, 0x1000, Requester(0, None, now=0))
        assert res.dir_line is None
        assert res.cycles == machine.config.l1.latency

    def test_untimed_requests_skip_occupancy(self):
        machine, msys = make()
        res = msys.load(0, 0x1000, Requester(0, None, now=None))
        assert res.cycles > 0  # latency still charged
        assert not msys._line_busy  # but no reservation recorded
