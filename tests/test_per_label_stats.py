"""Per-label statistics: labeled-op and reduction profiling."""

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine
from repro.core.labels import add_label, min_label
from repro.params import small_config


def test_labeled_ops_counted_per_label():
    machine = Machine(small_config(num_cores=4))
    add = machine.register_label(add_label())
    mi = machine.register_label(min_label())
    a = machine.alloc.alloc_line()
    b = machine.alloc.alloc_line()
    machine.seed_word(b, None)

    def txn(ctx):
        v = yield LabeledLoad(a, add)
        yield LabeledStore(a, add, v + 1)
        m = yield LabeledLoad(b, mi)
        if m is None or 5 < m:
            yield LabeledStore(b, mi, 5)

    def body(ctx):
        for _ in range(3):
            yield Atomic(txn)

    machine.run_spmd(body, 2)
    stats = machine.stats
    assert stats.labeled_by_label["ADD"] == 12   # 2 per txn x 6 txns
    assert stats.labeled_by_label["MIN"] >= 6    # load always, store once
    assert sum(stats.labeled_by_label.values()) == stats.labeled_instructions


def test_reductions_counted_per_label():
    machine = Machine(small_config(num_cores=4))
    add = machine.register_label(add_label())
    a = machine.alloc.alloc_line()

    def adder(ctx):
        v = yield LabeledLoad(a, add)
        yield LabeledStore(a, add, v + 1)

    def reader(ctx):
        from repro.runtime.ops import Work
        yield Work(3000)
        v = yield Load(a)
        return v

    def body(ctx):
        if ctx.tid < 3:
            yield Atomic(adder)
        else:
            yield Atomic(reader)

    machine.run_spmd(body, 4)
    assert machine.stats.reductions_by_label.get("ADD", 0) == \
        machine.stats.reductions
    assert machine.stats.reductions >= 1


def test_baseline_has_no_per_label_counts():
    machine = Machine(small_config(num_cores=4, commtm_enabled=False))
    add = machine.register_label(add_label())
    a = machine.alloc.alloc_line()

    def txn(ctx):
        v = yield LabeledLoad(a, add)
        yield LabeledStore(a, add, v + 1)

    def body(ctx):
        yield Atomic(txn)

    machine.run_spmd(body, 2)
    assert not machine.stats.labeled_by_label
