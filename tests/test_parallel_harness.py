"""Parallel sweep layer: spec round-trips, dedupe, pool determinism, and
the on-disk result cache."""

import pickle

import pytest

from repro.errors import SimulationError
from repro.harness import (ResultCache, fingerprint, make_spec, run_point,
                           run_points, resolve_build, resolve_jobs,
                           speedup_curve)
from repro.harness.experiments import run_experiment
from repro.harness.parallel import JOBS_ENV, build_path
from repro.params import small_config
from repro.workloads.micro import counter


def _counter_spec(threads=2, *, commtm=True, seed=1, total_ops=60,
                  base_config=None):
    return make_spec(counter.build, threads, num_cores=16, commtm=commtm,
                     seed=seed, base_config=base_config,
                     total_ops=total_ops)


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

def test_build_path_roundtrip():
    path = build_path(counter.build)
    assert path == "repro.workloads.micro.counter:build"
    assert resolve_build(path) is counter.build


def test_build_path_rejects_closures():
    def closure(machine, threads):
        return counter.build(machine, threads, total_ops=10)

    with pytest.raises(SimulationError):
        build_path(closure)
    with pytest.raises(SimulationError):
        build_path(lambda machine, threads: None)


def test_spec_canonical_distinguishes_configuration():
    base = _counter_spec()
    assert base.canonical() == _counter_spec().canonical()
    assert base.canonical() != _counter_spec(seed=2).canonical()
    assert base.canonical() != _counter_spec(commtm=False).canonical()
    assert base.canonical() != _counter_spec(total_ops=61).canonical()
    assert base.canonical() != _counter_spec(
        base_config=small_config(num_cores=8, seed=1)).canonical()


def test_spec_pickles():
    spec = _counter_spec(base_config=small_config(num_cores=8, seed=1))
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.canonical() == spec.canonical()


def test_run_point_matches_run_workload():
    from repro.harness import run_workload

    direct = run_workload(counter.build, 2, num_cores=16, commtm=True,
                          seed=1, total_ops=60)
    via_spec = run_point(_counter_spec())
    assert via_spec.cycles == direct.cycles
    assert via_spec.stats.summary() == direct.stats.summary()


# ---------------------------------------------------------------------------
# run_points: dedupe + determinism
# ---------------------------------------------------------------------------

def test_run_points_dedupes_identical_specs():
    a, b = _counter_spec(), _counter_spec()
    first, second, other = run_points([a, b, _counter_spec(commtm=False)])
    assert first is second  # simulated once, shared
    assert other.cycles != 0


def test_serial_and_parallel_sweeps_identical(monkeypatch):
    from repro.harness import parallel as par

    specs = [_counter_spec(t, commtm=c, total_ops=40)
             for t in (1, 2) for c in (False, True)]
    serial = run_points(specs, jobs=1)
    # serial_threshold=0 forces the pool despite the small spec count,
    # and the pinned CPU count keeps the worker path exercised on
    # single-CPU hosts (where the affinity clamp would otherwise fall
    # back to the serial loop).
    monkeypatch.setattr(par, "_available_cpus", lambda: 4)
    parallel = run_points(specs, jobs=4, serial_threshold=0)
    assert [r.cycles for r in serial] == [r.cycles for r in parallel]
    assert [r.stats.summary() for r in serial] \
        == [r.stats.summary() for r in parallel]


def test_pool_persists_across_sweeps(monkeypatch):
    from repro.harness import parallel as par

    monkeypatch.setattr(par, "_available_cpus", lambda: 4)
    specs = [_counter_spec(t, commtm=c, total_ops=40)
             for t in (1, 2) for c in (False, True)]
    run_points(specs, jobs=2, serial_threshold=0)
    pool = par._pool
    assert pool is not None and par._pool_jobs == 2
    run_points([_counter_spec(t, total_ops=41) for t in (1, 2)],
               jobs=2, serial_threshold=0)
    assert par._pool is pool  # reused, not rebuilt
    # A different worker count rebuilds; shutdown clears.
    run_points(specs, jobs=3, serial_threshold=0)
    assert par._pool is not pool and par._pool_jobs == 3
    par.shutdown_pool()
    assert par._pool is None


def test_oversubscribed_jobs_run_serially(caplog, monkeypatch):
    """More workers than available CPUs is a strict loss (same serial
    work plus dispatch): the clamp must keep the pool out of it and say
    so once."""
    from repro.harness import parallel as par

    monkeypatch.setattr(par, "_available_cpus", lambda: 1)

    def boom(jobs):
        raise AssertionError("pool used despite a one-CPU affinity mask")

    monkeypatch.setattr(par, "get_pool", boom)
    specs = [_counter_spec(t, commtm=c, total_ops=40)
             for t in (1, 2) for c in (False, True)]
    with caplog.at_level("INFO", logger="repro.harness"):
        results = run_points(specs, jobs=4, serial_threshold=0)
    assert len(results) == 4
    assert any("one CPU" in r.message for r in caplog.records)


def test_partition_specs_balances_and_covers():
    from repro.harness.parallel import estimate_cost, partition_specs

    specs = [_counter_spec(t, commtm=c, total_ops=100 * t)
             for t in (1, 2, 3, 4) for c in (False, True)]
    buckets = partition_specs(specs, 3)
    flat = sorted(i for bucket in buckets for i in bucket)
    assert flat == list(range(len(specs)))  # exact cover, no duplicates
    loads = [sum(estimate_cost(specs[i]) for i in bucket)
             for bucket in buckets]
    # LPT guarantee: no bucket exceeds the ideal share by more than the
    # largest single item.
    ideal = sum(loads) / len(loads)
    largest = max(estimate_cost(s) for s in specs)
    assert max(loads) <= ideal + largest
    # Degenerate shapes: more buckets than specs, and a single bucket.
    assert partition_specs(specs[:2], 8) == [[1], [0]] \
        or len(partition_specs(specs[:2], 8)) == 2
    assert partition_specs(specs, 1) == [sorted(
        range(len(specs)), key=lambda i: estimate_cost(specs[i]),
        reverse=True)]


def test_small_sweep_falls_back_to_serial(caplog, monkeypatch):
    from repro.harness import parallel as par

    def boom(jobs):  # the pool must not be touched below the threshold
        raise AssertionError("pool used for a below-threshold sweep")

    monkeypatch.setattr(par, "get_pool", boom)
    monkeypatch.setattr(par, "_available_cpus", lambda: 4)
    specs = [_counter_spec(t, commtm=c, total_ops=40)
             for t in (1, 2) for c in (False, True)]
    with caplog.at_level("INFO", logger="repro.harness"):
        results = run_points(specs, jobs=4)  # 4 < default threshold of 10
    assert len(results) == 4
    assert any("below the serial threshold" in r.message
               for r in caplog.records)


def test_resolve_serial_threshold(monkeypatch):
    from repro.harness.parallel import (DEFAULT_SERIAL_THRESHOLD,
                                        SERIAL_THRESHOLD_ENV,
                                        resolve_serial_threshold)

    assert resolve_serial_threshold(5) == 5
    assert resolve_serial_threshold(-3) == 0
    monkeypatch.setenv(SERIAL_THRESHOLD_ENV, "17")
    assert resolve_serial_threshold() == 17
    assert resolve_serial_threshold(2) == 2  # explicit beats env
    monkeypatch.setenv(SERIAL_THRESHOLD_ENV, "lots")
    with pytest.raises(SimulationError):
        resolve_serial_threshold()
    monkeypatch.delenv(SERIAL_THRESHOLD_ENV)
    assert resolve_serial_threshold() == DEFAULT_SERIAL_THRESHOLD


def test_resolve_jobs(monkeypatch):
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) == 1
    monkeypatch.setenv(JOBS_ENV, "7")
    assert resolve_jobs() == 7
    monkeypatch.setenv(JOBS_ENV, "seven")
    with pytest.raises(SimulationError):
        resolve_jobs()
    monkeypatch.delenv(JOBS_ENV)
    assert resolve_jobs() >= 1


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

def test_cache_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _counter_spec()
    assert cache.get(spec) is None
    (result,) = run_points([spec], cache=cache)
    # Two misses: the probing get above plus run_points' own lookup.
    assert cache.misses == 2 and cache.stores == 1

    warm = ResultCache(tmp_path)
    (again,) = run_points([spec], cache=warm)
    assert warm.hits == 1 and warm.misses == 0
    assert again.cycles == result.cycles
    assert again.stats.summary() == result.stats.summary()


def test_cache_invalidates_on_config_change(tmp_path):
    cache = ResultCache(tmp_path)
    run_points([_counter_spec()], cache=cache)

    probe = ResultCache(tmp_path)
    assert probe.get(_counter_spec(seed=9)) is None
    assert probe.get(_counter_spec(commtm=False)) is None
    assert probe.get(
        _counter_spec(base_config=small_config(num_cores=8, seed=1))) is None
    assert probe.get(_counter_spec()) is not None


def test_cache_tolerates_corrupt_entry(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _counter_spec()
    run_points([spec], cache=cache)
    entry = tmp_path / f"{fingerprint(spec)}.pkl"
    entry.write_bytes(b"not a pickle")

    probe = ResultCache(tmp_path)
    assert probe.get(spec) is None  # corrupt file counts as a miss
    (result,) = run_points([spec], cache=probe)
    assert result.cycles > 0
    assert probe.get(spec) is not None  # re-stored after the re-run


def test_cache_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    run_points([_counter_spec(), _counter_spec(commtm=False)], cache=cache)
    assert len(cache) == 2
    assert cache.clear() == 2
    assert len(cache) == 0


# ---------------------------------------------------------------------------
# Harness integration
# ---------------------------------------------------------------------------

def test_speedup_curve_shares_baseline_run(tmp_path):
    cache = ResultCache(tmp_path)
    curves = speedup_curve(counter.build, [1], num_cores=16, total_ops=40,
                           cache=cache)
    # Three requested points (reference, CommTM@1, Baseline@1) but the
    # reference IS Baseline@1: only two simulations hit the cache.
    assert cache.stores == 2
    assert curves["Baseline"][1] == pytest.approx(1.0)


def test_experiment_report_identical_serial_vs_parallel():
    serial = run_experiment("fig09", threads=[1, 2], scale=0.01, jobs=1)
    parallel = run_experiment("fig09", threads=[1, 2], scale=0.01, jobs=4)
    assert serial == parallel


def test_breakdown_experiment_empty_threads():
    # Regression: used to raise UnboundLocalError (columns bound only
    # inside the per-thread loop). An empty ladder renders a bare title.
    report = run_experiment("fig17-kmeans", threads=[])
    assert report == "Fig. 17 — kmeans"
    report = run_experiment("fig18-kmeans", threads=[])
    assert report == "Fig. 18 — kmeans"


def test_cli_smoke(tmp_path, capsys, monkeypatch):
    from repro.harness.__main__ import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["--list"]) == 0
    assert "fig09" in capsys.readouterr().out

    assert main(["fig09", "--threads", "1", "--scale", "0.01",
                 "--jobs", "1"]) == 0
    out = capsys.readouterr()
    assert "Fig. 9" in out.out
    assert "0 hit(s)" in out.err

    assert main(["fig09", "--threads", "1", "--scale", "0.01",
                 "--jobs", "1"]) == 0
    assert "2 hit(s), 0 miss(es)" in capsys.readouterr().err

    assert main(["nope"]) == 2
