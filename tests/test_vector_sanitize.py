"""Runtime sanitizer composed with the vector backend.

The invariant suite has one definition (`repro.analysis.invariants`)
and three consumers: the runtime sanitizer, the exhaustive model
checker, and — covered here — post-run sweeps over machines the vector
backend actually drove. Three compositions matter:

* sanitizer *installed* + ``backend="vector"``: per-op layers force the
  whole run through the interpreted path (zero epochs), bit-identical,
  with the sanitizer genuinely checking along the way;
* a genuine vector run (epochs engaged, fenced replay exercised): the
  final coherence state must pass the shared invariant suite;
* the adaptive gate (``_strict_drain`` rebind to the run-ahead loop):
  same obligation on the gated path, plus parity with the interpreted
  engine.
"""

import pytest

from repro.analysis.invariants import check_invariants
from repro.analysis.sanitizer import CoherenceSanitizer
from repro.core.machine import Machine
from repro.datatypes import SharedCounter
from repro.params import SystemConfig
from repro.runtime.ops import BARRIER, Atomic
from repro.sim.vector import available

pytestmark = pytest.mark.skipif(
    not available(), reason="vector backend requires numpy")


def _config(seed=1):
    return SystemConfig(num_cores=16, commtm_enabled=True, seed=seed)


def _counter_run(backend, sanitize=False, adds=12, threads=8):
    machine = Machine(_config(), backend=backend, sanitize=sanitize)
    counter = SharedCounter(machine)

    def body(ctx):
        for _ in range(adds):
            yield Atomic(counter.add, 1)
            yield ctx.work(7)

    result = machine.run_spmd(body, threads)
    machine.flush_reducible()
    return machine, counter, result


def _fence_storm_run(backend, threads=8, iters=24):
    """Every op is a shared-line coherence miss or a barrier — near-zero
    epoch-eligible cycles, so the adaptive gate rebinds the run to the
    strict (run-ahead) loop via ``_strict_drain``."""
    machine = Machine(_config(), backend=backend)
    lines = [machine.alloc.alloc_line() for _ in range(2)]
    for addr in lines:
        machine.seed_word(addr, 0)

    def make_body(tid):
        def body(ctx):
            for i in range(iters):
                if (i + tid) % 2:
                    yield ctx.load(lines[i % len(lines)])
                else:
                    yield ctx.store(lines[(i + 1) % len(lines)], tid)
                if i % 8 == 4:
                    yield BARRIER
        return body

    result = machine.run([make_body(t) for t in range(threads)])
    return machine, result, lines


def _sweep(machine):
    """Post-run pass over the final coherence state through both
    consumers of the shared invariant definition."""
    findings = check_invariants(machine.msys)
    assert findings == [], [f.format() for f in findings]
    CoherenceSanitizer(machine.msys).check()  # raises on any violation


class TestSanitizerInstalled:
    def test_vector_delegates_per_op_and_checks(self):
        machine, counter, result = _counter_run("vector", sanitize=True)
        # Per-op layer => whole run through the interpreted path.
        assert result.stats.host_backend == "vector"
        assert result.stats.host_vector_epochs == 0
        assert machine.sanitizer.checks_run > 0
        assert machine.sanitizer.violations == 0
        assert machine.read_word(counter.addr) == 96

    def test_bit_identical_to_interp_with_sanitizer(self):
        interp_m, interp_c, interp = _counter_run("interp", sanitize=True)
        vector_m, vector_c, vector = _counter_run("vector", sanitize=True)
        assert interp_m.read_word(interp_c.addr) \
            == vector_m.read_word(vector_c.addr)
        assert interp.stats.comparable() == vector.stats.comparable()


class TestPostRunSweep:
    def test_genuine_vector_run_passes_invariants(self):
        machine, counter, result = _counter_run("vector")
        assert result.stats.host_vector_epochs > 0  # epochs really ran
        assert machine.read_word(counter.addr) == 96
        _sweep(machine)

    def test_fenced_replay_passes_invariants(self):
        # Epochs *and* fences: misses and barriers punctuate the run, so
        # the epoch-parallel fenced replay path executes between bursts.
        machine, result, _ = _fence_storm_run("vector", threads=4,
                                              iters=16)
        _sweep(machine)

    def test_interp_reference_passes_invariants(self):
        # The sweep itself is meaningful on the reference engine too —
        # guards against the sweep passing vacuously.
        machine, counter, _ = _counter_run("interp")
        _sweep(machine)


class TestAdaptiveGate:
    def test_fence_storm_trips_the_gate(self):
        machine, result, _ = _fence_storm_run("vector")
        assert result.stats.host_vector_gated, \
            "fence storm did not trip the adaptive gate"
        _sweep(machine)

    def test_gated_run_is_bit_identical(self):
        interp_m, interp, interp_lines = _fence_storm_run("interp")
        vector_m, vector, vector_lines = _fence_storm_run("vector")
        assert vector.stats.host_vector_gated
        assert interp.stats.comparable() == vector.stats.comparable()
        assert interp.stats.parallel_cycles == vector.stats.parallel_cycles
        # Same final memory image on the storm's shared lines.
        assert interp_lines == vector_lines
        assert [interp_m.read_word(a) for a in interp_lines] \
            == [vector_m.read_word(a) for a in vector_lines]
