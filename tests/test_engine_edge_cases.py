"""Engine corner cases: capacity aborts, labeled-ops-disabled retries,
NACKed gathers with persistent donations, instruction accounting."""

import pytest

from repro import (
    Atomic,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Machine,
    Store,
    Work,
)
from repro.core.labels import add_label
from repro.errors import SimulationError
from repro.params import CacheGeometry, small_config


ADDR = 0x1000


def make(**kw):
    machine = Machine(small_config(num_cores=4, **kw))
    machine.register_label(add_label())
    return machine


class TestCapacityAborts:
    def test_l1_eviction_of_spec_line_aborts(self):
        cfg = small_config(
            num_cores=4,
            l1=CacheGeometry(size_bytes=2 * 64, ways=1, latency=1),
            l2=CacheGeometry(size_bytes=64 * 64, ways=1, latency=6),
        )
        machine = Machine(cfg)

        def txn(ctx):
            # Touch more lines than the 2-line L1 holds.
            for i in range(4):
                yield Store(ADDR + i * 0x40, i)

        def body(ctx):
            yield Atomic(txn)

        # The transaction cannot ever fit: the livelock guard fires.
        machine.config.max_restarts = 5
        with pytest.raises(SimulationError):
            machine.run([body])
        assert machine.stats.aborts >= 1

    def test_small_footprint_tx_fits(self):
        cfg = small_config(
            num_cores=4,
            l1=CacheGeometry(size_bytes=8 * 64, ways=1, latency=1),
            l2=CacheGeometry(size_bytes=64 * 64, ways=1, latency=6),
        )
        machine = Machine(cfg)

        def txn(ctx):
            yield Store(ADDR, 1)

        def body(ctx):
            yield Atomic(txn)

        machine.run([body])
        assert machine.stats.commits == 1


class TestInstructionAccounting:
    def test_memory_ops_count_one_each(self):
        machine = make()

        def body(ctx):
            yield Store(ADDR, 1)
            v = yield Load(ADDR)
            assert v == 1

        machine.run([body])
        assert machine.stats.instructions == 2

    def test_labeled_ops_counted_separately(self):
        machine = make()
        add = machine.labels.get("ADD")

        def txn(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)
            yield Work(10)

        def body(ctx):
            yield Atomic(txn)

        machine.run([body])
        assert machine.stats.labeled_instructions == 2
        assert machine.stats.instructions == 12  # 2 labeled ops + Work(10)

    def test_gather_counts_as_labeled(self):
        machine = make()
        add = machine.labels.get("ADD")

        def txn(ctx):
            yield LabeledLoad(ADDR, add)
            yield LoadGather(ADDR, add)

        def body(ctx):
            yield Atomic(txn)

        machine.run([body])
        assert machine.stats.labeled_instructions == 2


class TestNonTransactionalOps:
    def test_plain_ops_outside_tx(self):
        machine = make()

        def body(ctx):
            yield Store(ADDR, 5)
            v = yield Load(ADDR)
            assert v == 5

        machine.run([body])
        assert machine.stats.commits == 0
        assert machine.stats.non_tx_cycles > 0
        assert machine.stats.tx_committed_cycles == 0

    def test_labeled_ops_outside_tx_allowed(self):
        """Coup-style non-transactional commutative updates."""
        machine = make()
        add = machine.labels.get("ADD")

        def body(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 4
        assert machine.stats.aborts == 0


class TestMultipleLabelsOneRun:
    def test_independent_labels_coexist(self):
        from repro.core.labels import max_label
        machine = make()
        add = machine.labels.get("ADD")
        mx = machine.register_label(max_label())
        addr1 = machine.alloc.alloc_line()
        addr2 = machine.alloc.alloc_line()
        machine.seed_word(addr2, None)

        def txn(ctx, value):
            v = yield LabeledLoad(addr1, add)
            yield LabeledStore(addr1, add, v + 1)
            m = yield LabeledLoad(addr2, mx)
            if m is None or value > m:
                yield LabeledStore(addr2, mx, value)

        def body(ctx):
            for i in range(5):
                yield Atomic(txn, ctx.tid * 10 + i)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(addr1) == 20
        assert machine.read_word(addr2) == 34
        assert machine.stats.aborts == 0  # different lines, both in U
