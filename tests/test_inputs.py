"""Synthetic input generators: determinism and structural properties."""

import networkx as nx
import pytest

from repro.workloads.inputs import (
    make_requests,
    make_segments,
    rmat_graph,
    road_network,
)


class TestRoadNetwork:
    def test_deterministic(self):
        a = road_network(50, seed=2)
        b = road_network(50, seed=2)
        assert a.edges == b.edges

    def test_seed_changes_graph(self):
        assert road_network(50, seed=1).edges != road_network(50, seed=2).edges

    def test_connected(self):
        g = road_network(80)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_nodes))
        nxg.add_edges_from((u, v) for u, v, _w in g.edges)
        assert nx.is_connected(nxg)

    def test_distinct_weights(self):
        g = road_network(80)
        weights = [w for _u, _v, w in g.edges]
        assert len(weights) == len(set(weights))

    def test_sparse_like_roads(self):
        g = road_network(100, extra_edge_factor=1.3)
        assert g.num_edges <= 1.35 * g.num_nodes

    def test_no_self_or_duplicate_edges(self):
        g = road_network(60)
        seen = set()
        for u, v, _w in g.edges:
            assert u != v
            key = (min(u, v), max(u, v))
            assert key not in seen
            seen.add(key)

    def test_mst_matches_networkx(self):
        from repro.workloads.apps.boruvka import _reference_mst
        g = road_network(60)
        weight, chosen = _reference_mst(g)
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.num_nodes))
        for u, v, w in g.edges:
            nxg.add_edge(u, v, weight=w)
        expected = sum(
            d["weight"]
            for _u, _v, d in nx.minimum_spanning_edges(nxg, data=True)
        )
        assert weight == expected
        assert len(chosen) == g.num_nodes - 1

    def test_rejects_tiny_graphs(self):
        with pytest.raises(ValueError):
            road_network(1)


class TestRmat:
    def test_deterministic(self):
        assert rmat_graph(5, seed=1).edges == rmat_graph(5, seed=1).edges

    def test_size(self):
        g = rmat_graph(5, edge_factor=4)
        assert g.num_nodes == 32
        assert g.num_edges <= 4 * 32  # self-loops dropped

    def test_power_law_skew(self):
        g = rmat_graph(8, edge_factor=8)
        degrees = {}
        for u, _v, _w in g.edges:
            degrees[u] = degrees.get(u, 0) + 1
        top = sorted(degrees.values(), reverse=True)
        # The hottest node sees far more than the mean degree.
        mean = sum(top) / len(top)
        assert top[0] > 3 * mean

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            rmat_graph(0)


class TestGenes:
    def test_deterministic(self):
        assert make_segments(256, 16, 100, seed=4) == \
            make_segments(256, 16, 100, seed=4)

    def test_segments_are_substrings(self):
        gene, segments = make_segments(256, 16, 100)
        assert all(seg in gene for seg in segments)
        assert all(len(seg) == 16 for seg in segments)

    def test_duplicates_present_when_oversampled(self):
        _gene, segments = make_segments(64, 16, 500)
        assert len(set(segments)) < len(segments)

    def test_coverage(self):
        gene, segments = make_segments(256, 16, 200)
        covered = [False] * 256
        for seg in set(segments):
            start = gene.find(seg)
            for i in range(start, start + 16):
                covered[i] = True
        assert all(covered)

    def test_segment_longer_than_gene_rejected(self):
        with pytest.raises(ValueError):
            make_segments(8, 16, 10)


class TestTravel:
    def test_deterministic(self):
        assert make_requests(100, seed=9) == make_requests(100, seed=9)

    def test_mix_fractions(self):
        reqs = make_requests(2000, user_pct=90)
        reserve = sum(1 for r in reqs if r.action == "reserve")
        assert 0.85 < reserve / len(reqs) < 0.95

    def test_query_range_respected(self):
        reqs = make_requests(500, query_pct=50, relations=100)
        for r in reqs:
            for _kind, rid in r.items:
                assert rid < 50

    def test_item_count(self):
        reqs = make_requests(10, items_per_task=3)
        assert all(len(r.items) == 3 for r in reqs)
