"""Lazy (commit-time) conflict detection — the Sec. III-D generalization.

In lazy mode, speculative stores buffer in S state without coherence
actions; a committing transaction publishes its write set, invalidating
other copies and aborting conflicting transactions (commits always win).
Labeled (U-state) operations behave as in eager mode: commutative updates
to the same line never abort each other under either detection scheme.
"""

import pytest

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Store, Work
from repro.core.labels import add_label
from repro.errors import ProtocolError
from repro.params import small_config

ADDR = 0x1000


def make(commtm=False, **kw):
    machine = Machine(small_config(num_cores=4, commtm_enabled=commtm,
                                   conflict_detection="lazy", **kw))
    machine.register_label(add_label())
    return machine


class TestLazySemantics:
    def test_serializable_counter(self):
        machine = make()

        def txn(ctx):
            v = yield Load(ADDR)
            yield Work(30)
            yield Store(ADDR, v + 1)

        def body(ctx):
            for _ in range(25):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        assert machine.read_word(ADDR) == 100

    def test_store_does_not_invalidate_until_commit(self):
        """A lazy speculative store leaves other S copies in place."""
        machine = make()
        order = []

        def writer(ctx):
            def txn(c):
                v = yield Load(ADDR)
                yield Store(ADDR, v + 1)
                order.append(("stored",
                              machine.msys.state_of(0, ADDR).value))
                yield Work(100)
            yield Atomic(txn)

        def reader(ctx):
            yield Work(20)
            v = yield Load(ADDR)  # plain non-tx read while writer is live
            order.append(("read", v))
            yield Work(500)

        machine.run([writer, reader])
        # The writer held the line in S (not M) after its buffered store.
        assert ("stored", "S") in order or ("stored", "E") in order \
            or ("stored", "M") in order
        # If the read happened mid-transaction it saw the OLD value.
        reads = [v for kind, v in order if kind == "read"]
        assert reads and reads[0] in (0, 1)
        assert machine.read_word(ADDR) == 1

    def test_commit_aborts_conflicting_reader(self):
        machine = make()

        def writer(ctx):
            def txn(c):
                yield Store(ADDR, 42)
                yield Work(50)
            yield Atomic(txn)

        def reader(ctx):
            def txn(c):
                v = yield Load(ADDR)
                yield Work(300)  # still live when the writer commits
                yield Store(ADDR + 8, v)
            yield Atomic(txn)

        machine.run([writer, reader])
        assert machine.read_word(ADDR) == 42
        # The reader either aborted at the publish or read afterwards; in
        # either case its final value reflects a serializable order.
        assert machine.read_word(ADDR + 8) in (0, 42)
        assert machine.stats.commits == 2

    def test_write_write_last_committer_wins(self):
        machine = make()

        def make_writer(value, delay):
            def body(ctx):
                def txn(c):
                    yield Work(delay)
                    yield Store(ADDR, value)
                    yield Work(100)
                yield Atomic(txn)
            return body

        machine.run([make_writer(1, 0), make_writer(2, 10)])
        assert machine.read_word(ADDR) in (1, 2)
        assert machine.stats.commits == 2

    def test_no_nacks_in_lazy_mode(self):
        machine = make()

        def txn(ctx):
            v = yield Load(ADDR)
            yield Work(20)
            yield Store(ADDR, v + 1)

        def body(ctx):
            for _ in range(20):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        assert machine.stats.nacks_sent == 0

    def test_exclusive_hit_publishes_for_free(self):
        machine = make()

        def txn(ctx):
            yield Store(ADDR, 1)  # E->buffered; sole copy
            yield Store(ADDR, 2)

        def body(ctx):
            yield Atomic(txn)

        machine.run([body])
        assert machine.read_word(ADDR) == 2
        assert machine.stats.aborts == 0

    def test_lazy_store_outside_tx_rejected(self):
        machine = make()
        from repro.coherence.messages import Requester
        with pytest.raises(ProtocolError):
            machine.msys.lazy_store(0, ADDR, 1, Requester(0, None, now=0))


class TestLazyCommTM:
    def test_labeled_updates_still_conflict_free(self):
        machine = make(commtm=True)
        add = machine.labels.get("ADD")

        def txn(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)

        def body(ctx):
            for _ in range(25):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 100
        assert machine.stats.aborts == 0

    def test_mixed_labeled_and_lazy_stores(self):
        machine = make(commtm=True)
        add = machine.labels.get("ADD")
        plain = 0x2000

        def txn(ctx):
            v = yield LabeledLoad(ADDR, add)
            yield LabeledStore(ADDR, add, v + 1)
            w = yield Load(plain + ctx.tid * 0x40)
            yield Store(plain + ctx.tid * 0x40, w + 1)

        def body(ctx):
            for _ in range(10):
                yield Atomic(txn)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(ADDR) == 40
        for t in range(4):
            assert machine.read_word(plain + t * 0x40) == 10
