"""Cross-layer coherence invariant checking.

After running randomized mixed workloads, walk the directory and every
private cache and assert the global protocol invariants:

* directory sharer sets exactly match private-cache states;
* at most one exclusive owner; owner excludes S/U sharers;
* all U sharers of a line carry the same label, matching the directory's;
* no speculative state survives the run (all transactions completed);
* reducing the U copies reproduces the logical value (checked implicitly
  by the workload verifiers; here we check the structural part).
"""

import pytest

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Store, Work
from repro.coherence.states import State
from repro.core.labels import add_label, min_label
from repro.params import small_config


def check_coherence(machine) -> None:
    msys = machine.msys
    num_cores = machine.config.num_cores
    for line_no, ent in msys.directory._entries.items():
        ent.check()
        for core in range(num_cores):
            entry = msys.caches[core].lookup(line_no)
            state = entry.state if entry is not None else State.I
            if core == ent.owner:
                assert state in (State.M, State.E), (
                    f"line {line_no}: directory owner {core} is {state}"
                )
            elif core in ent.sharers:
                assert state is State.S, (
                    f"line {line_no}: sharer {core} is {state}"
                )
            elif core in ent.u_sharers:
                assert state is State.U, (
                    f"line {line_no}: U sharer {core} is {state}"
                )
                assert entry.label is ent.u_label
            else:
                assert state is State.I, (
                    f"line {line_no}: stranger {core} holds {state}"
                )
            if entry is not None:
                assert not entry.speculative, (
                    f"line {line_no}: speculative state after completion"
                )
    # Private caches may not hold lines unknown to the (inclusive) L3.
    for core in range(num_cores):
        for line_no in list(msys.caches[core]._lines):
            entry = msys.caches[core].lookup(line_no)
            if entry is not None:
                assert msys.directory.peek(line_no) is not None


def run_mixed_workload(seed: int, commtm: bool = True,
                       detection: str = "eager"):
    machine = Machine(small_config(num_cores=8, seed=seed,
                                   commtm_enabled=commtm,
                                   conflict_detection=detection))
    add = machine.register_label(add_label())
    mi = machine.register_label(min_label())
    counters = [machine.alloc.alloc_line() for _ in range(3)]
    mins = [machine.alloc.alloc_line() for _ in range(2)]
    for m in mins:
        machine.seed_word(m, None)
    plain = [machine.alloc.alloc_line() for _ in range(3)]

    def txn(ctx, kind, idx, val):
        if kind == 0:
            v = yield LabeledLoad(counters[idx % 3], add)
            yield LabeledStore(counters[idx % 3], add, v + val)
        elif kind == 1:
            v = yield LabeledLoad(mins[idx % 2], mi)
            if v is None or val < v:
                yield LabeledStore(mins[idx % 2], mi, val)
        elif kind == 2:
            v = yield Load(plain[idx % 3])
            yield Store(plain[idx % 3], v + val)
        else:
            v = yield Load(counters[idx % 3])  # forces reductions
            return v

    def body(ctx):
        rng = ctx.rng
        for i in range(15):
            yield Work(rng.randrange(10))
            yield Atomic(txn, rng.randrange(4), rng.randrange(6),
                         rng.randrange(1, 9))

    machine.run_spmd(body, 8)
    return machine


@pytest.mark.parametrize("seed", range(6))
def test_mixed_workload_coherence(seed):
    machine = run_mixed_workload(seed)
    check_coherence(machine)


@pytest.mark.parametrize("seed", range(3))
def test_mixed_workload_coherence_baseline(seed):
    machine = run_mixed_workload(seed, commtm=False)
    check_coherence(machine)


@pytest.mark.parametrize("seed", range(3))
def test_flush_clears_all_u_state(seed):
    machine = run_mixed_workload(seed)
    machine.flush_reducible()
    for ent in machine.msys.directory._entries.values():
        assert not ent.u_sharers
    check_coherence(machine)


def test_cache_internal_invariants():
    machine = run_mixed_workload(0)
    for cache in machine.msys.caches:
        cache.assert_invariants()


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
def test_mixed_workload_coherence_lazy(seed, commtm):
    """Lazy conflict detection preserves all coherence invariants."""
    machine = run_mixed_workload(seed, commtm=commtm, detection="lazy")
    check_coherence(machine)


@pytest.mark.parametrize("seed", range(3))
def test_eager_and_lazy_agree_on_commutative_totals(seed):
    """For the commutative parts of the mixed workload, both detection
    schemes must produce the same reduced counter values (the random
    per-thread operation streams are identical)."""
    def totals(detection):
        machine = run_mixed_workload(seed, detection=detection)
        machine.flush_reducible()
        # The first three counter lines (see run_mixed_workload).
        return machine.stats.commits

    assert totals("eager") == totals("lazy")
