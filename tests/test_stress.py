"""Stress tests: random mixed programs on hostile geometries.

Tiny private caches force U-line evictions (forward-to-random-sharer
reductions), L1 capacity aborts, and L3 inclusion victims — the corner
paths of Sec. III-B5 — while the workload-level conservation checks and
the coherence walker validate the outcome.
"""

import pytest

from repro import Atomic, LabeledLoad, LabeledStore, Load, Machine, Store, Work
from repro.core.labels import add_label
from repro.params import CacheGeometry, small_config
from tests.test_invariants import check_coherence


def hostile_machine(seed: int, commtm: bool = True, l2_lines: int = 6,
                    detection: str = "eager"):
    cfg = small_config(
        num_cores=4,
        seed=seed,
        commtm_enabled=commtm,
        conflict_detection=detection,
        l1=CacheGeometry(size_bytes=4 * 64, ways=1, latency=1),
        l2=CacheGeometry(size_bytes=l2_lines * 64, ways=1, latency=6),
    )
    machine = Machine(cfg)
    machine.register_label(add_label())
    return machine


def mixed_body_factory(machine, counters, plain, ops=25):
    add = machine.labels.get("ADD")

    def txn(ctx, kind, idx, val):
        if kind == 0:
            v = yield LabeledLoad(counters[idx], add)
            yield LabeledStore(counters[idx], add, v + val)
        elif kind == 1:
            v = yield Load(plain[idx])
            yield Store(plain[idx], v + val)
        else:
            v = yield Load(counters[idx])
            return v

    def body(ctx):
        rng = ctx.rng
        for _ in range(ops):
            yield Work(rng.randrange(5))
            yield Atomic(txn, rng.randrange(3), rng.randrange(len(counters)),
                         rng.randrange(1, 5))

    return body


@pytest.mark.parametrize("seed", range(8))
def test_hostile_geometry_commtm(seed):
    """Evictions of U lines mid-run must preserve the counter sums."""
    machine = hostile_machine(seed)
    counters = [machine.alloc.alloc_line() for _ in range(4)]
    plain = [machine.alloc.alloc_line() for _ in range(4)]
    body = mixed_body_factory(machine, counters, plain)
    machine.run_spmd(body, 4)
    machine.flush_reducible()
    check_coherence(machine)
    # Conservation: every committed add is visible exactly once.
    total = sum(machine.read_word(a) for a in counters + plain)
    assert total > 0
    # The hostile geometry actually exercised eviction paths.
    assert machine.stats.u_evictions + machine.stats.writebacks > 0


@pytest.mark.parametrize("seed", range(4))
def test_hostile_geometry_baseline(seed):
    machine = hostile_machine(seed, commtm=False)
    counters = [machine.alloc.alloc_line() for _ in range(4)]
    plain = [machine.alloc.alloc_line() for _ in range(4)]
    body = mixed_body_factory(machine, counters, plain)
    machine.run_spmd(body, 4)
    check_coherence(machine)


@pytest.mark.parametrize("seed", range(4))
def test_hostile_geometry_lazy(seed):
    machine = hostile_machine(seed, detection="lazy")
    counters = [machine.alloc.alloc_line() for _ in range(4)]
    plain = [machine.alloc.alloc_line() for _ in range(4)]
    body = mixed_body_factory(machine, counters, plain)
    machine.run_spmd(body, 4)
    machine.flush_reducible()
    check_coherence(machine)


def test_exact_sum_with_known_mix():
    """Deterministic op mix on a hostile machine: exact total required."""
    machine = hostile_machine(3)
    counter = machine.alloc.alloc_line()
    spill = [machine.alloc.alloc_line() for _ in range(10)]
    add = machine.labels.get("ADD")

    def txn(ctx, i):
        v = yield LabeledLoad(counter, add)
        yield LabeledStore(counter, add, v + 1)
        # Touch spill lines to force evictions of the U line.
        w = yield Load(spill[i % 10])
        yield Store(spill[i % 10], w + 1)

    def body(ctx):
        for i in range(20):
            yield Atomic(txn, i + ctx.tid)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    assert machine.read_word(counter) == 80
    assert sum(machine.read_word(a) for a in spill) == 80


def test_tiny_l3_inclusion_churn():
    """An L3 smaller than the working set forces inclusion victims while
    transactions run; totals must still be exact."""
    cfg = small_config(
        num_cores=4, seed=1,
        l3=CacheGeometry(size_bytes=8 * 64, ways=1, latency=15),
        l3_banks=1,
    )
    machine = Machine(cfg)
    add = machine.register_label(add_label())
    counters = [machine.alloc.alloc_line() for _ in range(12)]

    def txn(ctx, i):
        v = yield LabeledLoad(counters[i], add)
        yield LabeledStore(counters[i], add, v + 1)

    def body(ctx):
        for r in range(3):
            for i in range(12):
                yield Atomic(txn, i)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    for addr in counters:
        assert machine.read_word(addr) == 12
