"""SystemConfig (Table I) validation and derived quantities."""

import pytest

from repro.errors import ConfigError
from repro.params import (
    CacheGeometry,
    NocConfig,
    SystemConfig,
    small_config,
    LINE_BYTES,
    WORDS_PER_LINE,
)


def test_defaults_match_table1():
    cfg = SystemConfig()
    assert cfg.num_cores == 128
    assert cfg.l1.size_bytes == 32 * 1024
    assert cfg.l2.size_bytes == 128 * 1024
    assert cfg.l2.latency == 6
    assert cfg.l3.size_bytes == 64 * 1024 * 1024
    assert cfg.l3.latency == 15
    assert cfg.l3_banks == 16
    assert cfg.noc.mesh_width == 4 and cfg.noc.mesh_height == 4
    assert cfg.mem_latency == 136
    assert cfg.num_labels == 8


def test_line_constants():
    assert LINE_BYTES == 64
    assert WORDS_PER_LINE == 8


def test_cores_per_tile():
    cfg = SystemConfig()
    assert cfg.cores_per_tile == 8
    assert cfg.tile_of_core(0) == 0
    assert cfg.tile_of_core(7) == 0
    assert cfg.tile_of_core(8) == 1
    assert cfg.tile_of_core(127) == 15


def test_tile_of_core_out_of_range():
    cfg = SystemConfig()
    with pytest.raises(ConfigError):
        cfg.tile_of_core(128)
    with pytest.raises(ConfigError):
        cfg.tile_of_core(-1)


def test_invalid_core_count():
    with pytest.raises(ConfigError):
        SystemConfig(num_cores=0)


def test_cores_must_be_multiple_of_tiles():
    with pytest.raises(ConfigError):
        SystemConfig(num_cores=100)  # not a multiple of 16


def test_invalid_conflict_policy():
    with pytest.raises(ConfigError):
        SystemConfig(conflict_policy="coin_flip")


def test_cache_geometry_counts():
    geom = CacheGeometry(size_bytes=32 * 1024, ways=8, latency=1)
    assert geom.num_lines == 512
    assert geom.num_sets == 64


def test_cache_geometry_invalid():
    with pytest.raises(ConfigError):
        CacheGeometry(size_bytes=-1, ways=8, latency=1).validate()
    with pytest.raises(ConfigError):
        CacheGeometry(size_bytes=1024, ways=0, latency=1).validate()


def test_zero_size_disables_capacity():
    geom = CacheGeometry(size_bytes=0, ways=8, latency=1)
    geom.validate()
    assert geom.num_sets == 0


def test_replace_returns_validated_copy():
    cfg = SystemConfig()
    cfg2 = cfg.replace(num_cores=64)
    assert cfg2.num_cores == 64
    assert cfg.num_cores == 128
    with pytest.raises(ConfigError):
        cfg.replace(num_cores=-3)


def test_describe_contains_key_rows():
    text = SystemConfig().describe()
    assert "128 cores" in text
    assert "64 MB shared" in text
    assert "4x4 mesh" in text
    assert "136-cycle" in text


def test_small_config():
    cfg = small_config(num_cores=8)
    assert cfg.num_cores == 8
    assert cfg.noc.num_tiles == 4
    assert cfg.l1.latency == 1  # keeps Table I latencies


def test_small_config_override():
    cfg = small_config(num_cores=4, commtm_enabled=False, seed=7)
    assert not cfg.commtm_enabled
    assert cfg.seed == 7


def test_noc_validation():
    with pytest.raises(ConfigError):
        NocConfig(mesh_width=0).validate()
