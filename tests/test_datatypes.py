"""Commutative data types driven through the engine."""

import pytest

from repro import Atomic, Machine, Work
from repro.datatypes import (
    BoundedCounter,
    ConcurrentLinkedList,
    OrderedPutCell,
    ResizableHashTable,
    SharedCounter,
    SharedMax,
    SharedMin,
    TopKSet,
)
from repro.mem.address import WORD_BYTES
from repro.params import small_config


def make(**kw):
    return Machine(small_config(num_cores=4, **kw))


class TestSharedCounter:
    def test_concurrent_adds(self):
        machine = make()
        counter = SharedCounter(machine, initial=5)

        def body(ctx):
            for _ in range(10):
                yield Atomic(counter.add, 2)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(counter.addr) == 5 + 80

    def test_read_triggers_reduction(self):
        machine = make()
        counter = SharedCounter(machine)
        values = []

        def adder(ctx):
            for _ in range(5):
                yield Atomic(counter.add, 1)

        def reader(ctx):
            yield Work(2000)
            values.append((yield Atomic(counter.read)))

        machine.run([adder, adder, reader])
        assert values and 0 <= values[0] <= 10

    def test_counters_share_label(self):
        machine = make()
        a = SharedCounter(machine)
        b = SharedCounter(machine)
        assert a.label is b.label


class TestBoundedCounter:
    def _run_mix(self, use_gather):
        machine = make()
        counter = BoundedCounter(machine, initial=8, use_gather=use_gather)
        outcomes = []

        def body(ctx):
            for i in range(12):
                if i % 3 == 0:
                    ok = yield Atomic(counter.increment, 1)
                else:
                    ok = yield Atomic(counter.decrement)
                outcomes.append(ok)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        value = machine.read_word(counter.addr)
        incs = 4 * 4
        decs = sum(1 for i, ok in enumerate(outcomes) if ok) - 0
        return machine, counter, outcomes, value

    def test_never_negative_with_gather(self):
        machine, counter, outcomes, value = self._run_mix(True)
        assert value >= 0

    def test_never_negative_without_gather(self):
        machine, counter, outcomes, value = self._run_mix(False)
        assert value >= 0

    def test_value_consistent_with_outcomes(self):
        machine = make()
        counter = BoundedCounter(machine, initial=3)
        succeeded = []

        def body(ctx):
            for _ in range(10):
                ok = yield Atomic(counter.decrement)
                succeeded.append(ok)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        value = machine.read_word(counter.addr)
        assert value == 3 - sum(succeeded)
        assert value >= 0

    def test_rejects_negative_initial(self):
        with pytest.raises(ValueError):
            BoundedCounter(make(), initial=-1)


class TestLinkedList:
    def test_enqueue_dequeue_conservation(self):
        machine = make()
        lst = ConcurrentLinkedList(machine)
        popped = []

        def body(ctx):
            for i in range(8):
                yield Atomic(lst.enqueue, (ctx.tid, i))
            for _ in range(4):
                v = yield Atomic(lst.dequeue)
                if v is not None:
                    popped.append(v)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        remaining = self._walk(machine, lst)
        assert len(popped) + len(remaining) == 32
        assert set(popped) | set(remaining) == {
            (t, i) for t in range(4) for i in range(8)
        }
        assert len(set(popped)) == len(popped)  # no double-pops

    def test_dequeue_empty_returns_none(self):
        machine = make()
        lst = ConcurrentLinkedList(machine)
        results = []

        def body(ctx):
            results.append((yield Atomic(lst.dequeue)))

        machine.run([body])
        assert results == [None]

    def _walk(self, machine, lst):
        desc = machine.read_word(lst.desc_addr)
        out = []
        if desc == 0:
            return out
        node, _tail = desc
        while node != 0:
            out.append(machine.read_word(node))
            node = machine.read_word(node + WORD_BYTES)
        return out


class TestOrderedPut:
    def test_keeps_minimum_key(self):
        machine = make()
        cell = OrderedPutCell(machine)
        keys = [[9, 4, 7], [3, 8, 5], [6, 2, 10], [11, 12, 13]]

        def body(ctx):
            for k in keys[ctx.tid]:
                yield Atomic(cell.put, k, f"v{k}")

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(cell.addr) == (2, "v2")


class TestMinMax:
    def test_shared_min(self):
        machine = make()
        cell = SharedMin(machine)

        def body(ctx):
            for v in (ctx.tid * 10 + 5, ctx.tid * 10 + 3):
                yield Atomic(cell.update, v)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(cell.addr) == 3

    def test_shared_max(self):
        machine = make()
        cell = SharedMax(machine)

        def body(ctx):
            yield Atomic(cell.update, ctx.tid * 7)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert machine.read_word(cell.addr) == 21


class TestTopK:
    def test_keeps_k_largest(self):
        machine = make()
        topk = TopKSet(machine, k=5)
        values = list(range(40))

        def body(ctx):
            for v in values[ctx.tid::4]:
                yield Atomic(topk.insert, v)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        final = machine.read_word(topk.addr)
        assert tuple(final) == (35, 36, 37, 38, 39)

    def test_fewer_than_k(self):
        machine = make()
        topk = TopKSet(machine, k=10)

        def body(ctx):
            yield Atomic(topk.insert, ctx.tid)

        machine.run_spmd(body, 3)
        machine.flush_reducible()
        assert tuple(machine.read_word(topk.addr)) == (0, 1, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKSet(make(), k=0)


class TestHashTable:
    def test_insert_lookup(self):
        machine = make()
        table = ResizableHashTable(machine, num_buckets=4)
        found = []

        def body(ctx):
            for i in range(6):
                key = ctx.tid * 100 + i
                yield Atomic(table.insert, key, key * 2)
            for i in range(6):
                key = ctx.tid * 100 + i
                v = yield Atomic(table.lookup, key)
                found.append(v == key * 2)

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert all(found)
        assert len(table.snapshot()) == 24

    def test_resize_preserves_contents(self):
        machine = make()
        table = ResizableHashTable(machine, num_buckets=2)  # capacity 8

        def body(ctx):
            for i in range(10):  # forces at least one resize
                yield Atomic(table.insert, ctx.tid * 100 + i, i)

        machine.run_spmd(body, 2)
        machine.flush_reducible()
        snapshot = table.snapshot()
        assert len(snapshot) == 20
        base, num_buckets, _cap = machine.read_word(table.meta_addr)
        assert num_buckets > 2

    def test_remove_restores_capacity(self):
        machine = make()
        table = ResizableHashTable(machine, num_buckets=4)

        def body(ctx):
            yield Atomic(table.insert, ctx.tid, ctx.tid)
            ok = yield Atomic(table.remove, ctx.tid)
            assert ok

        machine.run_spmd(body, 4)
        machine.flush_reducible()
        assert table.snapshot() == {}
        remaining = machine.read_word(table.remaining.addr)
        assert remaining == 16  # back to full capacity

    def test_remove_missing_key(self):
        machine = make()
        table = ResizableHashTable(machine, num_buckets=4)
        results = []

        def body(ctx):
            results.append((yield Atomic(table.remove, 999)))

        machine.run([body])
        assert results == [False]
