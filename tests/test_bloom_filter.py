"""Bloom filter datatype: commutative OR inserts, no false negatives."""

import pytest

from repro import Atomic, Machine
from repro.datatypes import BloomFilter
from repro.params import small_config


def make():
    return Machine(small_config(num_cores=4))


def test_no_false_negatives_under_concurrency():
    machine = make()
    bloom = BloomFilter(machine, num_bits=512, num_hashes=3)
    keys = [f"key-{t}-{i}" for t in range(4) for i in range(20)]

    def body(ctx):
        for key in keys[ctx.tid::4]:
            yield Atomic(bloom.insert, key)

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    assert machine.stats.aborts == 0  # OR inserts commute

    for key in keys:
        present = all(
            machine.read_word(addr) & mask
            for addr, mask in bloom._probes(key)
        )
        assert present, f"false negative for {key}"


def test_absent_keys_mostly_absent():
    machine = make()
    bloom = BloomFilter(machine, num_bits=4096, num_hashes=4)

    def body(ctx):
        for i in range(10):
            yield Atomic(bloom.insert, (ctx.tid, i))

    machine.run_spmd(body, 4)
    machine.flush_reducible()
    false_positives = 0
    for i in range(200):
        probe = ("absent", i)
        if all(machine.read_word(a) & m for a, m in bloom._probes(probe)):
            false_positives += 1
    # 40 keys x 4 hashes in 4096 bits -> fp rate well under 5%.
    assert false_positives < 10


def test_contains_inside_transaction():
    machine = make()
    bloom = BloomFilter(machine, num_bits=512)
    results = []

    def insert_then_check(ctx, key):
        yield from bloom.insert(ctx, key)
        found = yield from bloom.contains(ctx, key)
        return found

    def body(ctx):
        results.append((yield Atomic(insert_then_check, ("k", ctx.tid))))

    machine.run_spmd(body, 2)
    assert results == [True, True]


def test_popcount_counts_set_bits():
    machine = make()
    bloom = BloomFilter(machine, num_bits=256, num_hashes=2)

    def body(ctx):
        yield Atomic(bloom.insert, "solo")

    machine.run([body])
    machine.flush_reducible()
    assert 1 <= bloom.popcount(machine) <= 2


def test_invalid_geometry():
    with pytest.raises(ValueError):
        BloomFilter(make(), num_bits=100)  # not a multiple of 64
    with pytest.raises(ValueError):
        BloomFilter(make(), num_bits=128, num_hashes=0)
