"""Tests for the exhaustive MESI+U model checker.

Three layers:

* plumbing — snapshot/restore round-trips through the real protocol,
  and the extracted certifier is pure (numpy-free, mutation-free);
* the acceptance obligation — the unmutated protocol passes every
  obligation (invariants, commutativity, certifier soundness,
  quiescence) with zero findings, exhausting the 2-core/1-line config
  for every registered label;
* fault injection — each seeded protocol/certifier mutation is detected
  and its counterexample trace replays to the same finding.
"""

import subprocess
import sys

import pytest

from repro.analysis.modelcheck import (Explorer, registered_labels,
                                       replay, run_modelcheck)
from repro.analysis.modelcheck.checker import bounded_config
from repro.coherence.cache import PrivateCache
from repro.coherence.messages import Requester
from repro.coherence.protocol import MemorySystem
from repro.coherence.states import State
from repro.core.labels import LabelRegistry, add_label
from repro.mem.memory import MainMemory
from repro.sim.rng import RngStreams
from repro.sim.stats import Stats
from repro.sim.vector import certify

ALL_LABELS = ("ADD", "MIN", "MAX", "OPUT", "TOPK", "LIST", "OR")


def _machine(num_cores=2):
    registry = LabelRegistry(num_hw_labels=8, virtualize=True)
    registry.register(add_label("ADD"))
    return MemorySystem(bounded_config(num_cores), MainMemory(),
                        registry, Stats(), RngStreams(0))


def _req(core):
    return Requester(core=core, ts=None, now=0)


class TestSnapshotRestore:
    def test_roundtrip_restores_exact_state(self):
        msys = _machine()
        label = msys.labels._order[0]
        msys.labeled_store(0, 0, label, 5, _req(0))
        msys.labeled_store(1, 0, label, 7, _req(1))
        snap = msys.snapshot_state()
        before = (msys.state_of(0, 0), msys.state_of(1, 0),
                  msys.peek_word(0))
        # Mutate heavily, then restore.
        msys.load(0, 0, _req(0))
        msys.store(1, 64, 9, _req(1))
        assert msys.state_of(1, 0) is not State.U
        msys.restore_state(snap)
        assert (msys.state_of(0, 0), msys.state_of(1, 0),
                msys.peek_word(0)) == before
        assert msys.state_of(0, 0) is State.U
        assert msys.peek_word(64) == 0

    def test_snapshot_is_reusable_and_isolated(self):
        msys = _machine()
        msys.store(0, 0, 3, _req(0))
        snap = msys.snapshot_state()
        for _ in range(3):
            msys.restore_state(snap)
            msys.store(0, 0, 99, _req(0))
        msys.restore_state(snap)
        # Mutations after restore never leak back into the snapshot.
        assert msys.peek_word(0) == 3

    def test_directory_entry_identity_not_shared(self):
        msys = _machine()
        msys.store(0, 0, 3, _req(0))
        snap = msys.snapshot_state()
        ent_before = msys.directory.peek(0)
        msys.restore_state(snap)
        assert msys.directory.peek(0) is not ent_before
        assert msys.directory.peek(0).owner == 0


class TestCertifyPurity:
    def test_certify_module_does_not_import_numpy(self):
        # The model checker runs on no-numpy CI legs; the pure certifier
        # (and the kernels module it sits beside) must import clean.
        code = ("import sys; sys.modules['numpy'] = None; "
                "import repro.sim.vector.certify; "
                "import repro.sim.vector.kernels; print('ok')")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True,
                             env={"PYTHONPATH": "src"})
        assert out.returncode == 0, out.stderr
        assert "ok" in out.stdout

    def test_certify_probe_leaves_state_untouched(self):
        from repro.coherence.messages import AccessKind
        msys = _machine()
        label = msys.labels._order[0]
        msys.labeled_store(0, 0, label, 5, _req(0))
        msys.labeled_store(1, 0, label, 7, _req(1))
        snap = msys.snapshot_state()
        for kind in AccessKind:
            use = label if kind.is_labeled else None
            certify.certify_access(msys, 0, kind, 0, use, now=0)
        assert msys.snapshot_state() == snap

    def test_engine_wrapper_delegates_to_pure_function(self):
        pytest.importorskip("numpy")
        from repro.core.machine import Machine
        from repro.params import small_config
        from repro.coherence.messages import AccessKind
        from repro.sim.vector.engine import VectorEngine, K_LOAD
        machine = Machine(small_config(num_cores=8), backend="vector")
        engine = VectorEngine(machine, [])
        pred_wrapper = engine._certify_proto(0, K_LOAD, 0, None, 0)
        pred_pure = certify.certify_access(machine.msys, 0,
                                           AccessKind.LOAD, 0, None, 0)
        assert pred_wrapper is not None
        assert pred_wrapper == pred_pure


class TestCleanProtocol:
    def test_every_label_exhausts_clean(self):
        # The acceptance obligation: zero findings, every label
        # exhausted, on the 2-core/1-line bounded config.
        report = run_modelcheck(depth=4)
        assert [r.label for r in report.per_label] == list(ALL_LABELS)
        assert report.exhausted
        assert report.findings == []
        assert all(r.suppressed == 0 for r in report.per_label)
        assert report.states > 100
        assert report.transitions > report.states

    def test_registered_labels_cover_every_suite_label(self):
        assert [lb.name for lb in registered_labels()] == list(ALL_LABELS)

    def test_three_cores_clean_at_shallow_depth(self):
        report = run_modelcheck(label_names=["ADD"], cores=3, depth=3)
        assert report.findings == []
        assert report.exhausted

    def test_budget_cut_reports_not_exhausted(self):
        report = run_modelcheck(label_names=["ADD"], depth=6,
                                max_states=5)
        assert not report.exhausted
        assert report.per_label[0].states == 5

    def test_symmetry_reduction_halves_the_frontier(self):
        # With 2 symmetric cores, mirrored states collapse: exploring
        # with symmetry must visit fewer states than the op tree would
        # without it (sanity check that canonicalization does work).
        label = registered_labels()[0]
        ex = Explorer(label, cores=2, lines=1, depth=2)
        rep = ex.run()
        # Mirror states (only c0 acted vs only c1 acted) are merged, so
        # depth-1 already dedups: 5 ops x 2 cores -> at most 5 states.
        assert rep.states < 1 + 10 + 100


def _detected(monkeypatch_done, label="ADD", depth=3):
    report = run_modelcheck(label_names=[label], depth=depth)
    ces = report.counterexamples
    assert ces, "mutation not detected"
    return report, ces


class TestFaultInjection:
    """Each seeded mutation is detected with a replayable trace."""

    def _assert_replayable(self, ce, depth=3):
        rep = replay(ce.label, ce.trace, depth=depth)
        found = {(c.obligation, c.check) for c in rep.counterexamples}
        assert (ce.obligation, ce.check) in found, (
            f"replay of {ce.trace} did not reproduce "
            f"{ce.obligation}:{ce.check}; got {found}")

    def test_forged_m_grant_detected(self, monkeypatch):
        # Mutation: after a read downgrade the old owner's private copy
        # is forged back to M — two cores now believe they may write.
        orig = MemorySystem._downgrade_owner_for_read

        def forged(self, core, line_no, ent, requester, res):
            ok = orig(self, core, line_no, ent, requester, res)
            for cache in self.caches:
                cl = cache.peek_line(line_no)
                if cl is not None and cl.state is State.S \
                        and cache.core != core:
                    cl.state = State.M
                    break
            return ok

        monkeypatch.setattr(MemorySystem, "_downgrade_owner_for_read",
                            forged)
        report, ces = _detected(monkeypatch)
        checks = {(c.obligation, c.check) for c in ces}
        assert ("invariants", "owner-with-sharers") in checks \
            or ("invariants", "multiple-owners") in checks
        self._assert_replayable(ces[0])

    def test_dropped_invalidation_detected(self, monkeypatch):
        # Mutation: invalidations are dropped on the floor — stale
        # copies survive every GETX/GETU fan-out.
        monkeypatch.setattr(PrivateCache, "drop",
                            lambda self, line: None)
        report, ces = _detected(monkeypatch)
        checks = {(c.obligation, c.check) for c in ces}
        assert any(ob == "invariants" for ob, _ in checks)
        self._assert_replayable(ces[0])

    def test_wrong_u_reduction_target_detected(self, monkeypatch):
        # Mutation: a reduction installs M at the requester but records
        # the wrong core as directory owner.
        orig = MemorySystem._install_reduced

        def wrong_target(self, core, line_no, ent, merged, own,
                         as_state, label):
            orig(self, core, line_no, ent, merged, own, as_state, label)
            if as_state is State.M:
                ent.owner = (core + 1) % len(self.caches)

        monkeypatch.setattr(MemorySystem, "_install_reduced",
                            wrong_target)
        report, ces = _detected(monkeypatch)
        checks = {c.check for c in ces}
        assert checks & {"stale-owner", "directory-mismatch",
                         "drained-stale-owner",
                         "drained-directory-mismatch"}
        self._assert_replayable(ces[0])

    def test_certifier_off_by_one_detected(self, monkeypatch):
        # Mutation: every closed-form latency prediction is one cycle
        # high. Only the certifier-soundness obligation can see this —
        # the protocol itself is untouched.
        orig = certify.certify_access

        def off_by_one(msys, core, kind, addr, label, now, spec=False):
            pred = orig(msys, core, kind, addr, label, now, spec)
            if pred is not None and pred >= 0:
                return pred + 1
            return pred

        monkeypatch.setattr(certify, "certify_access", off_by_one)
        report, ces = _detected(monkeypatch)
        assert all(c.obligation == "certifier" for c in ces)
        assert any(c.check == "latency-mismatch" for c in ces)
        # Replay must reproduce it through the same patched module
        # attribute (the checker resolves certify.certify_access late).
        self._assert_replayable(ces[0])

    def test_clean_after_unpatching(self):
        # The monkeypatches above were scoped; the real protocol is
        # still clean (guards against patch leakage between tests).
        report = run_modelcheck(label_names=["ADD"], depth=2)
        assert report.findings == []


class TestCli:
    def test_modelcheck_subcommand_clean(self, capsys):
        from repro.analysis.__main__ import main
        rc = main(["modelcheck", "--label", "ADD", "--depth", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "explored" in out
        assert "0 error(s)" in out

    def test_modelcheck_json_payload(self, capsys):
        import json
        from repro.analysis.__main__ import main
        rc = main(["modelcheck", "--label", "ADD", "--depth", "2",
                   "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["schema"] == "repro-analysis/1"
        assert payload["errors"] == 0
        mc = payload["modelcheck"]
        assert mc["exhausted"] is True
        assert mc["states"] > 0
        assert mc["per_label"][0]["label"] == "ADD"

    def test_budget_cut_is_warning_not_error(self, capsys):
        from repro.analysis.__main__ import main
        rc = main(["modelcheck", "--label", "ADD", "--depth", "6",
                   "--max-states", "3"])
        out = capsys.readouterr().out
        assert rc == 0  # warnings do not gate
        assert "BUDGET CUT" in out
        assert "1 warning(s)" in out
