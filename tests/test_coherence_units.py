"""Coherence building blocks: states, NoC, cache lines, private cache,
directory."""

import pytest

from repro.coherence.cache import PrivateCache
from repro.coherence.directory import Directory, DirEntry
from repro.coherence.line import CacheLine
from repro.coherence.noc import Mesh
from repro.coherence.states import State
from repro.core.labels import add_label
from repro.errors import ProtocolError
from repro.mem.memory import MainMemory
from repro.params import CacheGeometry, NocConfig

ADD = add_label()


class TestStates:
    def test_can_read(self):
        assert State.M.can_read and State.E.can_read and State.S.can_read
        assert not State.U.can_read and not State.I.can_read

    def test_can_write(self):
        assert State.M.can_write and State.E.can_write
        assert not State.S.can_write
        assert not State.U.can_write

    def test_exclusive(self):
        assert State.M.is_exclusive and State.E.is_exclusive
        assert not State.S.is_exclusive

    def test_labeled_satisfaction(self):
        assert State.M.can_satisfy_labeled(None, ADD)
        assert State.U.can_satisfy_labeled(ADD, ADD)
        assert not State.U.can_satisfy_labeled(ADD, "OTHER")
        assert not State.S.can_satisfy_labeled(None, ADD)
        assert not State.I.can_satisfy_labeled(None, ADD)


class TestMesh:
    def setup_method(self):
        self.mesh = Mesh(NocConfig(mesh_width=4, mesh_height=4,
                                   router_cycles=2, link_cycles=1))

    def test_coords(self):
        assert self.mesh.coords(0) == (0, 0)
        assert self.mesh.coords(5) == (1, 1)
        assert self.mesh.coords(15) == (3, 3)

    def test_hops_manhattan(self):
        assert self.mesh.hops(0, 0) == 0
        assert self.mesh.hops(0, 3) == 3
        assert self.mesh.hops(0, 15) == 6

    def test_hops_symmetric(self):
        for a in range(16):
            for b in range(16):
                assert self.mesh.hops(a, b) == self.mesh.hops(b, a)

    def test_latency_formula(self):
        # h links + (h+1) routers
        assert self.mesh.latency(0, 0) == 2
        assert self.mesh.latency(0, 1) == 1 + 4

    def test_round_trip(self):
        assert self.mesh.round_trip(0, 5) == 2 * self.mesh.latency(0, 5)

    def test_max_latency_from(self):
        assert self.mesh.max_latency_from(0, []) == 0
        worst = self.mesh.max_latency_from(0, [1, 15])
        assert worst == self.mesh.latency(0, 15)


class TestCacheLine:
    def test_u_state_requires_label(self):
        with pytest.raises(ProtocolError):
            CacheLine(line=0, state=State.U, words=[0] * 8)

    def test_snapshot_and_rollback(self):
        entry = CacheLine(line=0, state=State.M, words=[1] * 8)
        entry.snapshot_before_write()
        entry.spec_written = True
        entry.words = [2] * 8
        assert entry.spec_modified
        entry.rollback()
        assert entry.words == [1] * 8
        assert not entry.speculative

    def test_snapshot_once(self):
        entry = CacheLine(line=0, state=State.M, words=[1] * 8)
        entry.snapshot_before_write()
        entry.words = [2] * 8
        entry.snapshot_before_write()  # must keep the ORIGINAL value
        entry.words = [3] * 8
        entry.rollback()
        assert entry.words == [1] * 8

    def test_commit_clears_spec(self):
        entry = CacheLine(line=0, state=State.M, words=[1] * 8)
        entry.snapshot_before_write()
        entry.spec_written = True
        entry.words = [2] * 8
        entry.commit()
        assert entry.words == [2] * 8
        assert not entry.speculative
        assert entry.clean_words is None

    def test_nonspec_words(self):
        entry = CacheLine(line=0, state=State.M, words=[1] * 8)
        entry.snapshot_before_write()
        entry.words = [2] * 8
        assert entry.nonspec_words() == [1] * 8


def _small_cache(l1_lines=2, l2_lines=4):
    return PrivateCache(
        0,
        CacheGeometry(size_bytes=l1_lines * 64, ways=1, latency=1),
        CacheGeometry(size_bytes=l2_lines * 64, ways=1, latency=6),
    )


class TestPrivateCache:
    def test_lookup_miss(self):
        cache = _small_cache()
        assert cache.lookup(0) is None

    def test_install_and_lookup(self):
        cache = _small_cache()
        cache.install(CacheLine(line=3, state=State.S, words=[0] * 8))
        assert cache.lookup(3).state is State.S

    def test_l1_tracker_hits(self):
        cache = _small_cache(l1_lines=2)
        cache.install(CacheLine(line=0, state=State.S, words=[0] * 8))
        assert cache.touch(0)  # just installed -> L1 hit
        cache.install(CacheLine(line=1, state=State.S, words=[0] * 8))
        cache.install(CacheLine(line=2, state=State.S, words=[0] * 8))
        # line 0 fell out of the 2-line L1 but is still in the L2.
        assert not cache.touch(0)
        assert cache.lookup(0) is not None

    def test_l2_capacity_evicts_lru(self):
        evicted = []
        cache = _small_cache(l2_lines=2)
        cache.eviction_hook = evicted.append
        for line in range(3):
            cache.install(CacheLine(line=line, state=State.S, words=[0] * 8))
        assert [e.line for e in evicted] == [0]
        assert cache.lookup(0) is None

    def test_spec_eviction_hook_fires(self):
        events = []
        cache = _small_cache(l1_lines=1, l2_lines=8)
        cache.spec_eviction_hook = lambda core, why: events.append(why)
        entry = CacheLine(line=0, state=State.M, words=[0] * 8)
        entry.spec_written = True
        cache.install(entry)
        cache.install(CacheLine(line=1, state=State.S, words=[0] * 8))
        assert events == ["l1-capacity"]

    def test_rollback_and_commit_all(self):
        cache = _small_cache(l2_lines=8)
        entry = CacheLine(line=0, state=State.M, words=[1] * 8)
        cache.install(entry)
        entry.snapshot_before_write()
        entry.spec_written = True
        entry.words = [9] * 8
        cache.rollback_all()
        assert cache.lookup(0).words == [1] * 8
        entry2 = cache.lookup(0)
        entry2.snapshot_before_write()
        entry2.spec_written = True
        entry2.words = [5] * 8
        cache.commit_all()
        assert cache.lookup(0).words == [5] * 8
        assert not cache.lookup(0).speculative

    def test_drop(self):
        cache = _small_cache()
        cache.install(CacheLine(line=0, state=State.S, words=[0] * 8))
        cache.drop(0)
        assert cache.lookup(0) is None

    def test_spec_lines(self):
        cache = _small_cache(l2_lines=8)
        a = CacheLine(line=0, state=State.M, words=[0] * 8)
        a.spec_read = True
        cache.install(a)
        cache.install(CacheLine(line=1, state=State.S, words=[0] * 8))
        assert [e.line for e in cache.spec_lines()] == [0]


class TestDirectory:
    def test_entry_fills_from_memory(self):
        mem = MainMemory()
        mem.write_word(0, 42)
        directory = Directory(mem, num_lines=0)
        ent = directory.entry(0)
        assert ent.words[0] == 42

    def test_was_miss(self):
        directory = Directory(MainMemory(), num_lines=0)
        assert directory.was_miss(0)
        directory.entry(0)
        assert not directory.was_miss(0)

    def test_direntry_incompatible_sharers(self):
        ent = DirEntry(line=0, words=[0] * 8)
        ent.owner = 1
        ent.sharers = {2}
        with pytest.raises(ProtocolError):
            ent.check()

    def test_direntry_u_without_label(self):
        ent = DirEntry(line=0, words=[0] * 8)
        ent.u_sharers = {1}
        with pytest.raises(ProtocolError):
            ent.check()

    def test_drop_sharer(self):
        ent = DirEntry(line=0, words=[0] * 8)
        ent.u_sharers = {1, 2}
        ent.u_label = ADD
        directory = Directory(MainMemory(), num_lines=0)
        directory.drop_sharer(ent, 1)
        assert ent.u_sharers == {2}
        directory.drop_sharer(ent, 2)
        assert ent.u_label is None  # cleared with the last sharer

    def test_private_state_of(self):
        ent = DirEntry(line=0, words=[0] * 8, owner=3)
        assert ent.private_state_of(3) is State.M
        assert ent.private_state_of(1) is State.I

    def test_capacity_eviction_writes_back(self):
        mem = MainMemory()
        directory = Directory(mem, num_lines=2)
        e0 = directory.entry(0)
        e0.words = [7] * 8
        e0.dirty = True
        directory.entry(1)
        directory.entry(2)  # evicts line 0
        assert directory.peek(0) is None
        assert mem.read_word(0) == 7

    def test_eviction_with_sharers_requires_hook(self):
        directory = Directory(MainMemory(), num_lines=1)
        ent = directory.entry(0)
        ent.owner = 1
        with pytest.raises(ProtocolError):
            directory.entry(1)  # would evict line 0 with a live owner
