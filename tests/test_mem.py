"""Memory substrate: addressing, backing store, allocator."""

import pytest

from repro.errors import MemoryError_
from repro.mem import (
    Allocator,
    MainMemory,
    LINE_BYTES,
    WORD_BYTES,
    WORDS_PER_LINE,
    aligned,
    line_base,
    line_of,
    word_addr,
    word_index,
)
from repro.mem.address import check_word_aligned


class TestAddressing:
    def test_line_of(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_of(128) == 2

    def test_word_index(self):
        assert word_index(0) == 0
        assert word_index(8) == 1
        assert word_index(56) == 7
        assert word_index(64) == 0

    def test_word_addr_roundtrip(self):
        for line in (0, 5, 1000):
            for idx in range(WORDS_PER_LINE):
                addr = word_addr(line, idx)
                assert line_of(addr) == line
                assert word_index(addr) == idx

    def test_word_addr_out_of_range(self):
        with pytest.raises(MemoryError_):
            word_addr(0, 8)

    def test_line_base(self):
        assert line_base(3) == 3 * LINE_BYTES

    def test_aligned(self):
        assert aligned(0)
        assert aligned(8)
        assert not aligned(4)
        assert aligned(64, LINE_BYTES)
        assert not aligned(32, LINE_BYTES)

    def test_check_word_aligned_rejects(self):
        with pytest.raises(MemoryError_):
            check_word_aligned(3)
        with pytest.raises(MemoryError_):
            check_word_aligned(-8)
        check_word_aligned(16)  # no raise


class TestMainMemory:
    def test_unwritten_reads_zero(self):
        mem = MainMemory()
        assert mem.read_word(0) == 0
        assert mem.read_word(8 * 1000) == 0

    def test_write_read_word(self):
        mem = MainMemory()
        mem.write_word(16, 42)
        assert mem.read_word(16) == 42
        assert mem.read_word(24) == 0  # neighbours untouched

    def test_words_hold_arbitrary_values(self):
        mem = MainMemory()
        mem.write_word(0, (1, 2))
        mem.write_word(8, None)
        assert mem.read_word(0) == (1, 2)
        assert mem.read_word(8) is None

    def test_read_line_is_copy(self):
        mem = MainMemory()
        mem.write_word(0, 5)
        line = mem.read_line(0)
        line[0] = 99
        assert mem.read_word(0) == 5

    def test_write_line(self):
        mem = MainMemory()
        mem.write_line(2, list(range(8)))
        assert mem.read_word(2 * LINE_BYTES + 8) == 1

    def test_write_line_wrong_size(self):
        mem = MainMemory()
        with pytest.raises(ValueError):
            mem.write_line(0, [1, 2, 3])

    def test_misaligned_access_rejected(self):
        mem = MainMemory()
        with pytest.raises(MemoryError_):
            mem.read_word(5)
        with pytest.raises(MemoryError_):
            mem.write_word(5, 1)

    def test_touched_lines(self):
        mem = MainMemory()
        assert mem.touched_lines() == 0
        mem.write_word(0, 1)
        mem.write_word(8, 1)  # same line
        mem.write_word(64, 1)
        assert mem.touched_lines() == 2


class TestAllocator:
    def test_word_alignment(self):
        alloc = Allocator()
        a = alloc.alloc(8)
        assert a % WORD_BYTES == 0

    def test_line_allocation_is_line_aligned(self):
        alloc = Allocator()
        alloc.alloc(8)
        a = alloc.alloc_line()
        assert a % LINE_BYTES == 0

    def test_object_size_alignment(self):
        alloc = Allocator()
        alloc.alloc(8)
        a = alloc.alloc_words(2)  # 16-byte object -> 16-byte aligned
        assert a % 16 == 0

    def test_allocations_do_not_overlap(self):
        alloc = Allocator()
        spans = []
        for nwords in (1, 2, 3, 8, 1):
            a = alloc.alloc_words(nwords)
            spans.append((a, a + nwords * WORD_BYTES))
        spans.sort()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_invalid_size(self):
        with pytest.raises(MemoryError_):
            Allocator().alloc(0)

    def test_thread_arenas_disjoint(self):
        alloc = Allocator()
        a0 = alloc.thread_alloc(0, 8)
        a1 = alloc.thread_alloc(1, 8)
        assert abs(a0 - a1) >= 0x0100_0000

    def test_thread_arena_exhaustion(self):
        alloc = Allocator(thread_arena_bytes=64)
        alloc.thread_alloc(0, 64)
        with pytest.raises(MemoryError_):
            alloc.thread_alloc(0, 8)

    def test_shared_arena_exhaustion(self):
        alloc = Allocator(base=0x1000, thread_arena_base=0x2000)
        with pytest.raises(MemoryError_):
            alloc.alloc(0x2000)

    def test_thread_alloc_words_alignment(self):
        alloc = Allocator()
        a = alloc.thread_alloc_words(3, 2)
        assert a % 16 == 0
