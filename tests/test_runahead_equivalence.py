"""Differential tests for the run-ahead (leapfrog) scheduler.

The run-ahead loop in ``Engine._run_runahead`` is a host-side
optimization only: it batches consecutive steps of the minimum-clock core
into one scheduling quantum, but must reproduce the *exact* ``(stamp,
core)`` pop order of the single-step reference loop that
``REPRO_NO_RUNAHEAD=1`` forces. These tests run every micro workload both
ways and compare ``Stats.comparable()`` (every simulated statistic,
``host_*`` counters excluded) — and, for a sharper check, record the
full op-level interleaving trace of both schedulers and require it to be
identical element by element.

The adaptive fast-path gate (``Engine._disable_fastpath``) is validated
here too: it is driven purely by the attempt/hit sequence, which the
trace tests prove is scheduler-independent, so gating composes with
run-ahead without breaking bit-identity.
"""

import pytest

from repro import Machine
from repro.analysis.sanitizer import SANITIZE_ENV
from repro.harness.runner import run_workload
from repro.obs import OBS_ENV
from repro.params import small_config
from repro.runtime.ops import BARRIER, Atomic
from repro.sim.engine import (Engine, NO_FASTPATH_ENV, NO_RUNAHEAD_ENV,
                              runahead_enabled)
from repro.workloads.micro import (counter, linked_list, ordered_put,
                                   refcount, topk)
from repro.workloads.micro.common import BuiltWorkload

MICROS = {
    "counter": counter.build,
    "topk": topk.build,
    "ordered_put": ordered_put.build,
    "linked_list": linked_list.build,
    "refcount": refcount.build,
}


def _run(build, *, commtm, seed, runahead, monkeypatch, sanitize=False,
         observe=False, **params):
    if runahead:
        monkeypatch.delenv(NO_RUNAHEAD_ENV, raising=False)
    else:
        monkeypatch.setenv(NO_RUNAHEAD_ENV, "1")
    if sanitize:
        monkeypatch.setenv(SANITIZE_ENV, "1")
    else:
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
    if observe:
        monkeypatch.setenv(OBS_ENV, "1")
    else:
        monkeypatch.delenv(OBS_ENV, raising=False)
    params.setdefault("total_ops", 240)
    # Pinned to the interpreted engine: this file differentially tests
    # *its* run-ahead scheduler, and asserts its host batching counters,
    # which the vector backend reports as "n/a (vector)". The vector
    # backend has its own oracle in tests/test_vector_equivalence.py.
    return run_workload(build, 4, num_cores=16, commtm=commtm, seed=seed,
                        backend="interp", **params)


@pytest.mark.parametrize("seed", [1, 2])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
@pytest.mark.parametrize("name", sorted(MICROS))
def test_runahead_is_bit_identical(name, commtm, seed, monkeypatch):
    build = MICROS[name]
    ahead = _run(build, commtm=commtm, seed=seed, runahead=True,
                 monkeypatch=monkeypatch)
    stepped = _run(build, commtm=commtm, seed=seed, runahead=False,
                   monkeypatch=monkeypatch)

    assert ahead.cycles == stepped.cycles
    assert ahead.stats.parallel_cycles == stepped.stats.parallel_cycles
    assert ahead.stats.aborts == stepped.stats.aborts
    assert ahead.stats.commits == stepped.stats.commits
    assert ahead.stats.comparable() == stepped.stats.comparable()

    # The escape hatch really selects the reference loop (no quanta), and
    # the run-ahead loop really batches (>= 1 op per quantum).
    assert stepped.stats.host_runahead_batches == 0
    assert stepped.stats.runahead_ops_per_batch is None
    assert ahead.stats.host_runahead_batches > 0
    assert ahead.stats.runahead_ops_per_batch >= 1.0


@pytest.mark.parametrize("mode", ["obs", "sanitize"])
@pytest.mark.parametrize("name", ["counter", "topk"])
def test_runahead_composes_with_obs_and_sanitize(name, mode, monkeypatch):
    """Run-ahead stays bit-identical when the observability layer or the
    coherence sanitizer rebuilds the handler table around it."""
    build = MICROS[name]
    kwargs = {"sanitize": mode == "sanitize", "observe": mode == "obs"}
    ahead = _run(build, commtm=True, seed=1, runahead=True,
                 monkeypatch=monkeypatch, **kwargs)
    stepped = _run(build, commtm=True, seed=1, runahead=False,
                   monkeypatch=monkeypatch, **kwargs)
    assert ahead.cycles == stepped.cycles
    assert ahead.stats.comparable() == stepped.stats.comparable()
    assert ahead.stats.host_runahead_batches > 0


def test_env_parsing(monkeypatch):
    for off in ("1", "true", "yes", " 1 "):
        monkeypatch.setenv(NO_RUNAHEAD_ENV, off)
        assert not runahead_enabled()
    for on in ("", "0", "false", " FALSE "):
        monkeypatch.setenv(NO_RUNAHEAD_ENV, on)
        assert runahead_enabled()
    monkeypatch.delenv(NO_RUNAHEAD_ENV)
    assert runahead_enabled()


# ---------------------------------------------------------------------------
# Adaptive fast-path gate
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("runahead", [True, False],
                         ids=["runahead", "stepped"])
def test_gate_disables_fastpath_on_contended_baseline(runahead, monkeypatch):
    """The baseline counter is the fast path's worst case (every store
    contends): the gate must trip after warmup, record a sub-threshold
    hit rate, and leave simulated results bit-identical to both the
    never-attempted (REPRO_NO_FASTPATH) run and the other scheduler."""
    gated = _run(MICROS["counter"], commtm=False, seed=1, runahead=runahead,
                 monkeypatch=monkeypatch, total_ops=600)
    assert gated.stats.host_fastpath_gated
    assert gated.stats.fastpath_hit_rate is not None
    assert gated.stats.fastpath_hit_rate < 0.5

    monkeypatch.setenv(NO_FASTPATH_ENV, "1")
    never = _run(MICROS["counter"], commtm=False, seed=1, runahead=runahead,
                 monkeypatch=monkeypatch, total_ops=600)
    monkeypatch.delenv(NO_FASTPATH_ENV)
    assert not never.stats.host_fastpath_gated
    assert never.stats.fastpath_hit_rate is None
    assert gated.cycles == never.cycles
    assert gated.stats.comparable() == never.stats.comparable()


def test_gate_decision_is_scheduler_independent(monkeypatch):
    ahead = _run(MICROS["counter"], commtm=False, seed=1, runahead=True,
                 monkeypatch=monkeypatch, total_ops=600)
    stepped = _run(MICROS["counter"], commtm=False, seed=1, runahead=False,
                   monkeypatch=monkeypatch, total_ops=600)
    # Identical interleaving -> identical attempt/hit sequence -> the gate
    # trips at the same op with the same observed rate.
    assert ahead.stats.host_fastpath_gated
    assert stepped.stats.host_fastpath_gated
    assert ahead.stats.fastpath_hit_rate == stepped.stats.fastpath_hit_rate


def test_gate_leaves_hit_dominated_workloads_alone(monkeypatch):
    res = _run(MICROS["counter"], commtm=True, seed=1, runahead=True,
               monkeypatch=monkeypatch, total_ops=600)
    assert not res.stats.host_fastpath_gated
    assert res.stats.fastpath_hit_rate > 0.9


# ---------------------------------------------------------------------------
# Op-level interleaving traces
# ---------------------------------------------------------------------------

def _random_mix(machine, num_threads: int, iters: int = 60) -> BuiltWorkload:
    """A scheduling-order stress: per-thread deterministic random mixes of
    conventional loads, private stores, variable think time, commutative
    transactions, and barriers — far more irregular core clocks than any
    micro, so quantum hand-off edges get exercised hard."""
    from repro.datatypes.counter import SharedCounter

    shared_counter = SharedCounter(machine)
    lines = [machine.alloc.alloc_line() for _ in range(4)]
    for addr in lines:
        machine.seed_word(addr, 0)

    def make_body(tid: int):
        def body(ctx):
            rng = ctx.rng
            scratch = ctx.thread_alloc_words(1)
            add_one = Atomic(shared_counter.add, 1)
            for i in range(iters):
                r = rng.random()
                if r < 0.4:
                    yield ctx.load(lines[rng.randrange(len(lines))])
                elif r < 0.6:
                    yield ctx.store(scratch, i)
                elif r < 0.85:
                    yield ctx.work(1 + rng.randrange(50))
                else:
                    yield add_one
                if i % 20 == 10:
                    yield BARRIER
        return body

    return BuiltWorkload(
        name="random_mix",
        bodies=[make_body(t) for t in range(num_threads)],
        verify=None,
        info={},
    )


def _traced_engine(machine, bodies):
    """An Engine whose every op dispatch is recorded as
    ``(core, op class, addr)`` — the full interleaving, not just totals."""
    engine = Engine(machine, bodies)
    trace = []
    append = trace.append

    def wrap(handler):
        def wrapped(runner, op):
            append((runner.core, op.__class__.__name__,
                    getattr(op, "addr", None)))
            return handler(runner, op)
        return wrapped

    for op_cls, handler in list(engine._handlers.items()):
        engine._handlers[op_cls] = wrap(handler)
    return engine, trace


def _interleaving(build, *, commtm, seed, runahead, monkeypatch):
    # Pin the fast path off so the handler table stays stable (the gate
    # rebinding mid-run would strip the recording wrappers).
    monkeypatch.setenv(NO_FASTPATH_ENV, "1")
    if runahead:
        monkeypatch.delenv(NO_RUNAHEAD_ENV, raising=False)
    else:
        monkeypatch.setenv(NO_RUNAHEAD_ENV, "1")
    machine = Machine(small_config(num_cores=8, seed=seed,
                                   commtm_enabled=commtm))
    built = build(machine, 4)
    engine, trace = _traced_engine(machine, built.bodies)
    engine.run()
    return trace, machine.stats


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("commtm", [True, False],
                         ids=["commtm", "baseline"])
def test_random_mix_interleaving_identical(commtm, seed, monkeypatch):
    ahead, stats_a = _interleaving(_random_mix, commtm=commtm, seed=seed,
                                   runahead=True, monkeypatch=monkeypatch)
    stepped, stats_s = _interleaving(_random_mix, commtm=commtm, seed=seed,
                                     runahead=False, monkeypatch=monkeypatch)
    assert len(ahead) == len(stepped)
    assert ahead == stepped
    assert stats_a.parallel_cycles == stats_s.parallel_cycles
    assert stats_a.comparable() == stats_s.comparable()


@pytest.mark.parametrize("name", ["counter", "refcount"])
def test_micro_interleaving_identical(name, monkeypatch):
    def build(machine, num_threads):
        return MICROS[name](machine, num_threads, total_ops=120)

    ahead, stats_a = _interleaving(build, commtm=True, seed=1,
                                   runahead=True, monkeypatch=monkeypatch)
    stepped, stats_s = _interleaving(build, commtm=True, seed=1,
                                     runahead=False, monkeypatch=monkeypatch)
    assert ahead == stepped
    assert stats_a.comparable() == stats_s.comparable()
