"""Property tests for the line-level (descriptor) handlers: linked-list
merge/split and top-K merge, run against a host-side memory model."""

from hypothesis import given, strategies as st

from repro.core.labels import HandlerContext
from repro.datatypes.linked_list import (
    EMPTY,
    _merge_descriptors,
    _split_descriptor,
)
from repro.datatypes.topk import _merge_topk, topk_label
from repro.mem.memory import MainMemory


class HostCtx(HandlerContext):
    """Handler context over a plain MainMemory (host-side)."""

    def __init__(self, memory: MainMemory):
        super().__init__(memory.read_word, memory.write_word)


def build_chain(memory: MainMemory, values, base: int):
    """Materialize a chain in memory; returns its descriptor."""
    if not values:
        return EMPTY
    nodes = [base + 16 * i for i in range(len(values))]
    for node, value in zip(nodes, values):
        memory.write_word(node, value)
        memory.write_word(node + 8, 0)
    for a, b in zip(nodes, nodes[1:]):
        memory.write_word(a + 8, b)
    return (nodes[0], nodes[-1])


def walk(memory: MainMemory, desc):
    out = []
    if desc == EMPTY:
        return out
    node, _tail = desc
    while node != 0:
        out.append(memory.read_word(node))
        node = memory.read_word(node + 8)
        assert len(out) < 10_000, "cycle in list"
    return out


class TestListMerge:
    @given(st.lists(st.integers(), max_size=8),
           st.lists(st.integers(), max_size=8))
    def test_merge_concatenates(self, a_vals, b_vals):
        memory = MainMemory()
        ctx = HostCtx(memory)
        a = build_chain(memory, a_vals, 0x1000)
        b = build_chain(memory, b_vals, 0x8000)
        merged = _merge_descriptors(ctx, a, b)
        assert walk(memory, merged) == a_vals + b_vals

    @given(st.lists(st.integers(), min_size=1, max_size=8))
    def test_merge_with_empty_is_identity(self, vals):
        memory = MainMemory()
        ctx = HostCtx(memory)
        desc = build_chain(memory, vals, 0x1000)
        assert _merge_descriptors(ctx, desc, EMPTY) == desc
        assert _merge_descriptors(ctx, EMPTY, desc) == desc

    @given(st.lists(st.lists(st.integers(), max_size=4), min_size=2,
                    max_size=5))
    def test_merge_associative_on_contents(self, groups):
        def merged_contents(order):
            memory = MainMemory()
            ctx = HostCtx(memory)
            descs = [build_chain(memory, g, 0x1000 * (i + 1) * 16)
                     for i, g in enumerate(groups)]
            acc = EMPTY
            for i in order:
                acc = _merge_descriptors(ctx, acc, descs[i])
            return walk(memory, acc)

        # Left-fold in index order equals the concatenation.
        flat = [v for g in groups for v in g]
        assert merged_contents(range(len(groups))) == flat


class TestListSplit:
    @given(st.lists(st.integers(), max_size=6))
    def test_split_donates_head(self, vals):
        memory = MainMemory()
        ctx = HostCtx(memory)
        desc = build_chain(memory, vals, 0x1000)
        kept, donated = _split_descriptor(ctx, desc)
        if not vals:
            assert kept == EMPTY and donated == EMPTY
        else:
            assert walk(memory, donated) == [vals[0]]
            assert walk(memory, kept) == vals[1:]

    @given(st.lists(st.integers(), min_size=1, max_size=6))
    def test_split_then_merge_restores_elements(self, vals):
        memory = MainMemory()
        ctx = HostCtx(memory)
        desc = build_chain(memory, vals, 0x1000)
        kept, donated = _split_descriptor(ctx, desc)
        merged = _merge_descriptors(ctx, donated, kept)
        assert walk(memory, merged) == vals  # head re-attached in front


class TestTopKMerge:
    @given(st.lists(st.integers(), max_size=20),
           st.lists(st.integers(), max_size=20),
           st.integers(1, 10))
    def test_merge_keeps_k_largest(self, a, b, k):
        out = _merge_topk(tuple(sorted(a)), tuple(sorted(b)), k)
        assert list(out) == sorted(a + b)[-k:]

    @given(st.lists(st.lists(st.integers(), max_size=6), min_size=1,
                    max_size=6),
           st.integers(1, 8))
    def test_merge_order_independent(self, groups, k):
        import functools
        heaps = [tuple(sorted(g)) for g in groups]
        fwd = functools.reduce(lambda x, y: _merge_topk(x, y, k), heaps)
        bwd = functools.reduce(lambda x, y: _merge_topk(x, y, k),
                               reversed(heaps))
        assert fwd == bwd

    @given(st.lists(st.integers(), max_size=12), st.integers(1, 6))
    def test_label_reduce_line(self, vals, k):
        label = topk_label(k, name=f"TOPK{k}")
        dst = [tuple(sorted(vals))] + [0] * 7
        src = label.identity_line()
        ctx = HostCtx(MainMemory())
        out = label.reduce(ctx, dst, src)
        assert out[0] == tuple(sorted(vals)[-k:])
