"""Confidence-interval helpers (the paper's Sec. V run protocol)."""

import pytest

from repro.harness.confidence import (
    confidence_interval,
    run_until_confident,
    t_quantile_975,
)


class TestCi:
    def test_identical_samples_zero_width(self):
        ci = confidence_interval([5.0, 5.0, 5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.relative == 0.0

    def test_known_value(self):
        # mean 2, sample std 1, n=4 -> half = 3.182 * 0.5
        ci = confidence_interval([1.0, 2.0, 2.0, 3.0])
        assert ci.mean == 2.0
        assert ci.half_width == pytest.approx(3.182 * (2 / 3) ** 0.5 / 2,
                                              rel=1e-3)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_t_quantiles_decrease(self):
        qs = [t_quantile_975(df) for df in range(1, 40)]
        assert all(a >= b for a, b in zip(qs, qs[1:]))
        assert qs[-1] == 1.96

    def test_str_format(self):
        text = str(confidence_interval([10.0, 12.0, 11.0]))
        assert "±" in text and "n=3" in text


class TestRunUntilConfident:
    def test_stops_early_on_tight_data(self):
        calls = []

        def measure(seed):
            calls.append(seed)
            return 100.0 + 0.01 * seed

        ci = run_until_confident(measure, target_relative=0.01)
        assert len(calls) == 3  # min_runs, already confident

    def test_runs_to_cap_on_noisy_data(self):
        import random
        rng = random.Random(1)

        def measure(seed):
            return rng.uniform(0, 1000)

        ci = run_until_confident(measure, target_relative=0.001,
                                 max_runs=5)
        assert len(ci.samples) == 5

    def test_on_real_simulation(self):
        from repro.harness import run_workload
        from repro.workloads.micro import counter

        def measure(seed):
            return run_workload(counter.build, 4, num_cores=16,
                                total_ops=200, seed=seed).cycles

        ci = run_until_confident(measure, target_relative=0.10,
                                 min_runs=3, max_runs=6)
        assert ci.mean > 0
        assert ci.relative <= 0.10 or len(ci.samples) == 6
