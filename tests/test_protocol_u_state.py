"""The U state: GETU cases 1-5 (Sec. III-B3), reductions, gathers,
evictions — exercised directly through the MemorySystem (non-speculative
requesters, so no conflicts arise)."""

import pytest

from repro import Machine
from repro.coherence.messages import Requester
from repro.coherence.states import State
from repro.core.labels import add_label, min_label
from repro.errors import ReductionError
from repro.params import small_config


def make(**kw):
    machine = Machine(small_config(num_cores=4, **kw))
    add = machine.register_label(add_label())
    return machine, machine.msys, add


def req(core):
    return Requester(core=core, ts=None, now=0)


ADDR = 0x1000


class TestGetuCases:
    def test_case1_first_requester_gets_data(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 24)
        res = msys.labeled_load(0, ADDR, add, req(0))
        assert res.value == 24
        assert msys.state_of(0, ADDR) is State.U

    def test_case2_s_sharers_invalidated(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 24)
        msys.load(0, ADDR, req(0))
        msys.load(1, ADDR, req(1))
        res = msys.labeled_load(2, ADDR, add, req(2))
        assert res.value == 24  # data served (first U holder)
        assert msys.state_of(0, ADDR) is State.I
        assert msys.state_of(1, ADDR) is State.I
        assert msys.state_of(2, ADDR) is State.U

    def test_case3_different_label_reduces(self):
        machine, msys, add = make()
        mi = machine.register_label(min_label())
        machine.seed_word(ADDR, 10)
        msys.labeled_store(0, ADDR, add, 11, req(0))
        msys.labeled_load(1, ADDR, add, req(1))
        msys.labeled_store(1, ADDR, add, 5, req(1))
        # MIN-labeled access: reduce the ADD partials (11 + 5), re-enter U
        # with the MIN label holding the full value.
        res = msys.labeled_load(2, ADDR, mi, req(2))
        assert res.value == 16
        assert msys.state_of(2, ADDR) is State.U
        assert msys.caches[2].lookup(ADDR // 64).label is mi
        assert msys.state_of(0, ADDR) is State.I
        assert msys.state_of(1, ADDR) is State.I

    def test_case4_same_label_identity_init(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 24)
        msys.labeled_load(0, ADDR, add, req(0))
        res = msys.labeled_load(1, ADDR, add, req(1))
        assert res.value == 0  # identity, not the data
        assert msys.state_of(0, ADDR) is State.U
        assert msys.state_of(1, ADDR) is State.U

    def test_case4_no_invalidation_traffic(self):
        machine, msys, add = make()
        msys.labeled_load(0, ADDR, add, req(0))
        inv_before = machine.stats.invalidations
        msys.labeled_load(1, ADDR, add, req(1))
        assert machine.stats.invalidations == inv_before

    def test_case5_owner_downgraded_keeps_data(self):
        machine, msys, add = make()
        msys.store(0, ADDR, 24, req(0))
        res = msys.labeled_load(1, ADDR, add, req(1))
        assert res.value == 0  # identity at the requester (Fig. 4b)
        assert msys.state_of(0, ADDR) is State.U
        assert msys.state_of(1, ADDR) is State.U
        assert msys.caches[0].lookup(ADDR // 64).words[0] == 24

    def test_getu_counted(self):
        machine, msys, add = make()
        msys.labeled_load(0, ADDR, add, req(0))
        msys.labeled_load(1, ADDR, add, req(1))
        assert machine.stats.getu == 2

    def test_labeled_hit_in_m_stays_m(self):
        machine, msys, add = make()
        msys.store(0, ADDR, 10, req(0))
        res = msys.labeled_load(0, ADDR, add, req(0))
        assert res.value == 10
        assert msys.state_of(0, ADDR) is State.M


class TestReductionInvariant:
    def test_concurrent_adds_reduce_to_sum(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 100)
        for core in range(4):
            v = msys.labeled_load(core, ADDR, add, req(core)).value
            msys.labeled_store(core, ADDR, add, v + core + 1, req(core))
        # peek computes the reduced value without protocol actions.
        assert msys.peek_word(ADDR) == 100 + 1 + 2 + 3 + 4
        # A conventional load triggers the real reduction.
        res = msys.load(3, ADDR, req(3))
        assert res.value == 110
        assert msys.state_of(3, ADDR) is State.M
        for core in range(3):
            assert msys.state_of(core, ADDR) is State.I
        assert machine.stats.reductions == 1

    def test_reduction_on_store(self):
        machine, msys, add = make()
        msys.labeled_store(0, ADDR, add, 5, req(0))
        msys.labeled_load(1, ADDR, add, req(1))
        msys.labeled_store(1, ADDR, add, 3, req(1))
        msys.store(2, ADDR, 999, req(2))
        assert msys.peek_word(ADDR) == 999  # store overwrote merged value
        assert msys.state_of(2, ADDR) is State.M

    def test_sole_sharer_upgrade_without_reduction(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 7)
        msys.labeled_store(0, ADDR, add, 8, req(0))
        reductions_before = machine.stats.reductions
        res = msys.load(0, ADDR, req(0))
        assert res.value == 8
        assert machine.stats.reductions == reductions_before
        assert msys.state_of(0, ADDR) is State.M

    def test_unlabeled_read_by_u_holder_with_other_sharers(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 10)
        msys.labeled_store(0, ADDR, add, 11, req(0))  # has data: 11
        msys.labeled_load(1, ADDR, add, req(1))
        msys.labeled_store(1, ADDR, add, 4, req(1))   # identity + 4
        res = msys.load(0, ADDR, req(0))
        assert res.value == 15
        assert msys.state_of(0, ADDR) is State.M
        assert msys.state_of(1, ADDR) is State.I

    def test_identity_padding_preserves_neighbours(self):
        machine, msys, add = make()
        machine.seed_word(ADDR + 8, 55)  # another counter, same line
        msys.labeled_load(0, ADDR, add, req(0))
        msys.labeled_store(0, ADDR, add, 1, req(0))
        msys.labeled_load(1, ADDR + 8, add, req(1))
        msys.labeled_store(1, ADDR + 8, add, 100, req(1))
        assert msys.load(2, ADDR, req(2)).value == 1
        assert msys.load(2, ADDR + 8, req(2)).value == 155


class TestGather:
    def test_gather_redistributes(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 16)
        msys.labeled_load(0, ADDR, add, req(0))   # core 0 holds 16
        msys.labeled_load(1, ADDR, add, req(1))   # identity
        res = msys.load_gather(1, ADDR, add, req(1))
        # Splitter donates ceil(16/2) = 8.
        assert res.value == 8
        assert msys.caches[0].lookup(ADDR // 64).words[0] == 8
        assert msys.state_of(0, ADDR) is State.U
        assert msys.state_of(1, ADDR) is State.U
        assert machine.stats.gathers == 1
        assert machine.stats.splits == 1

    def test_gather_conserves_total(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 21)
        for core in range(4):
            msys.labeled_load(core, ADDR, add, req(core))
        msys.load_gather(3, ADDR, add, req(3))
        assert msys.peek_word(ADDR) == 21

    def test_gather_without_other_sharers(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 5)
        msys.labeled_load(0, ADDR, add, req(0))
        res = msys.load_gather(0, ADDR, add, req(0))
        assert res.value == 5
        assert machine.stats.gathers == 0  # nothing to gather

    def test_gather_acquires_u_first(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 12)
        res = msys.load_gather(0, ADDR, add, req(0))
        assert res.value == 12
        assert msys.state_of(0, ADDR) is State.U

    def test_gather_disabled_config(self):
        machine, msys, add = make(gather_enabled=False)
        machine.seed_word(ADDR, 16)
        msys.labeled_load(0, ADDR, add, req(0))
        msys.labeled_load(1, ADDR, add, req(1))
        res = msys.load_gather(1, ADDR, add, req(1))
        assert res.value == 0  # plain labeled load of the local partial
        assert machine.stats.gathers == 0

    def test_gather_does_not_occupy_line_for_merge(self):
        machine, msys, add = make()
        machine.seed_word(ADDR, 100)
        for core in range(3):
            msys.labeled_load(core, ADDR, add, req(core))
        busy_before = dict(msys._line_busy)
        res = msys.load_gather(2, ADDR, add, Requester(2, None, now=1000))
        busy = msys._line_busy[ADDR // 64]
        # The line is released before the full op latency elapses.
        assert busy - 1000 < res.cycles


class TestHandlerRestrictions:
    def test_handler_cannot_touch_u_lines(self):
        machine, msys, add = make()
        ctx = msys.handler_context(0, __import__(
            "repro.coherence.messages", fromlist=["AccessResult"]
        ).AccessResult())
        msys.labeled_load(1, 0x2000, add, req(1))
        with pytest.raises(ReductionError):
            ctx.read(0x2000)
        with pytest.raises(ReductionError):
            ctx.write(0x2000, 1)

    def test_handler_plain_access_ok(self):
        machine, msys, add = make()
        from repro.coherence.messages import AccessResult
        res = AccessResult()
        ctx = msys.handler_context(0, res)
        ctx.write(0x3000, 9)
        assert ctx.read(0x3000) == 9
        assert res.cycles > 0  # charged to the blocked request
        assert machine.stats.shadow_thread_cycles > 0
