"""Experiment harness: runner plumbing and speedup-curve protocol."""

import pytest

from repro.harness import run_workload, speedup_curve
from repro.harness.runner import collect_points
from repro.params import small_config
from repro.workloads.micro import counter


def test_run_workload_returns_result():
    r = run_workload(counter.build, 2, num_cores=16, total_ops=40)
    assert r.name == "counter"
    assert r.num_threads == 2
    assert r.commtm
    assert r.cycles > 0


def test_commtm_flag_propagates():
    r = run_workload(counter.build, 2, num_cores=16, commtm=False,
                     total_ops=40)
    assert not r.commtm
    assert r.stats.getu == 0


def test_base_config_respected():
    cfg = small_config(num_cores=16, backoff_base=1)
    r = run_workload(counter.build, 2, base_config=cfg, total_ops=40)
    assert r.cycles > 0


def test_speedup_curve_default_systems():
    curves = speedup_curve(counter.build, [1, 4], num_cores=16,
                           total_ops=200)
    assert set(curves) == {"CommTM", "Baseline"}
    assert set(curves["CommTM"]) == {1, 4}
    # 1-thread points sit near 1.0 (CommTM == baseline with no sharing).
    assert curves["Baseline"][1] == pytest.approx(1.0, abs=0.05)
    assert curves["CommTM"][1] == pytest.approx(1.0, rel=0.15)


def test_speedup_curve_shape_counter():
    curves = speedup_curve(counter.build, [1, 8], num_cores=16,
                           total_ops=800)
    assert curves["CommTM"][8] > 4          # near-linear
    assert curves["Baseline"][8] < 1.5      # serialized


def test_speedup_curve_custom_systems():
    curves = speedup_curve(
        counter.build, [2], num_cores=16, total_ops=100,
        systems={"only": {"commtm": True}},
    )
    assert list(curves) == ["only"]


def test_collect_points():
    points = collect_points(counter.build, [1, 2], num_cores=16,
                            total_ops=60)
    assert [p.num_threads for p in points] == [1, 2]
    assert all(p.stats.commits == 60 for p in points)


def test_verification_can_be_disabled():
    # verify=False must not call the checker (same run, no assertion risk).
    r = run_workload(counter.build, 2, num_cores=16, total_ops=20,
                     verify=False)
    assert r.cycles > 0


def test_seed_changes_timing_slightly():
    results = [
        run_workload(counter.build, 4, num_cores=16, total_ops=100,
                     seed=seed, commtm=False)
        for seed in range(4)
    ]
    assert all(r.stats.commits == 100 for r in results)
    # Jitter injects non-determinism across seeds (Sec. V): at least one
    # seed must produce a different timing.
    assert len({r.cycles for r in results}) > 1
