"""Tests for the analysis subsystem: laws, lint, sanitizer, CLI.

The positive direction (built-in datatypes and workloads come out clean)
and the negative direction (injected faults are detected, with enough
context to locate them) are both covered — a checker that never fires is
indistinguishable from one that works.
"""

import pytest

from repro.analysis import (ERROR, WARNING, check_laws, check_paths,
                            check_registry, check_source)
from repro.analysis.lint import check_lowerings
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.laws import check_suite
from repro.analysis.sanitizer import SANITIZE_ENV, sanitize_enabled
from repro.coherence.states import State
from repro.core.labels import LabelRegistry, add_label, min_label, \
    wordwise_label
from repro.core.machine import Machine
from repro.datatypes import SharedCounter
from repro.datatypes.contracts import LawSuite, builtin_suites, wordwise_gen
from repro.errors import SanitizerError
from repro.params import SystemConfig
from repro.runtime.ops import Atomic


# ---------------------------------------------------------------------------
# Law checker
# ---------------------------------------------------------------------------

class TestLawChecker:
    def test_builtin_suites_cover_every_datatype(self):
        names = {s.name.split("/")[0] for s in builtin_suites()}
        assert names == {"counter", "bounded_counter", "histogram",
                         "hash_table", "minmax", "ordered_put", "topk",
                         "linked_list", "bloom_filter"}

    def test_builtin_labels_satisfy_all_laws(self):
        assert check_laws(trials=48, seed=0) == []

    def test_deterministic_across_runs(self):
        # Same seed, same verdicts — counterexamples are reproducible.
        assert check_laws(trials=8, seed=3) == check_laws(trials=8, seed=3)

    def test_noncommutative_reducer_detected(self):
        suite = LawSuite(
            name="fault/SUB",
            make_label=lambda: wordwise_label("SUB", 0,
                                             reduce_word=lambda a, b: a - b),
            gen=wordwise_gen(lambda rng: rng.randint(1, 9)))
        checks = {f.check for f in check_suite(suite)}
        assert "commutativity" in checks

    def test_lossy_splitter_detected(self):
        # Keeps v//2 and donates v//2: loses one unit for every odd word.
        suite = LawSuite(
            name="fault/LOSSY",
            make_label=lambda: wordwise_label(
                "LOSSY", 0, reduce_word=lambda a, b: a + b,
                split_word=lambda v, n: (v // 2, v // 2)),
            gen=wordwise_gen(lambda rng: rng.randint(1, 99)))
        findings = check_suite(suite)
        assert any(f.check == "splitter" for f in findings)
        # The finding names the suite and points into this test file.
        bad = next(f for f in findings if f.check == "splitter")
        assert bad.label == "fault/LOSSY"
        assert bad.file and bad.file.endswith("test_analysis.py")
        assert bad.line and bad.line > 0

    def test_wrong_identity_detected(self):
        suite = LawSuite(
            name="fault/WID",
            make_label=lambda: wordwise_label("WID", 1,
                                             reduce_word=lambda a, b: a + b),
            gen=wordwise_gen(lambda rng: rng.randint(1, 9)))
        checks = {f.check for f in check_suite(suite)}
        assert "identity" in checks
        # identity_line() of identity 1 also fails the structural check
        # unless reduce treats 1 as absorbing — it does not.
        assert checks <= {"identity", "identity-detection"}

    def test_crashing_handler_reported_not_raised(self):
        def boom(a, b):
            raise ValueError("no")

        suite = LawSuite(
            name="fault/BOOM",
            make_label=lambda: wordwise_label("BOOM", 0, reduce_word=boom),
            gen=wordwise_gen(lambda rng: 1))
        findings = check_suite(suite)
        assert any(f.check == "handler-crash" for f in findings)


# ---------------------------------------------------------------------------
# Lint
# ---------------------------------------------------------------------------

LINT_HEADER = """
from repro.core.labels import add_label, min_label
from repro.runtime.ops import (Load, Store, LabeledLoad, LabeledStore,
                               LoadGather)
"""


class TestLint:
    def _checks(self, body):
        return [(f.check, f.severity)
                for f in check_source(LINT_HEADER + body, "snippet.py")]

    def test_mixed_store_is_error(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    yield Store(obj.addr, v + 1)
""")
        assert ("mixed-store", ERROR) in checks

    def test_load_after_labeled_is_allowed(self):
        # The paper's reduction fallback (bounded counter at zero).
        checks = self._checks("""
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    if v == 0:
        v = yield Load(obj.addr)
    yield LabeledStore(obj.addr, obj.label, v - 1)
""")
        assert checks == []

    def test_load_before_labeled_is_warning(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield Load(obj.addr)
    yield LabeledStore(obj.addr, obj.label, v)
""")
        assert ("mixed-load-before", WARNING) in checks

    def test_two_labels_same_address_is_error(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label_a)
    yield LabeledStore(obj.addr, obj.label_b, v)
""")
        assert ("label-conflict", ERROR) in checks

    def test_gather_without_splitter_local_var(self):
        checks = self._checks("""
def txn(ctx, obj):
    m = min_label()
    v = yield LoadGather(obj.addr, m)
""")
        assert ("gather-without-splitter", ERROR) in checks

    def test_gather_without_splitter_self_attr(self):
        checks = self._checks("""
class Holder:
    def __init__(self, machine):
        self.label = machine.register_label(min_label())

    def txn(self, ctx):
        v = yield LoadGather(self.addr, self.label)
""")
        assert ("gather-without-splitter", ERROR) in checks

    def test_gather_with_splitter_is_clean(self):
        checks = self._checks("""
class Holder:
    def __init__(self, machine):
        self.label = machine.register_label(add_label())

    def txn(self, ctx):
        v = yield LoadGather(self.addr, self.label)
""")
        assert checks == []

    def test_unregistered_label_is_error(self):
        checks = self._checks("""
lbl = add_label()

def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, lbl)
""")
        assert ("label-unregistered", ERROR) in checks

    def test_registered_label_is_clean(self):
        checks = self._checks("""
def setup(machine):
    lbl = add_label()
    machine.register_label(lbl)
    return lbl
""")
        assert checks == []

    def test_suppression_comment(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    yield Store(obj.addr, 7)  # commtm: allow-mixed
""")
        assert checks == []

    def test_different_functions_do_not_mix(self):
        # bloom_filter pattern: labeled insert, unlabeled membership test.
        checks = self._checks("""
def insert(ctx, obj):
    yield LabeledStore(obj.addr, obj.label, 1)

def contains(ctx, obj):
    v = yield Load(obj.addr)
""")
        assert checks == []

    def test_mixed_store_in_shuttle_form(self):
        # ctx.<method> shuttle calls map onto the same op kinds.
        checks = self._checks("""
def txn(ctx, obj):
    v = yield ctx.labeled_load(obj.addr, obj.label)
    yield ctx.store(obj.addr, v + 1)
""")
        assert ("mixed-store", ERROR) in checks

    def test_load_before_labeled_in_shuttle_form(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield ctx.load(obj.addr)
    yield ctx.labeled_store(obj.addr, obj.label, v)
""")
        assert ("mixed-load-before", WARNING) in checks

    def test_shuttle_and_constructor_forms_mix(self):
        # The two spellings of the same address must still collide.
        checks = self._checks("""
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    yield ctx.store(obj.addr, v + 1)
""")
        assert ("mixed-store", ERROR) in checks

    def test_shuttle_held_is_error(self):
        checks = self._checks("""
def txn(ctx, obj):
    op = ctx.load(obj.addr)
    v = yield op
""")
        assert ("shuttle-held", ERROR) in checks

    def test_shuttle_work_held_is_error(self):
        checks = self._checks("""
def txn(ctx):
    ops = [ctx.work(10)]
    for op in ops:
        yield op
""")
        assert ("shuttle-held", ERROR) in checks

    def test_shuttle_yielded_directly_is_clean(self):
        checks = self._checks("""
def txn(ctx, obj):
    v = yield ctx.labeled_load(obj.addr, obj.label)
    yield ctx.labeled_store(obj.addr, obj.label, v + 1)
    yield ctx.work(5)
""")
        assert checks == []

    def test_builtin_datatypes_and_workloads_are_clean(self):
        import repro

        root = __import__("pathlib").Path(repro.__file__).parent
        findings = check_paths([root / "datatypes", root / "workloads"])
        assert findings == []

    def test_registry_aliasing_flagged(self):
        registry = LabelRegistry(num_hw_labels=1, virtualize=True)
        registry.register(add_label())
        registry.register(min_label())
        findings = check_registry(registry)
        assert len(findings) == 1
        assert findings[0].check == "label-aliasing"
        assert findings[0].severity == WARNING
        assert "ADD" in findings[0].message and "MIN" in findings[0].message

    def test_registry_without_aliasing_clean(self):
        registry = LabelRegistry(num_hw_labels=8)
        registry.register(add_label())
        registry.register(min_label())
        assert check_registry(registry) == []


# ---------------------------------------------------------------------------
# Sanitizer
# ---------------------------------------------------------------------------

def _counter_machine(sanitize):
    machine = Machine(SystemConfig(num_cores=16, commtm_enabled=True),
                      sanitize=sanitize)
    counter = SharedCounter(machine)

    def body(ctx):
        for _ in range(10):
            yield Atomic(counter.add, 1)

    result = machine.run_spmd(body, 8)
    machine.flush_reducible()
    return machine, counter, result


class TestSanitizer:
    def test_env_parsing(self, monkeypatch):
        for on in ("1", "true", "YES", " 1 "):
            monkeypatch.setenv(SANITIZE_ENV, on)
            assert sanitize_enabled()
        for off in ("", "0", "false", "no"):
            monkeypatch.setenv(SANITIZE_ENV, off)
            assert not sanitize_enabled()
        monkeypatch.delenv(SANITIZE_ENV)
        assert not sanitize_enabled()
        assert sanitize_enabled(default=True)

    def test_off_by_default_installs_nothing(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        machine = Machine(SystemConfig(num_cores=16, commtm_enabled=True))
        assert machine.sanitizer is None
        assert machine.msys.sanitizer is None

    def test_clean_run_checks_and_passes(self):
        machine, counter, _ = _counter_machine(sanitize=True)
        assert machine.read_word(counter.addr) == 80
        assert machine.sanitizer.checks_run > 0
        assert machine.sanitizer.violations == 0
        assert machine.sanitizer.report() == []

    def test_does_not_change_results(self):
        plain_machine, plain_counter, plain = _counter_machine(
            sanitize=False)
        checked_machine, checked_counter, checked = _counter_machine(
            sanitize=True)
        assert plain_machine.read_word(plain_counter.addr) \
            == checked_machine.read_word(checked_counter.addr)
        assert plain.stats.comparable() == checked.stats.comparable()

    def test_stale_owner_trips(self):
        machine, _, _ = _counter_machine(sanitize=True)
        ent = next(iter(machine.msys.directory._entries.values()))
        ent.owner, ent.sharers, ent.u_sharers = 5, set(), set()
        with pytest.raises(SanitizerError, match="directory"):
            machine.sanitizer.check()
        assert machine.sanitizer.violations == 1
        assert machine.sanitizer.report() != []

    def test_multiple_owners_trip(self):
        machine, counter, _ = _counter_machine(sanitize=True)
        # Forge a second M copy of a line some cache legitimately holds.
        src_cache = next(c for c in machine.msys.caches if c._lines)
        line_no, line = next(iter(src_cache._lines.items()))
        line.state = State.M
        other = machine.msys.caches[(src_cache.core + 1)
                                    % len(machine.msys.caches)]
        import copy

        forged = copy.copy(line)
        other._lines[line_no] = forged
        with pytest.raises(SanitizerError):
            machine.sanitizer.check()

    def test_u_label_disagreement_trips(self):
        machine, counter, _ = _counter_machine(sanitize=True)
        machine2 = Machine(SystemConfig(num_cores=16, commtm_enabled=True),
                           sanitize=True)
        counter2 = SharedCounter(machine2)

        def body(ctx):
            for _ in range(5):
                yield Atomic(counter2.add, 1)

        machine2.run_spmd(body, 4)  # leave U lines resident (no flush)
        u_lines = [(c, no, cl) for c in machine2.msys.caches
                   for no, cl in c._lines.items() if cl.state is State.U]
        assert u_lines, "expected resident U lines before flush"
        _, _, cl = u_lines[0]
        cl.label = min_label()  # label swap the directory knows nothing of
        with pytest.raises(SanitizerError, match="label"):
            machine2.sanitizer.check()

    def test_direct_memory_system_ops_checkpoint(self):
        # Hooks live in MemorySystem's public ops too, not just the engine.
        machine, _, _ = _counter_machine(sanitize=True)
        before = machine.sanitizer.checks_run
        from repro.coherence.protocol import Requester

        machine.msys.load(0, 0x9000, Requester(core=0, ts=None, now=0))
        assert machine.sanitizer.checks_run == before + 1


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_clean_on_builtins(self, capsys):
        assert analysis_main(["--trials", "16"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_bad_user_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "workload.py"
        bad.write_text(LINT_HEADER + """
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    yield Store(obj.addr, v)
""")
        assert analysis_main(["--skip-laws", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "mixed-store" in out
        assert str(bad) in out

    def test_json_output_clean(self, capsys):
        import json

        assert analysis_main(["--trials", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-analysis/1"
        assert payload["errors"] == 0
        assert payload["findings"] == []

    def test_json_output_carries_findings(self, tmp_path, capsys):
        import json

        bad = tmp_path / "workload.py"
        bad.write_text(LINT_HEADER + """
def txn(ctx, obj):
    v = yield LabeledLoad(obj.addr, obj.label)
    yield Store(obj.addr, v)
""")
        assert analysis_main(["--skip-laws", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] >= 1
        checks = {f["check"] for f in payload["findings"]}
        assert "mixed-store" in checks
        # Every finding locates its evidence for mechanical consumers.
        flagged = [f for f in payload["findings"]
                   if f["check"] == "mixed-store"]
        assert flagged[0]["file"] == str(bad)
        assert flagged[0]["line"] is not None
        assert flagged[0]["pass"] == "lint"

    def test_internal_error_exits_2(self, monkeypatch, capsys):
        from repro.analysis import __main__ as cli

        def boom(**kwargs):
            raise RuntimeError("law checker exploded")

        monkeypatch.setattr(cli, "check_laws", boom)
        assert analysis_main(["--trials", "8"]) == 2
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "law checker exploded" in err

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            analysis_main(["--trials", "not-a-number"])
        assert exc.value.code == 2


# ---------------------------------------------------------------------------
# Missing-lowering lint
# ---------------------------------------------------------------------------

def _wordwise_suite(name, tag=None, interpreted_only=False):
    def make():
        label = wordwise_label(name, 0, reduce_word=lambda a, b: a + b)
        if tag is not None:
            label.vector_reduce = tag
        if interpreted_only:
            label.interpreted_only = True
        return label

    return LawSuite(name=f"fault/{name}", make_label=make,
                    gen=wordwise_gen(lambda rng: rng.randint(1, 9)))


class TestLoweringLint:
    def test_builtin_labels_all_lowered_or_declared(self):
        # Every built-in word-wise label either has a supported
        # vector_reduce tag or an explicit interpreted_only opt-out.
        assert check_lowerings() == []

    def test_untagged_wordwise_label_is_error(self):
        findings = check_lowerings([_wordwise_suite("NOTAG")])
        assert len(findings) == 1
        f = findings[0]
        assert (f.check, f.severity, f.label) \
            == ("missing-lowering", ERROR, "NOTAG")
        assert "sequential fold" in f.message

    def test_unknown_tag_is_error(self):
        findings = check_lowerings([_wordwise_suite("XORISH", tag="xor")])
        assert len(findings) == 1
        assert findings[0].check == "missing-lowering"
        assert "'xor'" in findings[0].message

    def test_interpreted_only_optout_is_clean(self):
        assert check_lowerings(
            [_wordwise_suite("SLOW", interpreted_only=True)]) == []

    def test_supported_tag_is_clean(self):
        assert check_lowerings([_wordwise_suite("OK", tag="add")]) == []

    def test_line_level_labels_skipped(self):
        # Line-level reducers move real memory through a HandlerContext;
        # they are interpreted by design and never flagged.
        from types import SimpleNamespace

        line_label = SimpleNamespace(name="LINEY", _reduce_word=None)
        suite = SimpleNamespace(name="fault/LINEY",
                                make_label=lambda: line_label)
        assert check_lowerings([suite]) == []

    def test_shared_factory_reported_once(self):
        suites = [_wordwise_suite("NOTAG"), _wordwise_suite("NOTAG")]
        assert len(check_lowerings(suites)) == 1

    def test_cli_reports_missing_lowering(self, monkeypatch, capsys):
        # The default CLI run includes the lowering check; make a
        # built-in label lose its tag and the gate must trip.
        from repro.datatypes import bloom_filter

        orig = bloom_filter.or_label

        def untagged(*args, **kwargs):
            label = orig(*args, **kwargs)
            label.vector_reduce = None
            return label

        monkeypatch.setattr(bloom_filter, "or_label", untagged)
        assert analysis_main(["--skip-laws"]) == 1
        assert "missing-lowering" in capsys.readouterr().out
