"""Seeded property-based verification of the label algebra.

CommTM assumes, and never checks, that every label satisfies an algebraic
contract (Secs. III-A, III-B4, IV):

* **commutativity** — ``reduce(a, b) == reduce(b, a)``: partial lines may
  merge in any order (sharer order is timing-dependent);
* **associativity** — ``reduce(reduce(a, b), c) == reduce(a, reduce(b, c))``:
  reductions and U-evictions merge in arbitrary groupings;
* **identity** — ``reduce(x, identity) == x`` both ways: lines entering U
  without data initialize to the identity (GETU cases 4-5), and identity
  padding must be harmless in whole-line reductions;
* **identity detection** — ``is_identity_line(identity_line())`` is true
  (the protocol drops empty gather donations through it);
* **splitter soundness** — ``reduce(kept, donated)`` reconstructs the
  original line for every sharer count (gathers must conserve state).

A violated law never crashes the simulator — it silently corrupts
results, exactly the failure mode Koskinen & Bansal's commutativity-
verification line of work targets. This pass checks the laws by seeded
random sampling over value generators contributed by each datatype
(:func:`repro.datatypes.builtin_suites`); equality is taken through the
suite's observation function, so semantically-commutative descriptors
(linked lists, heaps) are compared by the state they represent rather
than bit-for-bit.

Handlers run against a fresh :class:`~repro.datatypes.StubMemory` per
law side, so line-level handlers that mutate memory (list concatenation)
cannot contaminate the other side of an equation.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.labels import Label
from ..datatypes.contracts import LawSuite, StubMemory
from .findings import ERROR, Finding

#: Sharer counts a splitter is exercised with (1 sharer is the degenerate
#: sole-holder gather; 128 is the Table I machine's core count).
SPLIT_WAYS = (1, 2, 3, 8, 128)

DEFAULT_TRIALS = 64


def _handler_site(label: Label) -> tuple:
    """(file, line) of the label's reduction handler, for finding context."""
    fn = label._reduce_word if label._reduce_word is not None \
        else label._reduce_line
    code = getattr(fn, "__code__", None)
    if code is None:  # e.g. a bound method or C callable
        return None, None
    return code.co_filename, code.co_firstlineno


class _LawRun:
    """One suite's law evaluation: shared RNG, per-side memory clones."""

    def __init__(self, suite: LawSuite, label: Label, seed: int):
        self.suite = suite
        self.label = label
        self.seed = seed
        self.findings: List[Finding] = []
        self._file, self._line = _handler_site(label)

    def fail(self, check: str, message: str) -> None:
        self.findings.append(Finding(
            pass_name="laws", check=check, severity=ERROR,
            label=self.suite.name, message=message,
            file=self._file, line=self._line,
        ))

    # -- helpers -----------------------------------------------------------

    def reduce(self, mem: StubMemory, dst, src):
        return self.label.reduce(mem.context(), list(dst), list(src))

    def observed(self, mem: StubMemory, words):
        return self.suite.observed(mem, words)

    # -- one trial ---------------------------------------------------------

    def run_trial(self, trial: int) -> None:
        rng = random.Random((self.seed, self.suite.name, trial).__repr__())
        mem0 = StubMemory()
        a = self.suite.gen(rng, mem0)
        b = self.suite.gen(rng, mem0)
        c = self.suite.gen(rng, mem0)
        ctx = f"(seed={self.seed}, trial={trial})"

        # Identity, both ways.
        ident = self.label.identity_line()
        mem = mem0.clone()
        if self.observed(mem, self.reduce(mem, a, ident)) \
                != self.observed(mem0.clone(), a):
            self.fail("identity",
                      f"reduce(x, identity) != x {ctx}: x={a!r}")
        mem = mem0.clone()
        if self.observed(mem, self.reduce(mem, ident, a)) \
                != self.observed(mem0.clone(), a):
            self.fail("identity",
                      f"reduce(identity, x) != x {ctx}: x={a!r}")

        # Commutativity.
        mem_ab, mem_ba = mem0.clone(), mem0.clone()
        ab = self.observed(mem_ab, self.reduce(mem_ab, a, b))
        ba = self.observed(mem_ba, self.reduce(mem_ba, b, a))
        if ab != ba:
            self.fail("commutativity",
                      f"reduce(a, b) != reduce(b, a) {ctx}: "
                      f"a={a!r} b={b!r} -> {ab!r} vs {ba!r}")

        # Associativity.
        mem_l, mem_r = mem0.clone(), mem0.clone()
        left = self.observed(
            mem_l, self.reduce(mem_l, self.reduce(mem_l, a, b), c))
        right = self.observed(
            mem_r, self.reduce(mem_r, a, self.reduce(mem_r, b, c)))
        if left != right:
            self.fail("associativity",
                      f"reduce(reduce(a,b),c) != reduce(a,reduce(b,c)) "
                      f"{ctx}: a={a!r} b={b!r} c={c!r}")

        # Splitter soundness: reduce(kept, donated) reconstructs the line.
        if self.label.supports_gather:
            want = self.observed(mem0.clone(), a)
            for ways in SPLIT_WAYS:
                mem = mem0.clone()
                kept, donated = self.label.split(mem.context(), list(a), ways)
                got = self.observed(mem, self.reduce(mem, kept, donated))
                if got != want:
                    self.fail("splitter",
                              f"reduce(kept, donated) != original for "
                              f"{ways}-way split {ctx}: x={a!r} "
                              f"kept={kept!r} donated={donated!r}")
                    break

    def run(self, trials: int) -> List[Finding]:
        # Structural check first: the identity line must self-report as
        # identity, or gathers will forward empty donations forever.
        if not self.label.is_identity_line(self.label.identity_line()):
            self.fail("identity-detection",
                      "is_identity_line(identity_line()) is False")
        for trial in range(trials):
            before = len(self.findings)
            try:
                self.run_trial(trial)
            except Exception as exc:  # handler crashed on generated input
                self.fail("handler-crash",
                          f"handler raised {type(exc).__name__}: {exc} "
                          f"(seed={self.seed}, trial={trial})")
            if len(self.findings) > before:
                break  # one counterexample per suite is enough
        return self.findings


def check_suite(suite: LawSuite, trials: int = DEFAULT_TRIALS,
                seed: int = 0) -> List[Finding]:
    """Check every algebraic law of one suite; returns its findings."""
    label = suite.make_label()
    return _LawRun(suite, label, seed).run(trials)


def check_laws(suites: Optional[Sequence[LawSuite]] = None,
               trials: int = DEFAULT_TRIALS, seed: int = 0) -> List[Finding]:
    """Check all suites (default: every built-in datatype's)."""
    if suites is None:
        from ..datatypes.contracts import builtin_suites
        suites = builtin_suites()
    findings: List[Finding] = []
    for suite in suites:
        findings.extend(check_suite(suite, trials=trials, seed=seed))
    return findings
