"""Exhaustive explicit-state model checking of the MESI+U protocol.

Public surface:

* :func:`~repro.analysis.modelcheck.checker.run_modelcheck` — explore
  every registered label's bounded config and discharge the invariant,
  commutativity, certifier-soundness, and quiescence obligations;
* :func:`~repro.analysis.modelcheck.checker.replay` — re-execute a
  counterexample trace and reproduce its findings;
* ``python -m repro.analysis modelcheck`` — the CLI front end.
"""

from .checker import (DEFAULT_CORES, DEFAULT_DEPTH, DEFAULT_LINES,
                      Explorer, LabelReport, ModelCheckReport,
                      registered_labels, replay, run_modelcheck)

__all__ = [
    "DEFAULT_CORES", "DEFAULT_DEPTH", "DEFAULT_LINES",
    "Explorer", "LabelReport", "ModelCheckReport",
    "registered_labels", "replay", "run_modelcheck",
]
