"""Explicit-state model checker for the MESI+U protocol.

The checker drives the *actual* transition handlers of
:class:`~repro.coherence.protocol.MemorySystem` — not a
re-specification — over a small bounded configuration: 2-3 cores on a
single tile, 1-2 tracked lines, infinite caches (no evictions, so the
rng is never drawn), non-speculative requesters at ``now=0`` (no HTM,
no NACKs, no occupancy stalls).  Within that box exploration is
*exhaustive up to a depth bound*: datatype values grow without bound
(``ADD`` reaches a fresh sum at every depth), so a depth-bounded BFS is
what makes the frontier finite — every coherence *shape* (directory
sharer sets, private states, label bindings, GETU cases 1-5, reductions,
gathers, owner downgrades) is reached within a handful of ops, and the
explored-state count plus the ``exhausted`` flag report exactly what was
covered.

**States and symmetry.**  A state is a full
:meth:`~repro.coherence.protocol.MemorySystem.snapshot_state` capture
(caches + directory + memory; ``_line_busy`` is cleared between ops
because occupancy is latency-only metadata).  Cores on one tile are
interchangeable, so each state is canonicalized to the minimum encoding
over all core permutations (cache vectors reordered, directory
owner/sharer sets relabeled) — the classic symmetry reduction.  Traces
are sequences of ``(core, op)`` against canonical representatives;
:func:`replay` re-executes them deterministically.

**Obligations**, discharged on every reachable canonical state:

1. *Invariants* — the shared suite of
   :func:`~repro.analysis.invariants.check_invariants`, the same
   definition the runtime sanitizer enforces.
2. *Commutativity as reachability* (Koskinen & Bansal's reduction of
   commutativity checking to reachability): for all pairs of labeled
   ops on distinct cores, both orderings must reach the same state
   under the *differencing abstraction* that replaces each line's
   per-core partial values with the globally-reduced value
   (:meth:`~repro.coherence.protocol.MemorySystem.peek_word`).  Raw
   partials are never semantically observed — any read that would
   observe them first triggers a reduction — so equal abstract states
   mean the orderings are indistinguishable to every future observer.
3. *Certifier soundness* — for every access kind on every core and
   line, a non-``None`` prediction from the vector backend's pure
   certifier (:mod:`repro.sim.vector.certify`) must match the real
   handlers: a predicted latency (``>= 0``) must equal the charged
   ``res.cycles`` exactly, and any certified access (``>= -1``) must
   complete without raising or aborting.
4. *Quiescence* — no reachable state deadlocks or strands a partial:
   every op either completes or is a finding (a non-speculative
   requester can never be NACKed, and the bounded config never invokes
   the conflict manager), and from every state a sweep of plain loads
   drains all U lines back to conventional MESI with clean invariants.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...coherence.messages import AccessKind
from ...core.labels import LabelRegistry
from ...errors import (LabelError, ProtocolError, ReductionError,
                       TransactionError)
from ...mem.memory import MainMemory
from ...params import CacheGeometry, LINE_BYTES, NocConfig, SystemConfig
from ...sim.rng import RngStreams
from ...sim.stats import Stats
from ...sim.vector import certify
from ..findings import ERROR, Finding
from ..invariants import check_invariants
from .ops import Op, STORE_VALUES, alphabet, apply_op

#: Exceptions that mean "the protocol wedged itself" rather than "the
#: checker is broken". TransactionError/ProtocolError from the
#: NoTransactions conflict manager = a non-speculative run tried to
#: resolve a conflict, which is itself a quiescence violation.
_PROTOCOL_ERRORS = (ProtocolError, ReductionError, LabelError,
                    TransactionError)

DEFAULT_CORES = 2
DEFAULT_LINES = 1
DEFAULT_DEPTH = 6
DEFAULT_MAX_STATES = 20_000

#: Max findings reported per (obligation, check) pair per label; the
#: rest are counted as suppressed (one corrupted transition tends to
#: trip the same check in thousands of states).
_FINDING_CAP = 3

_CERT_KINDS = (AccessKind.LOAD, AccessKind.STORE, AccessKind.LABELED_LOAD,
               AccessKind.LABELED_STORE, AccessKind.GATHER)


def bounded_config(num_cores: int = DEFAULT_CORES) -> SystemConfig:
    """The model-check box: ``num_cores`` cores on one tile (exact core
    symmetry — every inter-tile latency is identical), one L3 bank,
    infinite caches (``size_bytes=0``: no private or L3 evictions, so
    the eviction rng is never drawn and exploration is deterministic),
    Table-I latencies so certified predictions are non-trivial."""
    return SystemConfig(
        num_cores=num_cores,
        noc=NocConfig(mesh_width=1, mesh_height=1),
        l3_banks=1,
        l1=CacheGeometry(size_bytes=0, ways=1, latency=1),
        l2=CacheGeometry(size_bytes=0, ways=1, latency=6),
        l3=CacheGeometry(size_bytes=0, ways=1, latency=15),
    )


def registered_labels():
    """Every distinct label the built-in datatype suites register, in
    suite order (deduplicated by name — several suites share ADD)."""
    from ...datatypes.contracts import builtin_suites
    labels = []
    seen = set()
    for suite in builtin_suites():
        label = suite.make_label()
        if label.name not in seen:
            seen.add(label.name)
            labels.append(label)
    return labels


Trace = Tuple[Tuple[int, str], ...]


@dataclass
class Counterexample:
    """A finding plus the op sequence that reaches it from reset."""

    obligation: str   # "invariants" | "commutativity" | "certifier" | "quiescence"
    check: str
    label: str
    trace: Trace      # ((core, op.text), ...) from the initial state
    detail: str

    def format(self) -> str:
        steps = " ; ".join(f"c{c}:{text}" for c, text in self.trace) \
            or "<initial state>"
        return (f"[{self.obligation}:{self.check}] label {self.label}: "
                f"{self.detail}\n    trace: {steps}")


@dataclass
class LabelReport:
    """Exploration result for one label's bounded config."""

    label: str
    states: int = 0
    transitions: int = 0
    exhausted: bool = True
    elapsed: float = 0.0
    suppressed: int = 0
    findings: List[Finding] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)


@dataclass
class ModelCheckReport:
    """Aggregated result over all checked labels."""

    per_label: List[LabelReport]
    cores: int = DEFAULT_CORES
    lines: int = DEFAULT_LINES
    depth: int = DEFAULT_DEPTH

    @property
    def states(self) -> int:
        return sum(r.states for r in self.per_label)

    @property
    def transitions(self) -> int:
        return sum(r.transitions for r in self.per_label)

    @property
    def exhausted(self) -> bool:
        return all(r.exhausted for r in self.per_label)

    @property
    def findings(self) -> List[Finding]:
        return [f for r in self.per_label for f in r.findings]

    @property
    def counterexamples(self) -> List[Counterexample]:
        return [c for r in self.per_label for c in r.counterexamples]


class Explorer:
    """BFS over one label's bounded config, with obligations inline."""

    def __init__(self, label, cores: int = DEFAULT_CORES,
                 lines: int = DEFAULT_LINES, depth: int = DEFAULT_DEPTH):
        self.label = label
        self.cores = cores
        self.lines = lines
        self.depth = depth
        registry = LabelRegistry(num_hw_labels=8, virtualize=True)
        registry.register(label)
        # The default NoTransactions conflict manager raises
        # ProtocolError if any transition ever consults it — in a
        # non-speculative exploration that *is* a quiescence finding.
        from ...coherence.protocol import MemorySystem
        self.msys = MemorySystem(bounded_config(cores), MainMemory(),
                                 registry, Stats(), RngStreams(0))
        self.ops = alphabet(label, lines)
        self.ops_by_text = {op.text: op for op in self.ops}
        self.labeled_ops = [op for op in self.ops if op.is_labeled]
        self._perms = list(itertools.permutations(range(cores)))
        self._identity = tuple(range(cores))
        self._caps: Dict[Tuple[str, str], int] = {}

    # --- state plumbing ----------------------------------------------------

    def _snapshot(self):
        return self.msys.snapshot_state()

    def _restore(self, snap) -> None:
        self.msys.restore_state(snap)

    def _permute(self, snap, perm):
        """Relabel cores of a snapshot: cache vector reordered, directory
        owner/sharer sets mapped. Busy is empty by construction and
        memory is core-agnostic."""
        caches, dirsnap, busy, mem = snap
        new_caches = [None] * len(caches)
        for old, csnap in enumerate(caches):
            new_caches[perm[old]] = csnap
        newdir = []
        for no, ent in dirsnap:
            c = ent.clone()
            c.owner = None if ent.owner is None else perm[ent.owner]
            c.sharers = {perm[s] for s in ent.sharers}
            c.u_sharers = {perm[s] for s in ent.u_sharers}
            newdir.append((no, c))
        return (tuple(new_caches), tuple(newdir), busy, mem)

    def _encode(self, snap) -> str:
        """Deterministic string fingerprint of a snapshot.  Word values
        are heterogeneous (ints, tuples, None), so the encoding is a
        repr string — total ordering over permutation candidates comes
        from string comparison."""
        caches, dirsnap, busy, mem = snap
        cparts = []
        for csnap in caches:
            lines, l1 = csnap
            cparts.append((
                tuple(sorted(
                    (no, cl.state.name,
                     getattr(cl.label, "name", None),
                     repr(cl.words), repr(cl.clean_words), cl.dirty,
                     cl.spec_read, cl.spec_written, cl.spec_labeled)
                    for no, cl in lines)),
                tuple(sorted(l1))))
        dparts = tuple(sorted(
            (no, -1 if ent.owner is None else ent.owner,
             tuple(sorted(ent.sharers)), tuple(sorted(ent.u_sharers)),
             getattr(ent.u_label, "name", None), repr(ent.words),
             ent.dirty)
            for no, ent in dirsnap))
        mparts = tuple(sorted((no, repr(words)) for no, words in mem))
        return repr((cparts, dparts, mparts, busy))

    def _canonical(self, snap):
        """Minimum encoding over all core permutations, plus the
        permuted snapshot realizing it."""
        best_enc = None
        best_snap = snap
        for perm in self._perms:
            cand = snap if perm == self._identity \
                else self._permute(snap, perm)
            enc = self._encode(cand)
            if best_enc is None or enc < best_enc:
                best_enc, best_snap = enc, cand
        return best_enc, best_snap

    # --- op application ----------------------------------------------------

    def _apply(self, core: int, op: Op, trace: Trace,
               report: Optional[LabelReport]):
        """Apply one op to the *current* (already restored) machine.
        Returns the AccessResult, or None when the op wedged — in which
        case a quiescence finding was recorded on ``report``."""
        try:
            res = apply_op(self.msys, self.label, core, op)
        except _PROTOCOL_ERRORS as exc:
            if report is not None:
                self._record(report, "quiescence", "op-wedged", trace,
                             f"applying c{core}:{op.text} raised "
                             f"{type(exc).__name__}: {exc}")
            return None
        # Occupancy is latency-only metadata; clearing it between ops
        # keeps the state space closed under time-shifting (every op
        # notionally starts a fresh quiescent cycle 0).
        self.msys._line_busy.clear()
        if res is not None and res.abort_requester:
            if report is not None:
                self._record(report, "quiescence", "nonspec-abort", trace,
                             f"c{core}:{op.text} aborted a non-speculative "
                             f"requester (cause {res.abort_cause!r})")
            return None
        return res

    # --- findings ----------------------------------------------------------

    def _record(self, report: LabelReport, obligation: str, check: str,
                trace: Trace, detail: str) -> None:
        key = (obligation, check)
        n = self._caps.get(key, 0)
        self._caps[key] = n + 1
        if n >= _FINDING_CAP:
            report.suppressed += 1
            return
        ce = Counterexample(obligation=obligation, check=check,
                            label=self.label.name, trace=trace,
                            detail=detail)
        report.counterexamples.append(ce)
        report.findings.append(Finding(
            pass_name="modelcheck", check=f"{obligation}:{check}",
            severity=ERROR, label=self.label.name,
            message=ce.format()))

    # --- obligations -------------------------------------------------------

    def _check_invariants(self, snap, trace: Trace,
                          report: LabelReport) -> None:
        self._restore(snap)
        for f in check_invariants(self.msys, pass_name="modelcheck"):
            self._record(report, "invariants", f.check, trace, f.message)

    def _abs_word(self, w):
        """Observe one reduced word through the label's identity
        predicate: every encoding of "empty" (``None``, untouched-memory
        ``0`` — see ``Label.is_identity_line``) collapses to one token,
        the same observation discipline the law suites use for
        descriptor labels."""
        pred = self.label._is_identity_word
        if pred is not None:
            try:
                if pred(w):
                    return "<id>"
            except (TypeError, IndexError):
                pass
        elif w == self.label.identity:
            return "<id>"
        return w

    def _abstract_encode(self) -> str:
        """The differencing abstraction of the *current* machine state:
        per-line coherence shape (private states, label bindings,
        directory sets) plus the globally-reduced line value observed
        through :meth:`_abs_word`.  Raw per-core partials and dirty bits
        are deliberately excluded — they are representation, not
        meaning."""
        msys = self.msys
        parts = []
        for line_no in range(self.lines):
            shape = []
            for core in range(self.cores):
                entry = msys.caches[core].lookup(line_no)
                shape.append(
                    "I" if entry is None else
                    (entry.state.name, getattr(entry.label, "name", None)))
            ent = msys.directory.peek(line_no)
            dshape = None if ent is None else (
                -1 if ent.owner is None else ent.owner,
                tuple(sorted(ent.sharers)), tuple(sorted(ent.u_sharers)),
                getattr(ent.u_label, "name", None))
            value = tuple(
                self._abs_word(msys.peek_word(line_no * LINE_BYTES + 8 * i))
                for i in range(8))
            parts.append((tuple(shape), dshape, repr(value)))
        return repr(parts)

    def _check_commutativity(self, snap, trace: Trace,
                             report: LabelReport) -> None:
        """All pairs of labeled ops on distinct cores, both orders, must
        reach the same abstract state."""
        lops = self.labeled_ops
        if not lops or self.cores < 2:
            return
        for c1, c2 in itertools.combinations(range(self.cores), 2):
            for op1 in lops:
                for op2 in lops:
                    first = ((c1, op1), (c2, op2))
                    second = ((c2, op2), (c1, op1))
                    enc_a = self._pair_result(snap, first, trace, report)
                    enc_b = self._pair_result(snap, second, trace, report)
                    if enc_a is None or enc_b is None:
                        continue  # wedge already reported as quiescence
                    if enc_a != enc_b:
                        self._record(
                            report, "commutativity", "order-divergence",
                            trace,
                            f"c{c1}:{op1.text} / c{c2}:{op2.text} diverge: "
                            f"order A reaches {enc_a} but order B "
                            f"reaches {enc_b}")

    def _pair_result(self, snap, pair, trace: Trace,
                     report: LabelReport) -> Optional[str]:
        self._restore(snap)
        for core, op in pair:
            ext = trace + ((core, op.text),)
            if self._apply(core, op, ext, report) is None:
                return None
        return self._abstract_encode()

    def _check_certifier(self, snap, trace: Trace,
                         report: LabelReport) -> None:
        """Certifier soundness on this state: every non-``None``
        prediction must match the real handlers exactly."""
        label = self.label
        store_value = STORE_VALUES.get(
            label.name, 3 if label._reduce_word is not None else 0)
        for core in range(self.cores):
            for line_no in range(self.lines):
                addr = line_no * LINE_BYTES
                for kind in _CERT_KINDS:
                    if kind is AccessKind.GATHER \
                            and not label.supports_gather:
                        continue  # programs cannot issue these (lint)
                    self._restore(snap)
                    use_label = label if kind.is_labeled else None
                    pred = certify.certify_access(
                        self.msys, core, kind, addr, use_label, now=0)
                    if pred is None:
                        continue
                    what = (f"certified {kind.value} by c{core} on "
                            f"L{line_no}")
                    req_trace = trace + ((core, f"<{kind.value}>"),)
                    try:
                        res = self._execute_kind(core, kind, addr,
                                                 store_value)
                    except _PROTOCOL_ERRORS as exc:
                        self._record(report, "certifier", "certified-raise",
                                     req_trace,
                                     f"{what} (pred {pred}) raised "
                                     f"{type(exc).__name__}: {exc}")
                        continue
                    if res.abort_requester or res.aborted_victims:
                        self._record(report, "certifier", "certified-abort",
                                     req_trace,
                                     f"{what} (pred {pred}) aborted")
                        continue
                    if pred >= 0 and res.cycles != pred:
                        self._record(
                            report, "certifier", "latency-mismatch",
                            req_trace,
                            f"{what}: predicted {pred} cycles but the "
                            f"handlers charged {res.cycles}")

    def _execute_kind(self, core: int, kind: AccessKind, addr: int,
                      store_value):
        from ...coherence.messages import Requester
        msys = self.msys
        req = Requester(core=core, ts=None, now=0)
        if kind is AccessKind.LOAD:
            return msys.load(core, addr, req)
        if kind is AccessKind.STORE:
            return msys.store(core, addr, store_value, req)
        if kind is AccessKind.LABELED_LOAD:
            return msys.labeled_load(core, addr, self.label, req)
        if kind is AccessKind.LABELED_STORE:
            return msys.labeled_store(core, addr, self.label,
                                      store_value, req)
        return msys.load_gather(core, addr, self.label, req)

    def _check_quiescence(self, snap, trace: Trace,
                          report: LabelReport) -> None:
        """From every state, a sweep of plain loads must drain all U
        lines back to conventional MESI with clean invariants."""
        self._restore(snap)
        for line_no in range(self.lines):
            drain = Op("load", line_no)
            ext = trace + ((0, f"<drain:{drain.text}>"),)
            if self._apply(0, drain, ext, report) is None:
                return  # the wedge was recorded
        from ...coherence.states import State
        for cache in self.msys.caches:
            for line_no, cl in cache._lines.items():
                if cl.state is State.U:
                    self._record(
                        report, "quiescence", "undrained-u", trace,
                        f"core {cache.core} still holds L{line_no} in U "
                        f"after a plain-load drain sweep")
        for f in check_invariants(self.msys, pass_name="modelcheck"):
            self._record(report, "quiescence", f"drained-{f.check}",
                         trace, f"after drain sweep: {f.message}")

    def _check_state(self, snap, trace: Trace,
                     report: LabelReport) -> None:
        self._check_invariants(snap, trace, report)
        self._check_certifier(snap, trace, report)
        self._check_commutativity(snap, trace, report)
        self._check_quiescence(snap, trace, report)

    # --- exploration -------------------------------------------------------

    def run(self, max_states: int = DEFAULT_MAX_STATES,
            deadline: Optional[float] = None) -> LabelReport:
        """Depth-bounded BFS from reset. Returns the report; the
        ``exhausted`` flag is False when a budget cut exploration
        short."""
        report = LabelReport(label=self.label.name)
        started = time.monotonic()
        enc, snap = self._canonical(self._snapshot())
        seen = {enc}
        queue = [(snap, (), 0)]
        head = 0
        while head < len(queue):
            if report.states >= max_states or (
                    deadline is not None
                    and time.monotonic() > deadline):
                report.exhausted = False
                break
            snap, trace, depth = queue[head]
            head += 1
            report.states += 1
            self._check_state(snap, trace, report)
            if depth >= self.depth:
                continue
            for core in range(self.cores):
                for op in self.ops:
                    self._restore(snap)
                    ext = trace + ((core, op.text),)
                    if self._apply(core, op, ext, report) is None:
                        continue
                    report.transitions += 1
                    child = self._snapshot()
                    cenc, csnap = self._canonical(child)
                    if cenc not in seen:
                        seen.add(cenc)
                        queue.append((csnap, ext, depth + 1))
        report.elapsed = time.monotonic() - started
        return report

    def replay(self, trace: Sequence[Tuple[int, str]]) -> LabelReport:
        """Re-execute a counterexample trace from reset — restoring the
        per-step canonicalization BFS applied — and re-discharge every
        obligation on the final state.  Deterministic: the same trace
        always reproduces the same findings."""
        report = LabelReport(label=self.label.name)
        enc, snap = self._canonical(self._snapshot())
        applied: Trace = ()
        for core, text in trace:
            op = self.ops_by_text.get(text)
            if op is None:
                # Synthetic probe steps (<load>, <drain:...>) mark where
                # an obligation probe, not BFS, applied the op; the
                # final _check_state re-runs those probes.
                break
            self._restore(snap)
            applied = applied + ((core, text),)
            if self._apply(core, op, applied, report) is None:
                return report  # the wedge finding is the reproduction
            enc, snap = self._canonical(self._snapshot())
        self._check_state(snap, applied, report)
        report.elapsed = 0.0
        report.states = 1
        return report


def run_modelcheck(label_names: Optional[Sequence[str]] = None,
                   cores: int = DEFAULT_CORES, lines: int = DEFAULT_LINES,
                   depth: int = DEFAULT_DEPTH,
                   max_states: int = DEFAULT_MAX_STATES,
                   time_budget: Optional[float] = None) -> ModelCheckReport:
    """Explore every registered label's bounded config.

    ``time_budget`` (seconds) is shared across labels; a label whose
    exploration is cut short reports ``exhausted=False`` (surfaced as a
    warning finding by the CLI, not an error)."""
    deadline = None if time_budget is None \
        else time.monotonic() + time_budget
    labels = registered_labels()
    if label_names is not None:
        wanted = set(label_names)
        unknown = wanted - {lb.name for lb in labels}
        if unknown:
            raise ValueError(f"unknown label(s): {sorted(unknown)}; "
                             f"registered: {[lb.name for lb in labels]}")
        labels = [lb for lb in labels if lb.name in wanted]
    reports = []
    for label in labels:
        explorer = Explorer(label, cores=cores, lines=lines, depth=depth)
        reports.append(explorer.run(max_states=max_states,
                                    deadline=deadline))
    return ModelCheckReport(per_label=reports, cores=cores, lines=lines,
                            depth=depth)


def replay(label_name: str, trace: Sequence[Tuple[int, str]],
           cores: int = DEFAULT_CORES, lines: int = DEFAULT_LINES,
           depth: int = DEFAULT_DEPTH) -> LabelReport:
    """Replay one counterexample trace for ``label_name``."""
    for label in registered_labels():
        if label.name == label_name:
            explorer = Explorer(label, cores=cores, lines=lines,
                                depth=depth)
            return explorer.replay(trace)
    raise ValueError(f"unknown label {label_name!r}")
