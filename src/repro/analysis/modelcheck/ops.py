"""Per-label op alphabets for the model checker.

Each registered datatype label induces a small alphabet of protocol-level
operations per tracked line.  The checker explores every interleaving of
these ops across cores, so the alphabet is the sole interface between
"what programs can do" and "what states are reachable":

* every label gets the conventional accesses (``load``, and ``store``
  for word-wise labels) — these drive reductions, invalidations, and
  owner downgrades against labeled state;
* word-wise labels get ``update(v)`` — the datatype-shaped commutative
  read-modify-write (a labeled load followed by a labeled store of
  ``reduce_word(current, v)``), which is exactly how SharedCounter.add,
  min/max updates, ordered put, and Bloom OR issue their labeled
  traffic — with two distinct operand values so non-commutative
  interleavings are observable;
* word-wise labels with a splitter additionally get ``gather``
  (Sec. IV), which redistributes partials without changing the reduced
  value;
* line-level labels (TOPK, LIST), whose reducers/splitters move real
  memory through a HandlerContext and need datatype-maintained heap/node
  structure, are explored with ``labeled_load`` + ``load`` only: enough
  to reach every U-state directory shape (GETU cases 1-5 against S
  copies, reductions on plain loads) without fabricating descriptors the
  datatype never writes.  PROTOCOL.md documents this bound.

Every op executes through the *real* public handlers of
:class:`~repro.coherence.protocol.MemorySystem` with a non-speculative
requester at ``now=0`` — the checker explores protocol state, not HTM
scheduling.
"""

from __future__ import annotations

from typing import List

from ...coherence.messages import Requester
from ...params import LINE_BYTES

#: Operand values for ``update`` ops, per label name.  Two distinct
#: values per label so ordering effects are observable; OPUT carries
#: (key, value) pairs with distinct keys so the winner is
#: order-independent by the label's own law (lowest key wins).
UPDATE_VALUES = {
    "ADD": (1, 2),
    "MIN": (4, 7),
    "MAX": (4, 7),
    "OPUT": ((1, 11), (2, 22)),
    "OR": (1, 2),
}

#: Operand for plain ``store`` ops (OPUT lines must hold pairs, not
#: ints, or a later reduction would fail on ``a[0]``).
STORE_VALUES = {"OPUT": (3, 33)}


class Op:
    """One protocol-level operation on one tracked line."""

    __slots__ = ("kind", "line", "value", "text", "is_labeled")

    def __init__(self, kind: str, line: int, value=None):
        self.kind = kind
        self.line = line
        self.value = value
        #: Labeled ops participate in the commutativity obligation.
        self.is_labeled = kind in ("update", "gather", "labeled_load")
        if value is None:
            self.text = f"{kind}[L{line}]"
        else:
            self.text = f"{kind}({value!r})[L{line}]"

    def __repr__(self) -> str:
        return f"Op({self.text})"


def alphabet(label, lines: int) -> List[Op]:
    """The op alphabet for ``label`` over ``lines`` tracked lines."""
    ops: List[Op] = []
    for line in range(lines):
        ops.append(Op("load", line))
        if label._reduce_word is not None:
            ops.append(Op("store", line, STORE_VALUES.get(label.name, 3)))
            for v in UPDATE_VALUES.get(label.name, (1, 2)):
                ops.append(Op("update", line, v))
            if label.supports_gather and label._split_word is not None:
                ops.append(Op("gather", line))
        else:
            ops.append(Op("labeled_load", line))
    return ops


def apply_op(msys, label, core: int, op: Op):
    """Execute ``op`` on ``core`` through the real public handlers.
    Returns the final :class:`~repro.coherence.messages.AccessResult`."""
    addr = op.line * LINE_BYTES
    kind = op.kind
    if kind == "load":
        return msys.load(core, addr, Requester(core=core, ts=None, now=0))
    if kind == "store":
        return msys.store(core, addr, op.value,
                          Requester(core=core, ts=None, now=0))
    if kind == "labeled_load":
        return msys.labeled_load(core, addr, label,
                                 Requester(core=core, ts=None, now=0))
    if kind == "gather":
        return msys.load_gather(core, addr, label,
                                Requester(core=core, ts=None, now=0))
    if kind == "update":
        res = msys.labeled_load(core, addr, label,
                                Requester(core=core, ts=None, now=0))
        merged = label._reduce_word(res.value, op.value)
        return msys.labeled_store(core, addr, label, merged,
                                  Requester(core=core, ts=None, now=0))
    raise ValueError(f"unknown op kind {kind!r}")
