"""The MESI+U invariant suite — one definition, two consumers.

CommTM extends MESI with the U state, and every protocol transition must
preserve the invariants of Sec. III-B (Fig. 6):

* **single writer** — at most one M/E holder per line, and no other
  copies while one exists;
* **no S/U mixing** — S and U never coexist with M/E, and S never
  coexists with U;
* **label agreement** — every U sharer of a line holds it under the same
  label, which is the directory's ``u_label``;
* **directory inclusion** — the directory's owner/sharer/U-sharer sets
  exactly match the lines the private caches actually hold, in both
  directions.

:func:`check_invariants` sweeps one machine and returns *all* violations
as :class:`~repro.analysis.findings.Finding` records.  It is consumed by
two tiers with different reporting disciplines:

* the runtime sanitizer (``REPRO_SANITIZE=1``) raises
  :class:`~repro.errors.SanitizerError` on the first finding after every
  memory operation of a real run; and
* the exhaustive model checker (``python -m repro.analysis modelcheck``)
  evaluates the suite on *every reachable state* of a bounded config and
  attaches a replayable counterexample trace to each finding.

Keeping the sweep here means a new invariant (or a fixed message) lands
in both tiers at once — the checker can never drift from what the
sanitizer enforces.
"""

from __future__ import annotations

from typing import List, Optional

from ..coherence.states import State
from .findings import ERROR, Finding

#: Check names the suite can emit, in sweep order — documentation and
#: test surface for the enforcement-tier table in PROTOCOL.md.
INVARIANT_CHECKS = (
    "multiple-owners",
    "owner-with-sharers",
    "s-u-coexist",
    "u-label-disagreement",
    "missing-directory-entry",
    "directory-mismatch",
    "directory-mixed-sets",
    "u-without-label",
    "stale-owner",
    "stale-sharer",
    "stale-u-sharer",
)


def check_invariants(msys, pass_name: str = "invariants") -> List[Finding]:
    """Sweep every cache and the directory of ``msys`` for MESI+U
    invariant violations and return them all (empty list = clean).

    Reads cache and directory internals directly (``_lines``,
    ``_entries``) so the sweep itself cannot perturb LRU order or
    stats.  ``pass_name`` tags the findings with the consuming tier
    ("sanitizer", "modelcheck", ...).
    """
    findings: List[Finding] = []

    def fail(check: str, line_no: Optional[int], message: str) -> None:
        findings.append(Finding(
            pass_name=pass_name, check=check, severity=ERROR,
            message=message,
            label=None if line_no is None else hex(line_no)))

    caches = msys.caches

    # Cache-side view: line -> {core: CacheLine} for every valid copy.
    holders = {}
    for cache in caches:
        for line_no, cl in cache._lines.items():
            if cl.state is State.I:
                continue
            holders.setdefault(line_no, {})[cache.core] = cl

    for line_no, by_core in holders.items():
        owners = [c for c, cl in by_core.items()
                  if cl.state in (State.M, State.E)]
        s_sharers = [c for c, cl in by_core.items()
                     if cl.state is State.S]
        u_sharers = [c for c, cl in by_core.items()
                     if cl.state is State.U]
        if len(owners) > 1:
            fail("multiple-owners", line_no,
                 f"line {line_no:#x} held M/E by cores {owners}")
        if owners and (s_sharers or u_sharers):
            fail("owner-with-sharers", line_no,
                 f"line {line_no:#x} held M/E by core "
                 f"{owners[0]} while cores "
                 f"{sorted(s_sharers + u_sharers)} hold S/U "
                 f"copies")
        if s_sharers and u_sharers:
            fail("s-u-coexist", line_no,
                 f"line {line_no:#x} held S by {s_sharers} and "
                 f"U by {u_sharers}")
        if u_sharers:
            labels = {id(by_core[c].label): by_core[c].label
                      for c in u_sharers}
            if len(labels) > 1 or None in {
                    by_core[c].label for c in u_sharers}:
                names = {c: getattr(by_core[c].label, "name", None)
                         for c in u_sharers}
                fail("u-label-disagreement", line_no,
                     f"line {line_no:#x} U sharers disagree on "
                     f"label: {names}")

        ent = msys.directory._entries.get(line_no)
        if ent is None:
            fail("missing-directory-entry", line_no,
                 f"line {line_no:#x} held by cores "
                 f"{sorted(by_core)} but the directory has no "
                 f"entry (inclusion violated)")
            continue  # the entry-dependent checks below need ``ent``
        # Directory membership must match each copy's actual state.
        for core, cl in by_core.items():
            dir_state = ent.private_state_of(core)
            cache_kind = State.M if cl.state is State.E else cl.state
            dir_kind = State.M if dir_state is State.E else dir_state
            if cache_kind is not dir_kind:
                fail("directory-mismatch", line_no,
                     f"line {line_no:#x}: core {core} caches it "
                     f"in {cl.state.value} but the directory "
                     f"records {dir_state.value}")
        if u_sharers and ent.u_label is not None:
            cached = by_core[u_sharers[0]].label
            if cached is not None and cached is not ent.u_label \
                    and getattr(cached, "name", None) \
                    != getattr(ent.u_label, "name", None):
                fail("u-label-disagreement", line_no,
                     f"line {line_no:#x}: caches hold U under "
                     f"label {getattr(cached, 'name', cached)!r} "
                     f"but directory records "
                     f"{getattr(ent.u_label, 'name', None)!r}")

    # Directory-side view: every recorded copy must exist in a cache.
    for line_no, ent in msys.directory._entries.items():
        kinds = sum(1 for flag in (ent.owner is not None,
                                   bool(ent.sharers),
                                   bool(ent.u_sharers)) if flag)
        if kinds > 1:
            fail("directory-mixed-sets", line_no,
                 f"line {line_no:#x}: directory entry has "
                 f"multiple sharer kinds (owner={ent.owner}, "
                 f"S={sorted(ent.sharers)}, "
                 f"U={sorted(ent.u_sharers)})")
        if ent.u_sharers and ent.u_label is None:
            fail("u-without-label", line_no,
                 f"line {line_no:#x}: directory records U "
                 f"sharers {sorted(ent.u_sharers)} with no "
                 f"label")
        cached = holders.get(line_no, {})
        if ent.owner is not None:
            cl = cached.get(ent.owner)
            if cl is None or cl.state not in (State.M, State.E):
                fail("stale-owner", line_no,
                     f"line {line_no:#x}: directory owner is "
                     f"core {ent.owner} but that cache holds "
                     f"{cl.state.value if cl else 'nothing'}")
        for core in ent.sharers:
            cl = cached.get(core)
            if cl is None or cl.state is not State.S:
                fail("stale-sharer", line_no,
                     f"line {line_no:#x}: directory records "
                     f"core {core} as an S sharer but that "
                     f"cache holds "
                     f"{cl.state.value if cl else 'nothing'}")
        for core in ent.u_sharers:
            cl = cached.get(core)
            if cl is None or cl.state is not State.U:
                fail("stale-u-sharer", line_no,
                     f"line {line_no:#x}: directory records "
                     f"core {core} as a U sharer but that "
                     f"cache holds "
                     f"{cl.state.value if cl else 'nothing'}")

    return findings
