"""Static and runtime checking for the CommTM reproduction.

Three passes over the things the paper assumes but hardware never checks:

* :mod:`.laws` — seeded property-based verification that every label's
  reduction algebra holds (commutativity, associativity, identity,
  splitter conservation);
* :mod:`.lint` — AST-level label-discipline lint over datatype and
  workload code (mixed labeled/unlabeled access, gathers without
  splitters, unregistered labels, virtualization aliasing);
* :mod:`.sanitizer` — opt-in runtime coherence-invariant checker
  (``--sanitize`` / ``REPRO_SANITIZE=1``) validating the directory and
  cache states after every protocol step.

Run all static passes via ``python -m repro.analysis``.
"""

from .findings import ERROR, WARNING, Finding, errors_in, format_findings
from .laws import check_laws, check_suite
from .lint import check_paths, check_registry, check_source
from .sanitizer import SANITIZE_ENV, CoherenceSanitizer, sanitize_enabled

__all__ = [
    "ERROR",
    "WARNING",
    "Finding",
    "errors_in",
    "format_findings",
    "check_laws",
    "check_suite",
    "check_paths",
    "check_registry",
    "check_source",
    "SANITIZE_ENV",
    "CoherenceSanitizer",
    "sanitize_enabled",
]
