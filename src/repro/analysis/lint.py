"""Label-discipline lint: AST checks over datatype and workload code.

CommTM pushes correctness obligations onto the programmer (Sec. III-A):
all accesses to an object must agree on its label, gathers require the
label to have a splitter, and the toolchain must map every program label
onto the hardware budget. None of this is checked at runtime — a slip
silently degrades to wrong results or spurious serialization. This pass
enforces the discipline statically on the ``yield``-based workload DSL:

* **mixed-store** (error): an unlabeled ``Store`` to an address that the
  same transaction also accesses with a label. The store bypasses the
  reduction algebra and clobbers whatever partials other cores hold.
* **mixed-load-before** (warning): an unlabeled ``Load`` of a labeled
  address *before* the first labeled access. Reading first forces a full
  reduction and serializes the transaction exactly where the label was
  supposed to help. (A ``Load`` *after* labeled accesses is the paper's
  sanctioned fallback — e.g. a bounded counter dropping to a full
  reduction when its local share hits zero — and is not flagged.)
* **label-conflict** (error): two different labels applied to the same
  address in one transaction.
* **gather-without-splitter** (error): ``LoadGather`` on a label that is
  statically resolvable to a factory without a splitter; the protocol
  would raise ``LabelError`` at runtime, but only on the paths a test
  happens to execute.
* **label-unregistered** (error): a label constructed by a factory and
  used in labeled operations without ever flowing through
  ``register_label``/``register`` — its ``label_id`` would still be None.

Ops are recognized in both spellings: direct constructors
(``yield Load(a)``) and the zero-allocation shuttle API
(``yield ctx.load(a)``) — the lint maps ``ctx.<method>`` calls onto the
same op kinds, so ported workloads keep full label-discipline coverage.
The shuttle API adds one obligation of its own:

* **shuttle-held** (error): the result of a ``ctx`` shuttle call
  (``ctx.load``/``ctx.store``/``ctx.labeled_load``/``ctx.labeled_store``/
  ``ctx.load_gather``/``ctx.work``) used anywhere other than directly in
  a ``yield`` expression. Shuttles are single mutable instances reused
  per thread context (consume-before-resume contract); holding one across
  a later shuttle call silently aliases the mutated op.

A finding can be suppressed by putting ``# commtm: allow-mixed`` on the
offending line. :func:`check_registry` is the companion runtime check for
Sec. III-D virtualization aliasing: two labels sharing one hardware id is
legal only if they never touch the same data, so it is surfaced as a
warning with both label names.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from .findings import ERROR, WARNING, Finding

#: Op constructors recognized in ``yield`` expressions.
UNLABELED_LOAD = "Load"
UNLABELED_STORE = "Store"
LABELED_OPS = ("LabeledLoad", "LabeledStore", "LoadGather")
GATHER_OP = "LoadGather"

#: ThreadCtx shuttle methods → the op kind they yield. ``ctx.work`` is
#: tracked only by the shuttle-held check (it carries no address/label).
SHUTTLE_OPS = {
    "load": UNLABELED_LOAD,
    "store": UNLABELED_STORE,
    "labeled_load": "LabeledLoad",
    "labeled_store": "LabeledStore",
    "load_gather": GATHER_OP,
}
SHUTTLE_RECEIVER = "ctx"

#: Built-in label factories → whether the label they build has a splitter.
FACTORY_HAS_SPLITTER = {
    "add_label": True,
    "min_label": False,
    "max_label": False,
    "oput_label": False,
    "or_label": False,
}

#: Standard registered label names (``machine.labels.get("ADD")`` sites).
LABEL_NAME_HAS_SPLITTER = {
    "ADD": True,
    "MIN": False,
    "MAX": False,
    "OPUT": False,
    "OR": False,
    "LIST": True,
    "TOPK": False,
}

SUPPRESS_COMMENT = "commtm: allow-mixed"


def _call_name(node: ast.expr) -> Optional[str]:
    """Bare name of a call's callee (``f(...)`` or ``m.f(...)``)."""
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
    return None


def _is_shuttle_call(call: ast.Call) -> Optional[str]:
    """The shuttle method name if this is a ``ctx.<shuttle>(...)`` call."""
    func = call.func
    if isinstance(func, ast.Attribute) \
            and isinstance(func.value, ast.Name) \
            and func.value.id == SHUTTLE_RECEIVER \
            and (func.attr in SHUTTLE_OPS or func.attr == "work"):
        return func.attr
    return None


def _op_kind(call: ast.Call) -> Optional[str]:
    """Op kind of a yielded call: constructor name or shuttle mapping."""
    shuttle = _is_shuttle_call(call)
    if shuttle is not None:
        return SHUTTLE_OPS.get(shuttle)  # ctx.work -> None (no address)
    name = _call_name(call)
    if name in (UNLABELED_LOAD, UNLABELED_STORE) + LABELED_OPS:
        return name
    return None


def _splitter_from_call(call: ast.Call,
                        local_factories: Dict[str, bool]) -> Optional[bool]:
    """Does the label built by this call have a splitter? None = unknown."""
    name = _call_name(call)
    if name in FACTORY_HAS_SPLITTER:
        return FACTORY_HAS_SPLITTER[name]
    if name in local_factories:
        return local_factories[name]
    if name in ("wordwise_label", "Label"):
        for kw in call.keywords:
            if kw.arg in ("split_word", "split_line") \
                    and not (isinstance(kw.value, ast.Constant)
                             and kw.value.value is None):
                return True
        # wordwise_label(name, identity, reduce_word, split_word)
        if name == "wordwise_label" and len(call.args) >= 4:
            return True
        return False
    if name in ("register_label", "register") and call.args:
        inner = call.args[0]
        if isinstance(inner, ast.Call):
            return _splitter_from_call(inner, local_factories)
    if name == "get" and call.args:
        key = call.args[0]
        if isinstance(key, ast.Constant) and key.value in LABEL_NAME_HAS_SPLITTER:
            return LABEL_NAME_HAS_SPLITTER[key.value]
    return None


def _collect_local_factories(tree: ast.Module) -> Dict[str, bool]:
    """Map in-file ``def *_label()`` factories to splitter support."""
    factories: Dict[str, bool] = {}
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef) \
                or not node.name.endswith("_label"):
            continue
        for ret in ast.walk(node):
            if isinstance(ret, ast.Return) and isinstance(ret.value, ast.Call):
                split = _splitter_from_call(ret.value, factories)
                if split is not None:
                    factories[node.name] = split
                break
    return factories


class _LabelResolver:
    """Resolves a label expression at an op site to splitter/registered facts.

    Follows single assignments within the enclosing function, and
    ``self.X = ...`` assignments in the class ``__init__`` for attribute
    references — the dominant patterns in the workload DSL. Anything it
    cannot resolve is treated as unknown (never flagged)."""

    def __init__(self, tree: ast.Module):
        self.local_factories = _collect_local_factories(tree)
        # class name -> attr -> assigned Call (from __init__ and methods)
        self.attr_calls: Dict[str, Dict[str, ast.Call]] = {}
        for node in tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            attrs = self.attr_calls.setdefault(node.name, {})
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    tgt = sub.targets[0]
                    if isinstance(tgt, ast.Attribute) \
                            and isinstance(tgt.value, ast.Name) \
                            and tgt.value.id == "self":
                        value = self._chase(sub.value, sub, node)
                        if isinstance(value, ast.Call):
                            attrs.setdefault(tgt.attr, value)

    def _chase(self, value: ast.expr, site: ast.AST,
               scope: ast.AST, hops: int = 4) -> Optional[ast.expr]:
        """Follow ``x = y`` chains backwards within ``scope``."""
        while isinstance(value, ast.Name) and hops > 0:
            hops -= 1
            found = None
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name) \
                        and node.targets[0].id == value.id \
                        and node.lineno <= site.lineno:
                    found = node.value
            if found is None:
                return None
            value = found
        return value

    def resolve_call(self, label_expr: ast.expr, site: ast.AST,
                     func: ast.FunctionDef,
                     class_name: Optional[str]) -> Optional[ast.Call]:
        """The Call that produced this label expression, if traceable."""
        if isinstance(label_expr, ast.Attribute) \
                and isinstance(label_expr.value, ast.Name) \
                and label_expr.value.id == "self" and class_name:
            return self.attr_calls.get(class_name, {}).get(label_expr.attr)
        value = self._chase(label_expr, site, func)
        return value if isinstance(value, ast.Call) else None

    def has_splitter(self, call: ast.Call) -> Optional[bool]:
        return _splitter_from_call(call, self.local_factories)


class _Access:
    __slots__ = ("op", "line", "label_dump")

    def __init__(self, op: str, line: int, label_dump: Optional[str]):
        self.op = op
        self.line = line
        self.label_dump = label_dump


def _iter_functions(tree: ast.Module) -> Iterable[
        Tuple[ast.FunctionDef, Optional[str]]]:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    yield sub, node.name


def check_source(source: str, filename: str = "<string>") -> List[Finding]:
    """Lint one file's source text; returns its findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(pass_name="lint", check="syntax", severity=ERROR,
                        message=f"cannot parse: {exc.msg}",
                        file=filename, line=exc.lineno)]
    lines = source.splitlines()

    def suppressed(lineno: int) -> bool:
        return 0 < lineno <= len(lines) \
            and SUPPRESS_COMMENT in lines[lineno - 1]

    resolver = _LabelResolver(tree)
    findings: List[Finding] = []

    # Factory-created labels that must flow through register(_label).
    factory_made: Dict[str, int] = {}    # name -> lineno of creation
    registered: set = set()
    used_in_ops: Dict[str, int] = {}     # name -> first labeled-op lineno
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            callee = _call_name(node.value)
            if callee in FACTORY_HAS_SPLITTER \
                    or callee in resolver.local_factories \
                    or callee in ("wordwise_label", "Label"):
                factory_made.setdefault(node.targets[0].id, node.lineno)
            if callee in ("register_label", "register"):
                # x = machine.register_label(y) registers y AND x.
                registered.add(node.targets[0].id)
        if isinstance(node, ast.Call) \
                and _call_name(node) in ("register_label", "register"):
            for arg in node.args:
                if isinstance(arg, ast.Name):
                    registered.add(arg.id)

    for func, class_name in _iter_functions(tree):
        # Shuttle-held: a ctx shuttle call anywhere but directly under a
        # ``yield``. The instance is reused and mutated by the next
        # shuttle call, so holding it breaks consume-before-resume.
        yielded_calls = {id(n.value) for n in ast.walk(func)
                         if isinstance(n, ast.Yield) and n.value is not None}
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                shuttle = _is_shuttle_call(node)
                if shuttle is not None and id(node) not in yielded_calls \
                        and not suppressed(node.lineno):
                    findings.append(Finding(
                        pass_name="lint", check="shuttle-held",
                        severity=ERROR, file=filename, line=node.lineno,
                        message=f"ctx.{shuttle}(...) result is not yielded "
                                f"immediately in {func.name}(); shuttle ops "
                                f"are reused per-context and must be "
                                f"consumed before the next shuttle call"))

        per_addr: Dict[str, List[_Access]] = {}
        for node in ast.walk(func):
            if not (isinstance(node, ast.Yield)
                    and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            op = _op_kind(call)
            if op is None:
                continue
            if not call.args:
                continue
            addr_key = ast.dump(call.args[0])
            label_expr = call.args[1] if op in LABELED_OPS \
                and len(call.args) >= 2 else None
            for kw in call.keywords:
                if kw.arg == "label":
                    label_expr = kw.value
            label_dump = ast.dump(label_expr) if label_expr is not None \
                else None
            per_addr.setdefault(addr_key, []).append(
                _Access(op, node.lineno, label_dump))

            if op == GATHER_OP and label_expr is not None:
                made_by = resolver.resolve_call(label_expr, node, func,
                                                class_name)
                if made_by is not None \
                        and resolver.has_splitter(made_by) is False:
                    findings.append(Finding(
                        pass_name="lint", check="gather-without-splitter",
                        severity=ERROR, file=filename, line=node.lineno,
                        label=ast.unparse(label_expr),
                        message="LoadGather on a label whose factory "
                                "defines no splitter; the protocol will "
                                "raise LabelError at runtime"))
            if op in LABELED_OPS and isinstance(label_expr, ast.Name):
                name = label_expr.id
                if name in factory_made:
                    used_in_ops.setdefault(name, node.lineno)

        for addr_key, accesses in per_addr.items():
            labeled = [a for a in accesses if a.op in LABELED_OPS]
            if not labeled:
                continue
            first_labeled = min(a.line for a in labeled)
            addr_src = addr_key
            for node in ast.walk(func):
                if isinstance(node, ast.expr) and ast.dump(node) == addr_key:
                    addr_src = ast.unparse(node)
                    break
            label_dumps = {a.label_dump for a in labeled
                           if a.label_dump is not None}
            if len(label_dumps) > 1:
                findings.append(Finding(
                    pass_name="lint", check="label-conflict", severity=ERROR,
                    file=filename, line=first_labeled,
                    message=f"address {addr_src!r} accessed under "
                            f"{len(label_dumps)} different labels in "
                            f"{func.name}()"))
            for a in accesses:
                if a.op == UNLABELED_STORE and not suppressed(a.line):
                    findings.append(Finding(
                        pass_name="lint", check="mixed-store", severity=ERROR,
                        file=filename, line=a.line,
                        message=f"unlabeled Store to {addr_src!r}, which "
                                f"{func.name}() also accesses with a label; "
                                f"the store bypasses the reduction algebra"))
                elif a.op == UNLABELED_LOAD and a.line < first_labeled \
                        and not suppressed(a.line):
                    findings.append(Finding(
                        pass_name="lint", check="mixed-load-before",
                        severity=WARNING, file=filename, line=a.line,
                        message=f"unlabeled Load of {addr_src!r} before its "
                                f"first labeled access in {func.name}(); "
                                f"this forces a full reduction up front"))

    for name, use_line in sorted(used_in_ops.items()):
        if name not in registered and not suppressed(use_line):
            findings.append(Finding(
                pass_name="lint", check="label-unregistered", severity=ERROR,
                file=filename, line=use_line, label=name,
                message=f"label {name!r} (created at line "
                        f"{factory_made[name]}) is used in labeled "
                        f"operations but never registered; its label_id "
                        f"is still None"))
    return findings


def check_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for path in paths:
        path = Path(path)
        files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in files:
            try:
                source = file.read_text()
            except OSError as exc:
                findings.append(Finding(
                    pass_name="lint", check="io", severity=ERROR,
                    file=str(file), message=f"cannot read: {exc}"))
                continue
            findings.extend(check_source(source, filename=str(file)))
    return findings


def check_lowerings(suites=None) -> List[Finding]:
    """``missing-lowering``: every word-wise datatype label must either
    carry a ``vector_reduce`` tag the kernel registry supports
    (:data:`repro.sim.vector.kernels.SUPPORTED_REDUCE_TAGS`) or declare
    ``interpreted_only = True``.

    A word-wise label with neither silently loses vector fusion: the
    backend's batched reduction kernel declines it and every reduction
    falls back to the sequential fold, with no signal to the author that
    a one-line tag (or an explicit opt-out) was expected.  Line-level
    labels (no ``_reduce_word``) are interpreted by design — their
    reducers move real memory through a HandlerContext — and are not
    flagged.  An unknown tag is also an error: it would be dead weight
    the kernel registry never matches."""
    from ..sim.vector.kernels import SUPPORTED_REDUCE_TAGS
    if suites is None:
        from ..datatypes.contracts import builtin_suites
        suites = builtin_suites()
    findings: List[Finding] = []
    seen = set()
    for suite in suites:
        label = suite.make_label()
        if label.name in seen:
            continue  # several suites share a factory (e.g. ADD)
        seen.add(label.name)
        if label._reduce_word is None:
            continue
        tag = getattr(label, "vector_reduce", None)
        if tag is None:
            if getattr(label, "interpreted_only", False):
                continue
            findings.append(Finding(
                pass_name="lint", check="missing-lowering", severity=ERROR,
                label=label.name,
                message=f"word-wise label {label.name!r} (suite "
                        f"{suite.name!r}) has no vector_reduce tag in the "
                        f"kernel lowering registry and no interpreted_only "
                        f"declaration; vector-backend reductions will "
                        f"silently fall back to the sequential fold"))
        elif tag not in SUPPORTED_REDUCE_TAGS:
            findings.append(Finding(
                pass_name="lint", check="missing-lowering", severity=ERROR,
                label=label.name,
                message=f"label {label.name!r} declares vector_reduce="
                        f"{tag!r} but the kernel registry only supports "
                        f"{sorted(SUPPORTED_REDUCE_TAGS)}"))
    return findings


def check_registry(registry) -> List[Finding]:
    """Flag virtualization aliasing: two labels on one hardware id.

    Safe only when the aliased labels never touch the same data
    (Sec. III-D) — the tool cannot prove that, so aliasing is a warning
    naming both labels."""
    findings: List[Finding] = []
    by_id: Dict[int, List] = {}
    for label in registry._order:
        by_id.setdefault(label.label_id, []).append(label)
    for hw_id, labels in sorted(by_id.items()):
        if len(labels) > 1:
            names = ", ".join(lbl.name for lbl in labels)
            findings.append(Finding(
                pass_name="lint", check="label-aliasing", severity=WARNING,
                label=names,
                message=f"labels {names} share hardware id {hw_id} "
                        f"(virtualization); safe only if they never "
                        f"access the same lines"))
    return findings
