"""Shared finding/report types for the analysis passes.

Every pass — the law checker, the label-discipline lint, and the runtime
sanitizer — reports :class:`Finding` records with enough context (label,
file, line, check name) to locate the offending contract or code without
re-running the pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Severity levels. ``error`` findings fail the CLI; ``warning`` findings
#: are reported but do not gate.
ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One defect located by an analysis pass."""

    pass_name: str           # "laws" | "lint" | "sanitizer"
    check: str               # e.g. "commutativity", "mixed-access"
    message: str             # human-readable description
    severity: str = ERROR
    label: Optional[str] = None   # label or suite name, when applicable
    file: Optional[str] = None    # source file of the evidence
    line: Optional[int] = None    # 1-based line number in ``file``

    def format(self) -> str:
        where = ""
        if self.file is not None:
            where = f"{self.file}:{self.line if self.line else '?'}: "
        tag = f"[{self.pass_name}:{self.check}]"
        label = f" (label {self.label})" if self.label else ""
        return f"{where}{self.severity}: {tag}{label} {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form (schema ``repro-analysis/1``): every field,
        with ``pass_name`` exported as ``pass``."""
        return {"pass": self.pass_name, "check": self.check,
                "severity": self.severity, "message": self.message,
                "label": self.label, "file": self.file, "line": self.line}


def format_findings(findings: List[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def errors_in(findings: List[Finding]) -> List[Finding]:
    return [f for f in findings if f.severity == ERROR]
