"""CLI for the static analysis passes: ``python -m repro.analysis``.

Two modes:

* the default contract checks — the label-algebra law checker over every
  built-in datatype's contract suite, the label-discipline lint over the
  datatype and workload sources (plus any extra files/directories
  given), the ``missing-lowering`` check against the vector kernel
  registry, and the registry aliasing check;
* ``python -m repro.analysis modelcheck`` — the exhaustive explicit-state
  model checker over every registered label's bounded config (see
  :mod:`repro.analysis.modelcheck`).

Both honor ``--json`` for mechanical consumption (schema
``repro-analysis/1``) and share the exit-code contract:

* **0** — clean (warnings allowed);
* **1** — at least one error-severity finding;
* **2** — internal error (the analysis itself crashed; also argparse
  usage errors).
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path

from .findings import errors_in, format_findings
from .laws import DEFAULT_TRIALS, check_laws
from .lint import check_lowerings, check_paths, check_registry

#: Default lint scope: the code that defines and uses labels.
DEFAULT_LINT_DIRS = ("datatypes", "workloads")

#: Exit-code contract, shared by both subcommands and consumed by CI.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_INTERNAL = 2

JSON_SCHEMA = "repro-analysis/1"


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def _standard_registry():
    """A registry carrying every built-in suite's label, for alias checks."""
    from ..core.labels import LabelRegistry
    from ..datatypes.contracts import builtin_suites

    registry = LabelRegistry(num_hw_labels=8, virtualize=True)
    for suite in builtin_suites():
        label = suite.make_label()
        # Suites may share a factory (e.g. several ADD users); register
        # each distinct label name once, as a linked program would.
        if label.name not in registry:
            registry.register(label)
    return registry


def _emit(findings, json_out: bool, extra: dict = None) -> int:
    """Shared reporting tail: print findings (text or JSON) and map them
    to the exit-code contract."""
    errors = errors_in(findings)
    warnings = len(findings) - len(errors)
    if json_out:
        payload = {"schema": JSON_SCHEMA,
                   "findings": [f.to_dict() for f in findings],
                   "errors": len(errors), "warnings": warnings}
        if extra:
            payload.update(extra)
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        if findings:
            print(format_findings(findings))
        print(f"repro.analysis: {len(errors)} error(s), "
              f"{warnings} warning(s)")
    return EXIT_FINDINGS if errors else EXIT_CLEAN


def _check_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="CommTM contract checks: label-algebra laws and "
                    "label-discipline lint. (See also the 'modelcheck' "
                    "subcommand.)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="extra files or directories to lint "
                             "(e.g. your workload sources)")
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS,
                        help="random trials per law suite "
                             "(default %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default %(default)s)")
    parser.add_argument("--skip-laws", action="store_true",
                        help="skip the law checker")
    parser.add_argument("--skip-lint", action="store_true",
                        help="skip the source lint")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output "
                             f"(schema {JSON_SCHEMA})")
    args = parser.parse_args(argv)

    findings = []
    if not args.skip_laws:
        findings.extend(check_laws(trials=args.trials, seed=args.seed))
        findings.extend(check_registry(_standard_registry()))
    if not args.skip_lint:
        root = _package_root()
        lint_paths = [root / d for d in DEFAULT_LINT_DIRS]
        lint_paths.extend(args.paths)
        findings.extend(check_paths(lint_paths))
        findings.extend(check_lowerings())
    return _emit(findings, args.json)


def _modelcheck_main(argv) -> int:
    from .findings import Finding, WARNING
    from .modelcheck import (DEFAULT_CORES, DEFAULT_DEPTH, DEFAULT_LINES,
                             run_modelcheck)
    from .modelcheck.checker import DEFAULT_MAX_STATES

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis modelcheck",
        description="Exhaustive explicit-state model check of the MESI+U "
                    "protocol over bounded configs, for every registered "
                    "label: shared invariants, commutativity as "
                    "reachability, certifier soundness, quiescence.")
    parser.add_argument("--cores", type=int, default=DEFAULT_CORES,
                        help="cores in the bounded config "
                             "(default %(default)s)")
    parser.add_argument("--lines", type=int, default=DEFAULT_LINES,
                        help="tracked cache lines (default %(default)s)")
    parser.add_argument("--depth", type=int, default=DEFAULT_DEPTH,
                        help="BFS depth bound in ops (default %(default)s)")
    parser.add_argument("--label", action="append", dest="labels",
                        metavar="NAME",
                        help="check only this label (repeatable; "
                             "default: all registered labels)")
    parser.add_argument("--max-states", type=int,
                        default=DEFAULT_MAX_STATES,
                        help="per-label state budget (default %(default)s)")
    parser.add_argument("--budget", type=float, default=60.0,
                        help="wall-clock budget in seconds across all "
                             "labels (default %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output "
                             f"(schema {JSON_SCHEMA})")
    args = parser.parse_args(argv)

    report = run_modelcheck(label_names=args.labels, cores=args.cores,
                            lines=args.lines, depth=args.depth,
                            max_states=args.max_states,
                            time_budget=args.budget)
    findings = list(report.findings)
    suppressed = sum(r.suppressed for r in report.per_label)
    for r in report.per_label:
        if not r.exhausted:
            findings.append(Finding(
                pass_name="modelcheck", check="budget-exhausted",
                severity=WARNING, label=r.label,
                message=f"exploration of label {r.label!r} hit the "
                        f"state/time budget after {r.states} states; "
                        f"the guarantee only covers what was explored"))
    per_label = [{"label": r.label, "states": r.states,
                  "transitions": r.transitions, "exhausted": r.exhausted,
                  "elapsed_s": round(r.elapsed, 3),
                  "findings": len(r.findings), "suppressed": r.suppressed}
                 for r in report.per_label]
    if not args.json:
        for row in per_label:
            status = "exhausted" if row["exhausted"] else "BUDGET CUT"
            print(f"modelcheck: label {row['label']:<5s} "
                  f"{row['states']:6d} states {row['transitions']:7d} "
                  f"transitions  {row['elapsed_s']:6.2f}s  {status}  "
                  f"{row['findings']} finding(s)")
        print(f"modelcheck: explored {report.states} states / "
              f"{report.transitions} transitions over "
              f"{len(report.per_label)} label(s) "
              f"({args.cores} cores x {args.lines} line(s), "
              f"depth {args.depth})"
              + (f"; {suppressed} finding(s) suppressed past the "
                 f"per-check cap" if suppressed else ""))
    return _emit(findings, args.json, extra={
        "modelcheck": {"cores": args.cores, "lines": args.lines,
                       "depth": args.depth, "states": report.states,
                       "transitions": report.transitions,
                       "exhausted": report.exhausted,
                       "suppressed": suppressed,
                       "per_label": per_label}})


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "modelcheck":
            return _modelcheck_main(argv[1:])
        return _check_main(argv)
    except SystemExit:
        raise  # argparse usage errors already exit 2
    except Exception:
        traceback.print_exc()
        print("repro.analysis: internal error", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
