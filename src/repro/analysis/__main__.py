"""CLI for the static analysis passes: ``python -m repro.analysis``.

Runs the label-algebra law checker over every built-in datatype's
contract suite, the label-discipline lint over the datatype and workload
sources (plus any extra files/directories given), and the registry
aliasing check over a registry populated with the standard labels.
Exits 1 if any *error*-severity finding is produced; warnings are
reported but do not gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .findings import errors_in, format_findings
from .laws import DEFAULT_TRIALS, check_laws
from .lint import check_paths, check_registry

#: Default lint scope: the code that defines and uses labels.
DEFAULT_LINT_DIRS = ("datatypes", "workloads")


def _package_root() -> Path:
    return Path(__file__).resolve().parent.parent


def _standard_registry():
    """A registry carrying every built-in suite's label, for alias checks."""
    from ..core.labels import LabelRegistry
    from ..datatypes.contracts import builtin_suites

    registry = LabelRegistry(num_hw_labels=8, virtualize=True)
    for suite in builtin_suites():
        label = suite.make_label()
        # Suites may share a factory (e.g. several ADD users); register
        # each distinct label name once, as a linked program would.
        if label.name not in registry:
            registry.register(label)
    return registry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="CommTM contract checks: label-algebra laws and "
                    "label-discipline lint.")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="extra files or directories to lint "
                             "(e.g. your workload sources)")
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS,
                        help="random trials per law suite "
                             "(default %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default %(default)s)")
    parser.add_argument("--skip-laws", action="store_true",
                        help="skip the law checker")
    parser.add_argument("--skip-lint", action="store_true",
                        help="skip the source lint")
    args = parser.parse_args(argv)

    findings = []
    if not args.skip_laws:
        findings.extend(check_laws(trials=args.trials, seed=args.seed))
        findings.extend(check_registry(_standard_registry()))
    if not args.skip_lint:
        root = _package_root()
        lint_paths = [root / d for d in DEFAULT_LINT_DIRS]
        lint_paths.extend(args.paths)
        findings.extend(check_paths(lint_paths))

    if findings:
        print(format_findings(findings))
    errors = errors_in(findings)
    warnings = len(findings) - len(errors)
    print(f"repro.analysis: {len(errors)} error(s), {warnings} warning(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
