"""Runtime coherence-invariant sanitizer (opt-in, zero cost when off).

CommTM extends MESI with the U state, and every protocol transition —
plus PR 2's private-hit fast path — must preserve the MESI+U invariants
(Sec. III-B, Fig. 6):

* at most one M/E holder per line, and no other copies while one exists;
* S and U never coexist with M/E, and S never coexists with U;
* every U sharer of a line holds it under the same label, which is the
  directory's ``u_label``;
* the directory's owner/sharer/U-sharer sets exactly match the lines the
  private caches actually hold (directory inclusion, both directions).

The sanitizer sweeps all caches and the directory after each memory
operation when enabled via ``--sanitize`` or ``REPRO_SANITIZE=1``; a
violation raises :class:`~repro.errors.SanitizerError` naming the line,
cores, and states involved. When disabled nothing is installed — the
engine's handler table and the protocol's hook slot stay exactly as fast
as before (the same discipline as the tracer).
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..coherence.states import State
from ..errors import SanitizerError
from .findings import ERROR, Finding

#: Set to 1/true/yes to enable the sanitizer for any run (CLI, tests,
#: benchmarks) without plumbing a flag through.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled(default: bool = False) -> bool:
    value = os.environ.get(SANITIZE_ENV)
    if value is None:
        return default
    return value.strip().lower() not in ("", "0", "false", "no")


class CoherenceSanitizer:
    """Sweeps one machine's caches + directory for invariant violations."""

    def __init__(self, msys):
        self.msys = msys
        self.checks_run = 0
        self.violations = 0

    def _fail(self, check: str, line_no: Optional[int], message: str) -> None:
        self.violations += 1
        finding = Finding(pass_name="sanitizer", check=check, severity=ERROR,
                          message=message,
                          label=None if line_no is None else hex(line_no))
        raise SanitizerError(finding.format())

    def check(self) -> None:
        """Assert every MESI+U invariant over the whole machine.

        Reads cache and directory internals directly (``_lines``,
        ``_entries``) so the sweep itself cannot perturb LRU order or
        stats."""
        self.checks_run += 1
        msys = self.msys
        caches = msys.caches

        # Cache-side view: line -> {core: CacheLine} for every valid copy.
        holders = {}
        for cache in caches:
            for line_no, cl in cache._lines.items():
                if cl.state is State.I:
                    continue
                holders.setdefault(line_no, {})[cache.core] = cl

        for line_no, by_core in holders.items():
            owners = [c for c, cl in by_core.items()
                      if cl.state in (State.M, State.E)]
            s_sharers = [c for c, cl in by_core.items()
                         if cl.state is State.S]
            u_sharers = [c for c, cl in by_core.items()
                         if cl.state is State.U]
            if len(owners) > 1:
                self._fail("multiple-owners", line_no,
                           f"line {line_no:#x} held M/E by cores {owners}")
            if owners and (s_sharers or u_sharers):
                self._fail("owner-with-sharers", line_no,
                           f"line {line_no:#x} held M/E by core "
                           f"{owners[0]} while cores "
                           f"{sorted(s_sharers + u_sharers)} hold S/U "
                           f"copies")
            if s_sharers and u_sharers:
                self._fail("s-u-coexist", line_no,
                           f"line {line_no:#x} held S by {s_sharers} and "
                           f"U by {u_sharers}")
            if u_sharers:
                labels = {id(by_core[c].label): by_core[c].label
                          for c in u_sharers}
                if len(labels) > 1 or None in {
                        by_core[c].label for c in u_sharers}:
                    names = {c: getattr(by_core[c].label, "name", None)
                             for c in u_sharers}
                    self._fail("u-label-disagreement", line_no,
                               f"line {line_no:#x} U sharers disagree on "
                               f"label: {names}")

            ent = msys.directory._entries.get(line_no)
            if ent is None:
                self._fail("missing-directory-entry", line_no,
                           f"line {line_no:#x} held by cores "
                           f"{sorted(by_core)} but the directory has no "
                           f"entry (inclusion violated)")
            # Directory membership must match each copy's actual state.
            for core, cl in by_core.items():
                dir_state = ent.private_state_of(core)
                cache_kind = State.M if cl.state is State.E else cl.state
                dir_kind = State.M if dir_state is State.E else dir_state
                if cache_kind is not dir_kind:
                    self._fail("directory-mismatch", line_no,
                               f"line {line_no:#x}: core {core} caches it "
                               f"in {cl.state.value} but the directory "
                               f"records {dir_state.value}")
            if u_sharers and ent.u_label is not None:
                cached = by_core[u_sharers[0]].label
                if cached is not None and cached is not ent.u_label \
                        and getattr(cached, "name", None) \
                        != getattr(ent.u_label, "name", None):
                    self._fail("u-label-disagreement", line_no,
                               f"line {line_no:#x}: caches hold U under "
                               f"label {getattr(cached, 'name', cached)!r} "
                               f"but directory records "
                               f"{getattr(ent.u_label, 'name', None)!r}")

        # Directory-side view: every recorded copy must exist in a cache.
        for line_no, ent in msys.directory._entries.items():
            kinds = sum(1 for flag in (ent.owner is not None,
                                       bool(ent.sharers),
                                       bool(ent.u_sharers)) if flag)
            if kinds > 1:
                self._fail("directory-mixed-sets", line_no,
                           f"line {line_no:#x}: directory entry has "
                           f"multiple sharer kinds (owner={ent.owner}, "
                           f"S={sorted(ent.sharers)}, "
                           f"U={sorted(ent.u_sharers)})")
            if ent.u_sharers and ent.u_label is None:
                self._fail("u-without-label", line_no,
                           f"line {line_no:#x}: directory records U "
                           f"sharers {sorted(ent.u_sharers)} with no "
                           f"label")
            cached = holders.get(line_no, {})
            if ent.owner is not None:
                cl = cached.get(ent.owner)
                if cl is None or cl.state not in (State.M, State.E):
                    self._fail("stale-owner", line_no,
                               f"line {line_no:#x}: directory owner is "
                               f"core {ent.owner} but that cache holds "
                               f"{cl.state.value if cl else 'nothing'}")
            for core in ent.sharers:
                cl = cached.get(core)
                if cl is None or cl.state is not State.S:
                    self._fail("stale-sharer", line_no,
                               f"line {line_no:#x}: directory records "
                               f"core {core} as an S sharer but that "
                               f"cache holds "
                               f"{cl.state.value if cl else 'nothing'}")
            for core in ent.u_sharers:
                cl = cached.get(core)
                if cl is None or cl.state is not State.U:
                    self._fail("stale-u-sharer", line_no,
                               f"line {line_no:#x}: directory records "
                               f"core {core} as a U sharer but that "
                               f"cache holds "
                               f"{cl.state.value if cl else 'nothing'}")

    def report(self) -> List[Finding]:
        """Summary finding list (empty when no violation ever tripped)."""
        if self.violations == 0:
            return []
        return [Finding(pass_name="sanitizer", check="summary",
                        severity=ERROR,
                        message=f"{self.violations} violation(s) over "
                                f"{self.checks_run} checkpoints")]


def install(machine) -> Optional[CoherenceSanitizer]:
    """Attach a sanitizer to a machine's memory system and return it.

    The hook slot (``MemorySystem.sanitizer``) mirrors the tracer: None
    (the default) keeps every op on its original path."""
    sanitizer = CoherenceSanitizer(machine.msys)
    machine.msys.sanitizer = sanitizer
    return sanitizer
