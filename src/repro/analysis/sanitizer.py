"""Runtime coherence-invariant sanitizer (opt-in, zero cost when off).

CommTM extends MESI with the U state, and every protocol transition —
plus PR 2's private-hit fast path — must preserve the MESI+U invariants
(Sec. III-B, Fig. 6):

* at most one M/E holder per line, and no other copies while one exists;
* S and U never coexist with M/E, and S never coexists with U;
* every U sharer of a line holds it under the same label, which is the
  directory's ``u_label``;
* the directory's owner/sharer/U-sharer sets exactly match the lines the
  private caches actually hold (directory inclusion, both directions).

The invariant sweep itself is shared with the exhaustive model checker
(see :mod:`repro.analysis.invariants`); this module owns the runtime
discipline. The sanitizer sweeps all caches and the directory after each memory
operation when enabled via ``--sanitize`` or ``REPRO_SANITIZE=1``; a
violation raises :class:`~repro.errors.SanitizerError` naming the line,
cores, and states involved. When disabled nothing is installed — the
engine's handler table and the protocol's hook slot stay exactly as fast
as before (the same discipline as the tracer).
"""

from __future__ import annotations

import os
from typing import List, Optional

from ..errors import SanitizerError
from .findings import ERROR, Finding
from .invariants import check_invariants

#: Set to 1/true/yes to enable the sanitizer for any run (CLI, tests,
#: benchmarks) without plumbing a flag through.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled(default: bool = False) -> bool:
    value = os.environ.get(SANITIZE_ENV)
    if value is None:
        return default
    return value.strip().lower() not in ("", "0", "false", "no")


class CoherenceSanitizer:
    """Sweeps one machine's caches + directory for invariant violations.

    The sweep itself lives in :mod:`repro.analysis.invariants` — the same
    definition the exhaustive model checker evaluates on every reachable
    state of its bounded configs.  This class adds the runtime reporting
    discipline: raise on the first violation, count checkpoints.
    """

    def __init__(self, msys):
        self.msys = msys
        self.checks_run = 0
        self.violations = 0

    def check(self) -> None:
        """Assert every MESI+U invariant over the whole machine.

        Delegates to :func:`~repro.analysis.invariants.check_invariants`
        and raises :class:`~repro.errors.SanitizerError` with the first
        finding's formatted message (a run stops at the first corrupted
        checkpoint; the full list is only meaningful to the offline
        checker)."""
        self.checks_run += 1
        findings = check_invariants(self.msys, pass_name="sanitizer")
        if findings:
            self.violations += 1
            raise SanitizerError(findings[0].format())

    def report(self) -> List[Finding]:
        """Summary finding list (empty when no violation ever tripped)."""
        if self.violations == 0:
            return []
        return [Finding(pass_name="sanitizer", check="summary",
                        severity=ERROR,
                        message=f"{self.violations} violation(s) over "
                                f"{self.checks_run} checkpoints")]


def install(machine) -> Optional[CoherenceSanitizer]:
    """Attach a sanitizer to a machine's memory system and return it.

    The hook slot (``MemorySystem.sanitizer``) mirrors the tracer: None
    (the default) keeps every op on its original path."""
    sanitizer = CoherenceSanitizer(machine.msys)
    machine.msys.sanitizer = sanitizer
    return sanitizer
