"""CommTM core: labels, reductions, gather requests, and the machine facade.

This package implements the paper's primary contribution (Secs. III and IV):
the user-defined reducible (U) coherence state, labeled memory operations,
transparent user-defined reductions, and gather requests with user-defined
splitters.
"""

from .labels import Label, LabelRegistry, wordwise_label
from .machine import Machine, MachineResult

__all__ = ["Label", "LabelRegistry", "wordwise_label", "Machine", "MachineResult"]
