"""The machine facade: one simulated chip, ready to run workloads.

This is the main entry point of the public API::

    from repro import Machine, SystemConfig
    from repro.core.labels import add_label

    machine = Machine(SystemConfig(num_cores=128))
    ADD = machine.register_label(add_label())
    counter = machine.alloc.alloc_words(1)

    def body(ctx):
        def txn(ctx):
            v = yield LabeledLoad(counter, ADD)
            yield LabeledStore(counter, ADD, v + 1)
        for _ in range(1000):
            yield Atomic(txn)

    result = machine.run_spmd(body, num_threads=64)
    print(result.cycles, result.stats.aborts)

Setting ``config.commtm_enabled = False`` turns the same machine into the
paper's baseline eager-lazy HTM: labeled operations execute as conventional
loads and stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..coherence.protocol import MemorySystem
from ..errors import SimulationError
from ..htm.conflict import ConflictManager
from ..htm.htm import HtmRuntime
from ..mem.layout import Allocator
from ..mem.memory import MainMemory
from ..params import SystemConfig
from ..sim.engine import Engine
from ..sim.rng import RngStreams
from ..sim.stats import Stats
from .labels import Label, LabelRegistry


@dataclass
class MachineResult:
    """Outcome of one simulated run."""

    stats: Stats
    machine: "Machine"

    @property
    def cycles(self) -> int:
        """Simulated completion time of the parallel region."""
        return self.stats.parallel_cycles


class Machine:
    """One simulated multicore chip (Table I system + CommTM extensions)."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 virtualize_labels: bool = False,
                 sanitize: Optional[bool] = None,
                 observe: Optional[bool] = None,
                 backend: Optional[str] = None):
        self.config = config if config is not None else SystemConfig()
        # Engine backend ("interp" or "vector"). Like ``sanitize`` and
        # ``observe`` this is not a SystemConfig field — backends are
        # bit-identical in simulated behaviour, so the backend must not
        # perturb config fingerprints; the harness carries it on PointSpec
        # instead (where it *is* part of the cache fingerprint, because
        # cached results record which backend produced them). None defers
        # to REPRO_BACKEND, then to the interpreted default.
        from ..sim import vector
        self.backend = vector.resolve_backend(backend)
        self.stats = Stats(num_cores=self.config.num_cores)
        self.stats.host_backend = self.backend
        from ..sim.trace import Tracer
        self.tracer = Tracer(enabled=self.config.trace_enabled)
        self.rng = RngStreams(self.config.seed)
        self.memory = MainMemory()
        self.alloc = Allocator()
        self.labels = LabelRegistry(self.config.num_labels,
                                    virtualize=virtualize_labels)
        self.msys = MemorySystem(self.config, self.memory, self.labels,
                                 self.stats, self.rng)
        self.msys.tracer = self.tracer
        # Opt-in coherence-invariant checking (repro.analysis.sanitizer).
        # ``sanitize`` is kept out of SystemConfig on purpose: it cannot
        # change simulated results, so it must not perturb the result
        # cache's config fingerprints. None defers to REPRO_SANITIZE.
        from ..analysis.sanitizer import CoherenceSanitizer, sanitize_enabled
        self.sanitizer: Optional[CoherenceSanitizer] = None
        if sanitize if sanitize is not None else sanitize_enabled():
            self.sanitizer = CoherenceSanitizer(self.msys)
            self.msys.sanitizer = self.sanitizer
        self.conflicts = ConflictManager(self.msys.caches, self.stats,
                                         policy=self.config.conflict_policy)
        self.msys.attach_conflict_manager(self.conflicts)
        self.htm = HtmRuntime(self.config.num_cores, self.conflicts,
                              self.msys.caches, self.stats)
        # Opt-in structured observability (repro.obs). Like ``sanitize``,
        # ``observe`` is deliberately not a SystemConfig field: it cannot
        # change simulated results, so it must not perturb the result
        # cache's config fingerprints. None defers to REPRO_OBS.
        from ..obs import Observer, obs_enabled
        self.obs: Optional[Observer] = None
        if observe if observe is not None else obs_enabled():
            self.obs = Observer(self)
            self.msys.obs = self.obs
            self.conflicts.obs = self.obs
        self._ran = False

    # ------------------------------------------------------------------

    def register_label(self, label: Label) -> Label:
        return self.labels.register(label)

    def seed_word(self, addr: int, value: object) -> None:
        """Initialize memory before the simulation (no cycles charged)."""
        self.memory.write_word(addr, value)

    def read_word(self, addr: int) -> object:
        """Read the globally-reduced value at ``addr`` (for verification)."""
        return self.msys.peek_word(addr)

    def seed_reducible(self, addr: int, label: Label,
                       per_core_values: dict) -> None:
        """Pre-install a line in U state with given per-core partial values.

        Scaled-down-run methodology: the paper's runs are long enough that
        the initial distribution of reducible state across caches (the
        "warmup" of one GETU + gather per core and object) is amortized
        away; our runs are shorter, so workloads may start in steady state
        by seeding each running core's U-state line directly. The invariant
        — reducing all private copies yields the logical value — holds by
        construction. No cycles are charged.
        """
        from ..coherence.line import CacheLine
        from ..coherence.states import State
        from ..mem.address import line_of, word_index

        if self.config.commtm_enabled:
            line_no = line_of(addr)
            idx = word_index(addr)
            ent = self.msys.directory.entry(line_no)
            if not ent.unshared or ent.u_sharers:
                raise SimulationError(
                    f"seed_reducible on already-shared line {line_no}"
                )
            for core, value in per_core_values.items():
                words = label.identity_line()
                words[idx] = value
                self.msys.caches[core].install(
                    CacheLine(line=line_no, state=State.U, label=label,
                              words=words, dirty=True)
                )
                ent.u_sharers.add(core)
            ent.u_label = label
            ent.check()
        else:
            # Baseline machine: reduce the partials host-side (handler
            # memory accesses go straight to main memory) and store the
            # logical value.
            from .labels import HandlerContext

            hctx = HandlerContext(self.memory.read_word,
                                  self.memory.write_word)
            idx = word_index(addr)
            merged = None
            for value in per_core_values.values():
                words = label.identity_line()
                words[idx] = value
                merged = words if merged is None else label.reduce(
                    hctx, merged, words
                )
            if merged is not None:
                self.memory.write_word(addr, merged[idx])

    def flush_reducible(self) -> None:
        """Force a real reduction of every line still in U state.

        Post-run verification helper: line-level reduction handlers (linked
        lists, top-K) perform real memory writes, so distributed partial
        state must be collapsed through the protocol — not peeked — before
        reading structures out of simulated memory.
        """
        from ..coherence.messages import SYSTEM
        from ..mem.address import line_base

        pending = True
        while pending:
            pending = False
            for line_no, ent in list(self.msys.directory._entries.items()):
                if ent.u_sharers:
                    home = sorted(ent.u_sharers)[0]
                    self.msys.load(home, line_base(line_no), SYSTEM)
                    pending = True

    # ------------------------------------------------------------------

    def run(self, bodies: List[Callable]) -> MachineResult:
        """Run one generator function per thread to completion."""
        if self._ran:
            raise SimulationError(
                "a Machine can only run once; build a fresh one per run"
            )
        self._ran = True
        if self.backend == "vector":
            from ..sim.vector.engine import VectorEngine
            engine = VectorEngine(self, bodies)
        else:
            engine = Engine(self, bodies)
        engine.run()
        if self.obs is not None:
            self.obs.recorder.close_open_spans()
            self.stats.host_hot_lines = self.obs.hot_lines()
        return MachineResult(stats=self.stats, machine=self)

    def run_spmd(self, body: Callable, num_threads: int) -> MachineResult:
        """Run the same body on ``num_threads`` threads (SPMD)."""
        if num_threads <= 0:
            raise SimulationError("need at least one thread")
        return self.run([body] * num_threads)
