"""User-defined labels: identity values, reduction handlers, splitters.

A *label* names one set of semantically-commutative operations
(Sec. III-A). Each label carries:

* an **identity value** used to initialize lines that enter U without data
  (GETU cases 4 and 5) — ``reduce(x, identity) == x`` must hold;
* a **reduction handler** that merges an incoming partial line into the
  local line (Sec. III-B4);
* optionally a **splitter** that donates part of the local line to a
  gather requester (Sec. IV).

Handlers come in two shapes:

* *word-wise pure* handlers (``reduce_word``/``split_word``) are applied to
  each of the line's 8 words independently. This covers ADD, MIN, MAX,
  ordered put, and every other flat value type. Cost: a fixed per-word
  charge on the shadow thread.
* *line-level* handlers (``reduce_line``/``split_line``) receive a
  :class:`HandlerContext` and may perform non-speculative memory accesses
  (charged to the shadow thread), which descriptor-based structures such as
  linked lists and top-K heaps need. Per the paper's deadlock rules, these
  accesses must not touch lines held in U state — the context enforces it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..errors import LabelError
from ..params import WORDS_PER_LINE


class HandlerContext:
    """Restricted memory interface handed to line-level handlers.

    Backed by the coherence layer; reads and writes are non-speculative and
    raise :class:`~repro.errors.ReductionError` if they would touch a line
    in U state (which would require a nested reduction — forbidden by
    Sec. III-B4).
    """

    def __init__(self, read_fn, write_fn):
        self._read = read_fn
        self._write = write_fn

    def read(self, addr: int) -> object:
        return self._read(addr)

    def write(self, addr: int, value: object) -> None:
        self._write(addr, value)


ReduceWordFn = Callable[[object, object], object]
SplitWordFn = Callable[[object, int], Tuple[object, object]]
ReduceLineFn = Callable[[HandlerContext, List[object], List[object]], List[object]]
SplitLineFn = Callable[
    [HandlerContext, List[object], int], Tuple[List[object], List[object]]
]


class Label:
    """One user-defined reducible label."""

    def __init__(
        self,
        name: str,
        identity: object,
        reduce_word: Optional[ReduceWordFn] = None,
        split_word: Optional[SplitWordFn] = None,
        reduce_line: Optional[ReduceLineFn] = None,
        split_line: Optional[SplitLineFn] = None,
        is_identity_word: Optional[Callable[[object], bool]] = None,
    ):
        if (reduce_word is None) == (reduce_line is None):
            raise LabelError(
                f"label {name!r}: exactly one of reduce_word/reduce_line required"
            )
        if split_word is not None and reduce_word is None:
            raise LabelError(f"label {name!r}: split_word requires reduce_word")
        if split_line is not None and reduce_line is None:
            raise LabelError(f"label {name!r}: split_line requires reduce_line")
        self.name = name
        self.identity = identity
        self._reduce_word = reduce_word
        self._split_word = split_word
        self._reduce_line = reduce_line
        self._split_line = split_line
        self._is_identity_word = is_identity_word
        #: Assigned by the registry.
        self.label_id: Optional[int] = None

    @property
    def supports_gather(self) -> bool:
        return self._split_word is not None or self._split_line is not None

    def identity_line(self) -> List[object]:
        return [self.identity] * WORDS_PER_LINE

    def is_identity_line(self, words: List[object]) -> bool:
        """True if ``words`` carries no information under this label.

        Routes through the label's own ``is_identity_word`` predicate when
        one is supplied: descriptor-based (line-level) labels often admit
        several encodings of "empty" — e.g. untouched memory words read as
        ``0`` while the declared identity is ``None`` or ``()`` — and plain
        word equality with the identity would misclassify them. The
        protocol uses this test to drop empty gather donations, so a wrong
        answer costs a needless (or a missed) reduction call.
        """
        pred = self._is_identity_word
        if pred is not None:
            return all(pred(w) for w in words)
        return all(w == self.identity for w in words)

    def reduce(self, ctx: HandlerContext, dst: List[object],
               src: List[object]) -> List[object]:
        """Merge partial line ``src`` into ``dst``, returning the result."""
        if self._reduce_word is not None:
            return [self._reduce_word(a, b) for a, b in zip(dst, src)]
        return self._reduce_line(ctx, list(dst), list(src))

    def split(self, ctx: HandlerContext, words: List[object],
              num_sharers: int) -> Tuple[List[object], List[object]]:
        """Split ``words`` into (kept, donated) for a gather request."""
        if not self.supports_gather:
            raise LabelError(f"label {self.name!r} has no splitter")
        if self._split_word is not None:
            kept, donated = [], []
            for w in words:
                k, d = self._split_word(w, num_sharers)
                kept.append(k)
                donated.append(d)
            return kept, donated
        return self._split_line(ctx, list(words), num_sharers)

    def __repr__(self) -> str:
        return f"Label({self.name!r}, id={self.label_id})"


def wordwise_label(name: str, identity: object, reduce_word: ReduceWordFn,
                   split_word: Optional[SplitWordFn] = None,
                   is_identity_word: Optional[Callable[[object], bool]] = None,
                   ) -> Label:
    """Convenience constructor for flat-value labels."""
    return Label(name, identity, reduce_word=reduce_word,
                 split_word=split_word, is_identity_word=is_identity_word)


class LabelRegistry:
    """Maps labels to the hardware label budget.

    The architecture supports ``num_hw_labels`` labels (Sec. III-A suggests
    8). Sec. III-D's *label virtualization* lets a toolchain map more
    program-level labels onto the budget; we model the link-time mapping:
    registering beyond the budget either raises (``virtualize=False``) or
    assigns hardware ids round-robin (``virtualize=True``) — sharing is safe
    only if the sharing operations never touch the same data, which is the
    workload author's contract, exactly as in the paper.
    """

    def __init__(self, num_hw_labels: int = 8, virtualize: bool = False):
        if num_hw_labels <= 0:
            raise LabelError("need at least one hardware label")
        self.num_hw_labels = num_hw_labels
        self.virtualize = virtualize
        self._labels: Dict[str, Label] = {}
        self._order: List[Label] = []

    def register(self, label: Label) -> Label:
        if label.name in self._labels:
            raise LabelError(f"label {label.name!r} already registered")
        index = len(self._order)
        if index >= self.num_hw_labels and not self.virtualize:
            raise LabelError(
                f"hardware label budget ({self.num_hw_labels}) exhausted; "
                f"enable virtualization or use fewer labels"
            )
        label.label_id = index % self.num_hw_labels
        self._labels[label.name] = label
        self._order.append(label)
        return label

    def get(self, name: str) -> Label:
        try:
            return self._labels[name]
        except KeyError:
            raise LabelError(f"unknown label {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._labels

    def __len__(self) -> int:
        return len(self._order)

    def names(self) -> List[str]:
        return [label.name for label in self._order]


# ---------------------------------------------------------------------------
# Standard labels used throughout the paper's benchmarks (Table II).
# ---------------------------------------------------------------------------

def add_label(name: str = "ADD") -> Label:
    """Commutative addition: deltas to shared counters (Sec. III-A)."""

    def split(value: object, num_sharers: int) -> Tuple[object, object]:
        # Donate ceil(value / numSharers), per the paper's add_split.
        if not isinstance(value, (int, float)) or value <= 0:
            return value, 0
        donation = -(-value // num_sharers) if isinstance(value, int) \
            else value / num_sharers
        return value - donation, donation

    label = wordwise_label(name, identity=0,
                           reduce_word=lambda a, b: a + b,
                           split_word=split)
    # Batched-reduction tag for the vector backend: folding plain-int ADD
    # lines in any association order is exact, so a numpy column sum may
    # stand in for the sequential merge (repro.sim.vector.kernels).
    label.vector_reduce = "add"
    return label


def min_label(name: str = "MIN") -> Label:
    """Keep the minimum (boruvka component union key, Table II).

    Identity is ``None`` (no value yet): reduce(x, None) == x.
    """

    def reduce(a: object, b: object) -> object:
        if a is None:
            return b
        if b is None:
            return a
        return a if a <= b else b

    label = wordwise_label(name, identity=None, reduce_word=reduce,
                           is_identity_word=lambda w: w is None)
    # Exact under any association order on all-int lines; the kernel
    # declines lines containing None (the identity encoding).
    label.vector_reduce = "min"
    return label


def max_label(name: str = "MAX") -> Label:
    """Keep the maximum (boruvka edge marking, Table II)."""

    def reduce(a: object, b: object) -> object:
        if a is None:
            return b
        if b is None:
            return a
        return a if a >= b else b

    label = wordwise_label(name, identity=None, reduce_word=reduce,
                           is_identity_word=lambda w: w is None)
    label.vector_reduce = "max"
    return label


def oput_label(name: str = "OPUT") -> Label:
    """Ordered put / priority update: keep the (key, value) pair with the
    lowest key (Sec. VI). Words hold ``(key, value)`` tuples or ``None``."""

    def reduce(a: object, b: object) -> object:
        # Untouched memory words read as 0; treat them as empty as well, so
        # identity padding holds for lines never explicitly initialized.
        if a is None or a == 0:
            return b
        if b is None or b == 0:
            return a
        return a if a[0] <= b[0] else b

    # Both None and 0 encode "no pair yet" (see reduce above), so the
    # identity test must accept both — otherwise gathers would forward
    # all-zero donated lines as if they carried data.
    label = wordwise_label(name, identity=None, reduce_word=reduce,
                           is_identity_word=lambda w: w is None or w == 0)
    # Words hold (key, value) tuples, which no int64 column kernel can
    # represent; reductions always run the sequential fold.
    label.interpreted_only = True
    return label
