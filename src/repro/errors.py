"""Exception hierarchy for the CommTM reproduction.

Every error raised by the simulator derives from :class:`ReproError` so that
callers can distinguish simulator-detected protocol violations from ordinary
Python bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid or inconsistent system configuration."""


class BackendUnavailableError(ConfigError):
    """An explicitly requested engine backend cannot run here.

    Raised when ``Machine(..., backend="vector")`` (or the harness's
    ``--backend vector``) asks for the numpy-backed vector engine on an
    install without numpy. An *environment*-requested vector backend
    (``REPRO_BACKEND=vector``) does not raise: it logs a warning and falls
    back to the interpreted engine, so a machine-wide export cannot break
    minimal installs (see :func:`repro.sim.vector.resolve_backend`).
    """


class MemoryError_(ReproError):
    """Invalid memory access (unmapped address, misalignment, ...)."""


class ProtocolError(ReproError):
    """Coherence protocol invariant violation.

    Raised when the simulated protocol reaches a state that the real
    hardware design rules out (e.g. two exclusive owners). Always a bug in
    the simulator or in user-supplied handlers, never expected at runtime.
    """


class LabelError(ReproError):
    """Invalid label usage (unregistered label, duplicate registration,
    exceeding the hardware label budget without virtualization)."""


class ReductionError(ReproError):
    """Illegal action inside a reduction or split handler.

    The paper (Sec. III-B4) forbids reduction handlers from triggering
    further reductions, i.e. from touching lines held in U state by other
    caches. We detect and raise instead of deadlocking.
    """


class SanitizerError(ReproError):
    """A coherence invariant was violated at a sanitizer checkpoint.

    Raised by :mod:`repro.analysis.sanitizer` (opt-in, ``REPRO_SANITIZE=1``)
    when the memory system's global state breaks an SWMR-style invariant:
    two exclusive holders, M/E coexisting with S/U copies, U sharers with
    disagreeing labels, or a directory entry out of sync with the private
    caches. Unlike :class:`ProtocolError` these are checked *between*
    protocol steps, over the whole machine, not at the point of a single
    illegal transition."""


class TransactionError(ReproError):
    """Misuse of the transactional API (e.g. tx_end without tx_begin,
    labeled access outside a transaction)."""


class SimulationError(ReproError):
    """Engine-level failure: deadlock (no runnable thread), livelock guard
    exceeded, or a thread raised inside its coroutine."""


class AbortTransaction(ReproError):
    """Internal control-flow signal: the current transaction must abort.

    Thrown into the transaction's generator by the engine; user code never
    catches it (the ``Atomic`` runner handles replay).
    """

    def __init__(self, cause: str = "conflict"):
        super().__init__(cause)
        self.cause = cause
