"""ssca2: scalable graph kernel (Sec. VII).

STAMP's ssca2 builds a large sparse graph data structure from an R-MAT
edge list; its transactions are tiny (append an edge to a node's adjacency
inside a transaction) and "spend little time in commutative updates to
shared, global graph metadata" (32-bit ADD per Table II). Contention is
rare — which is exactly why the paper measures only a 0.2% gain: there is
almost nothing for CommTM to help with.

We reproduce that profile: threads insert their chunk of R-MAT edges into
per-node adjacency cells (word-grained, low-contention conventional
accesses) and perform a commutative ADD to a handful of global counters
(total edges, total weight, max-degree tracking via MAX) — a vanishingly
small fraction of instructions.
"""

from __future__ import annotations

from ...core.labels import add_label, max_label
from ...mem.address import WORD_BYTES
from ...runtime.ops import Atomic
from ..inputs.graphs import Graph, rmat_graph
from ..micro.common import BuiltWorkload

DEFAULT_SCALE = 8  # 256 nodes (the paper uses -s16 on a real machine)


def build(machine, num_threads: int, scale: int = DEFAULT_SCALE,
          edge_factor: int = 4, seed: int = 1,
          graph: Graph = None) -> BuiltWorkload:
    if graph is None:
        graph = rmat_graph(scale, edge_factor=edge_factor, seed=seed)
    app = _Ssca2(machine, graph, num_threads)
    return BuiltWorkload(
        name="ssca2",
        bodies=[app.make_body(t) for t in range(num_threads)],
        verify=app.verify,
        info={"nodes": graph.num_nodes, "edges": graph.num_edges},
    )


def _chunk(n: int, parts: int, i: int) -> range:
    base, extra = divmod(n, parts)
    start = i * base + min(i, extra)
    return range(start, start + base + (1 if i < extra else 0))


class _Ssca2:
    def __init__(self, machine, graph: Graph, num_threads: int):
        self.machine = machine
        self.graph = graph
        self.num_threads = num_threads
        labels = machine.labels
        self.ADD = (labels.get("ADD") if "ADD" in labels
                    else machine.register_label(add_label()))
        self.MAX = (labels.get("MAX") if "MAX" in labels
                    else machine.register_label(max_label()))
        alloc = machine.alloc
        n = graph.num_nodes
        self.adjacency = alloc.alloc_words(n)   # tuple of (neighbor, w)
        self.edges_arr = alloc.alloc_words(max(1, graph.num_edges))
        self.total_edges = alloc.alloc_line()   # ADD
        self.total_weight = alloc.alloc_line()  # ADD
        self.max_degree = alloc.alloc_line()    # MAX
        machine.seed_word(self.max_degree, None)
        for i in range(n):
            machine.seed_word(self.adjacency + i * WORD_BYTES, ())
        for eid, e in enumerate(graph.edges):
            machine.seed_word(self.edges_arr + eid * WORD_BYTES, e)

    #: Threads batch global-metadata updates locally and publish once per
    #: BATCH edges: ssca2 "spends little time in commutative updates to
    #: shared, global graph metadata" (labeled fraction ~6e-7 in Sec. VII).
    BATCH = 32

    def _insert_edge(self, ctx, eid: int):
        u, v, w = yield ctx.load(self.edges_arr + eid * WORD_BYTES)
        addr = self.adjacency + u * WORD_BYTES
        adj = yield ctx.load(addr)
        adj = adj if adj != 0 else ()
        yield ctx.work(2 + len(adj) // 8)
        adj = adj + ((v, w),)
        yield ctx.store(addr, adj)
        return len(adj), w

    def _publish_metadata(self, ctx, count: int, weight: int, degree: int):
        te = yield ctx.labeled_load(self.total_edges, self.ADD)
        yield ctx.labeled_store(self.total_edges, self.ADD, te + count)
        tw = yield ctx.labeled_load(self.total_weight, self.ADD)
        yield ctx.labeled_store(self.total_weight, self.ADD, tw + weight)
        deg = yield ctx.labeled_load(self.max_degree, self.MAX)
        if deg is None or degree > deg:
            yield ctx.labeled_store(self.max_degree, self.MAX, degree)

    def make_body(self, tid: int):
        my_edges = _chunk(self.graph.num_edges, self.num_threads, tid)

        def body(ctx):
            pending_count = 0
            pending_weight = 0
            pending_degree = 0
            for eid in my_edges:
                # The kernel's per-edge computation dwarfs the transactional
                # part (ssca2's labeled fraction is ~6e-7 in the paper).
                yield ctx.work(400)
                deg, w = yield Atomic(self._insert_edge, eid)
                pending_count += 1
                pending_weight += w
                pending_degree = max(pending_degree, deg)
                if pending_count >= self.BATCH:
                    yield Atomic(self._publish_metadata, pending_count,
                                 pending_weight, pending_degree)
                    pending_count = pending_weight = pending_degree = 0
            if pending_count:
                yield Atomic(self._publish_metadata, pending_count,
                             pending_weight, pending_degree)

        return body

    def verify(self, machine) -> None:
        machine.flush_reducible()
        te = machine.read_word(self.total_edges)
        tw = machine.read_word(self.total_weight)
        if te != self.graph.num_edges:
            raise AssertionError(
                f"ssca2: edge count {te} != {self.graph.num_edges}"
            )
        expected_weight = sum(w for _u, _v, w in self.graph.edges)
        if tw != expected_weight:
            raise AssertionError(
                f"ssca2: weight {tw} != {expected_weight}"
            )
        degrees = {}
        for u, _v, _w in self.graph.edges:
            degrees[u] = degrees.get(u, 0) + 1
        seen_max = machine.read_word(self.max_degree)
        if degrees and seen_max != max(degrees.values()):
            raise AssertionError(
                f"ssca2: max degree {seen_max} != {max(degrees.values())}"
            )
        for u in range(self.graph.num_nodes):
            adj = machine.read_word(self.adjacency + u * WORD_BYTES)
            adj = adj if adj != 0 else ()
            if len(adj) != degrees.get(u, 0):
                raise AssertionError(f"ssca2: node {u} adjacency wrong")
