"""genome: gene sequencing (Sec. VII).

STAMP's genome has three phases; the transactional hot spot is phase 1,
which deduplicates gene segments by inserting them into a hash set. Per
Table II the paper compiles it with *resizable* hash tables [Blundell
et al.], whose remaining-space counter is a bounded 64-bit ADD — a
conditionally-commutative operation that uses gather requests.

We reproduce that profile: threads insert their chunk of segments into a
:class:`~repro.datatypes.hash_table.ResizableHashTable` (dedup by segment
key), with the per-segment hashing/compare work modelled as computation;
a second phase does the overlap-matching computation on the deduplicated
segments (little shared state, as in the original).
"""

from __future__ import annotations

from ...mem.address import WORD_BYTES
from ...runtime.ops import Atomic, BARRIER
from ...datatypes.hash_table import ResizableHashTable
from ..inputs.genes import make_segments
from ..micro.common import BuiltWorkload

DEFAULT_GENE_LENGTH = 1024
DEFAULT_SEGMENT_LENGTH = 16
DEFAULT_SEGMENTS = 2048


def build(machine, num_threads: int,
          gene_length: int = DEFAULT_GENE_LENGTH,
          segment_length: int = DEFAULT_SEGMENT_LENGTH,
          num_segments: int = DEFAULT_SEGMENTS,
          initial_buckets: int = None,
          use_gather: bool = True, seed: int = 1) -> BuiltWorkload:
    if initial_buckets is None:
        # Size the table so resizes are rare events, as in the paper's
        # 640k-insert runs: scaled-down runs must not spend a large
        # fraction of their time at global-zero remaining space, where
        # every thread gathers and races to resize.
        initial_buckets = max(64, num_segments // 6)
    gene, segments = make_segments(gene_length, segment_length,
                                   num_segments, seed=seed)
    app = _Genome(machine, segments, num_threads, initial_buckets,
                  use_gather)
    return BuiltWorkload(
        name="genome",
        bodies=[app.make_body(t) for t in range(num_threads)],
        verify=app.verify,
        info={"segments": num_segments,
              "unique": len(set(segments))},
    )


def _chunk(n: int, parts: int, i: int) -> range:
    base, extra = divmod(n, parts)
    start = i * base + min(i, extra)
    return range(start, start + base + (1 if i < extra else 0))


class _Genome:
    def __init__(self, machine, segments, num_threads, initial_buckets,
                 use_gather):
        self.machine = machine
        self.segments = segments
        self.num_threads = num_threads
        self.table = ResizableHashTable(machine, num_buckets=initial_buckets,
                                        use_gather=use_gather)
        self.table.distribute_remaining(num_threads)
        alloc = machine.alloc
        self.segments_arr = alloc.alloc_words(len(segments))
        for i, seg in enumerate(segments):
            machine.seed_word(self.segments_arr + i * WORD_BYTES, seg)

    def _dedup_insert(self, ctx, i: int):
        """Insert segment i if not already present (phase 1)."""
        seg = yield ctx.load(self.segments_arr + i * WORD_BYTES)
        existing = yield from self.table.lookup(ctx, seg)
        if existing is not None:
            return False
        yield from self.table.insert(ctx, seg, i)
        return True

    def make_body(self, tid: int):
        my_segments = _chunk(len(self.segments), self.num_threads, tid)

        def body(ctx):
            # Phase 1: deduplicate segments via hash-set inserts.
            for i in my_segments:
                yield ctx.work(200)  # segment hashing + compare
                yield Atomic(self._dedup_insert, i)
            yield BARRIER
            # Phase 2: overlap matching on the deduplicated segments —
            # compute-dominated, no shared transactional state.
            for _i in my_segments:
                yield ctx.work(400)

        return body

    def verify(self, machine) -> None:
        machine.flush_reducible()
        expected = set(self.segments)
        base, num_buckets, _cap = machine.read_word(self.table.meta_addr)
        keys = []
        for i in range(num_buckets):
            chain = machine.read_word(base + i * WORD_BYTES)
            if chain == 0:
                continue
            keys.extend(k for k, _v in chain)
        if len(keys) != len(set(keys)):
            raise AssertionError("genome: duplicate segments in the table")
        if set(keys) != expected:
            raise AssertionError(
                f"genome: table has {len(set(keys))} unique segments, "
                f"expected {len(expected)}"
            )
