"""kmeans: clustering with commutative centroid updates (Sec. VII).

STAMP's kmeans assigns points to the nearest centroid and accumulates each
cluster's coordinate sums and membership count inside transactions —
commutative 32-bit (FP) ADDs per Table II, and the paper's best case
(3.4x over the baseline at 128 threads): with a conventional HTM every
accumulator update serializes; with CommTM they buffer locally in U lines.

One line per cluster holds ``dims`` fixed-point sums plus a count (up to 7
dims), all under the ADD label — the paper's multiple-values-per-line
convention. Iterations are round-synchronous: accumulate, then leaders
read the accumulators (reductions) and publish new centroids.

Coordinates are fixed-point integers so host-side verification is exact.
"""

from __future__ import annotations

from ...core.labels import add_label
from ...mem.address import LINE_BYTES, WORD_BYTES
from ...runtime.ops import Atomic, BARRIER
from ..micro.common import BuiltWorkload

DEFAULT_POINTS = 512
DEFAULT_CLUSTERS = 8
DEFAULT_DIMS = 4
DEFAULT_ITERS = 3
SCALE = 1 << 16  # fixed-point scale


def build(machine, num_threads: int, num_points: int = DEFAULT_POINTS,
          clusters: int = DEFAULT_CLUSTERS, dims: int = DEFAULT_DIMS,
          iterations: int = DEFAULT_ITERS, seed: int = 1) -> BuiltWorkload:
    if dims + 1 > LINE_BYTES // WORD_BYTES:
        raise ValueError("dims+1 words must fit in one line")
    app = _KMeans(machine, num_threads, num_points, clusters, dims,
                  iterations, seed)
    return BuiltWorkload(
        name="kmeans",
        bodies=[app.make_body(t) for t in range(num_threads)],
        verify=app.verify,
        info={"points": num_points, "clusters": clusters, "dims": dims,
              "iterations": iterations},
    )


def _chunk(n: int, parts: int, i: int) -> range:
    base, extra = divmod(n, parts)
    start = i * base + min(i, extra)
    return range(start, start + base + (1 if i < extra else 0))


class _KMeans:
    def __init__(self, machine, num_threads, num_points, clusters, dims,
                 iterations, seed):
        self.machine = machine
        self.num_threads = num_threads
        self.num_points = num_points
        self.clusters = clusters
        self.dims = dims
        self.iterations = iterations
        labels = machine.labels
        self.ADD = (labels.get("ADD") if "ADD" in labels
                    else machine.register_label(add_label()))

        rng = machine.rng.workload(f"kmeans/{seed}")
        self.points = [
            tuple(rng.randrange(SCALE) for _ in range(dims))
            for _ in range(num_points)
        ]
        alloc = machine.alloc
        # Input points: one word per point (tuple of fixed-point coords).
        self.points_arr = alloc.alloc_words(num_points)
        for i, p in enumerate(self.points):
            machine.seed_word(self.points_arr + i * WORD_BYTES, p)
        # Published centroids: one word per cluster.
        self.centroids_arr = alloc.alloc_words(clusters)
        initial = [self.points[i % num_points] for i in range(clusters)]
        for c, cent in enumerate(initial):
            machine.seed_word(self.centroids_arr + c * WORD_BYTES, cent)
        # Accumulators: one line per cluster (dims sums + count), ADD label.
        self.accum = [alloc.alloc_line() for _ in range(clusters)]

    # --- transactional pieces -------------------------------------------------

    def _accumulate(self, ctx, cluster: int, point):
        """Commutative adds of the point's coords and a count of one."""
        base = self.accum[cluster]
        for d, coord in enumerate(point):
            addr = base + d * WORD_BYTES
            cur = yield ctx.labeled_load(addr, self.ADD)
            yield ctx.labeled_store(addr, self.ADD, cur + coord)
        caddr = base + self.dims * WORD_BYTES
        cnt = yield ctx.labeled_load(caddr, self.ADD)
        yield ctx.labeled_store(caddr, self.ADD, cnt + 1)

    def _recompute(self, ctx, cluster: int):
        """Leader: read the accumulator (reduction), publish the centroid,
        and reset the accumulator with conventional stores."""
        base = self.accum[cluster]
        sums = []
        for d in range(self.dims):
            v = yield ctx.load(base + d * WORD_BYTES)
            sums.append(v)
        cnt = yield ctx.load(base + self.dims * WORD_BYTES)
        if cnt:
            centroid = tuple(s // cnt for s in sums)
            yield ctx.store(self.centroids_arr + cluster * WORD_BYTES, centroid)
        for d in range(self.dims + 1):
            yield ctx.store(base + d * WORD_BYTES, 0)

    # --- SPMD body ---------------------------------------------------------------

    def make_body(self, tid: int):
        my_points = _chunk(self.num_points, self.num_threads, tid)
        my_clusters = _chunk(self.clusters, self.num_threads, tid)

        def body(ctx):
            for _ in range(self.iterations):
                centroids = []
                for c in range(self.clusters):
                    v = yield ctx.load(self.centroids_arr + c * WORD_BYTES)
                    centroids.append(v)
                for i in my_points:
                    point = yield ctx.load(self.points_arr + i * WORD_BYTES)
                    yield ctx.work(8 * self.dims * self.clusters + 100)  # distances
                    best = _nearest(point, centroids)
                    yield Atomic(self._accumulate, best, point)
                yield BARRIER
                for c in my_clusters:
                    yield Atomic(self._recompute, c)
                yield BARRIER

        return body

    # --- verification -----------------------------------------------------------

    def verify(self, machine) -> None:
        machine.flush_reducible()
        expected = self._reference()
        for c in range(self.clusters):
            got = machine.read_word(self.centroids_arr + c * WORD_BYTES)
            if tuple(got) != expected[c]:
                raise AssertionError(
                    f"kmeans: centroid {c} is {got}, expected {expected[c]}"
                )

    def _reference(self):
        centroids = [self.points[i % self.num_points]
                     for i in range(self.clusters)]
        for _ in range(self.iterations):
            sums = [[0] * self.dims for _ in range(self.clusters)]
            counts = [0] * self.clusters
            for p in self.points:
                best = _nearest(p, centroids)
                for d in range(self.dims):
                    sums[best][d] += p[d]
                counts[best] += 1
            centroids = [
                tuple(sums[c][d] // counts[c] for d in range(self.dims))
                if counts[c] else centroids[c]
                for c in range(self.clusters)
            ]
        return centroids


def _nearest(point, centroids) -> int:
    # Explicit loop on purpose: this runs once per simulated point-visit
    # (and again in the verification reference), and a generator-expression
    # sum() with ** costs ~3x an unrolled multiply-accumulate here.
    best, best_d = 0, None
    for c, cent in enumerate(centroids):
        d = 0
        for a, b in zip(point, cent):
            diff = a - b
            d += diff * diff
        if best_d is None or d < best_d:
            best, best_d = c, d
    return best
