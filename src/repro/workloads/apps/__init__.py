"""Full TM applications (Sec. VII, Table II).

* ``boruvka`` — minimum spanning tree, implemented from scratch as in the
  paper, using OPUT (min-weight edge per component), MIN (component
  union / hooking), MAX (marking MST edges), and ADD (MST weight).
* ``kmeans`` — clustering with commutative ADD updates to shared centroids.
* ``ssca2`` — graph kernel with rare commutative updates to global metadata.
* ``genome`` — gene sequencing; resizable hash-table deduplication whose
  remaining-space bounded counter uses gathers.
* ``vacation`` — travel reservation database on resizable hash tables.

Each module exposes ``build(machine, num_threads, **params)`` returning a
:class:`~repro.workloads.micro.common.BuiltWorkload`.
"""

from . import boruvka, kmeans, ssca2, genome, vacation

__all__ = ["boruvka", "kmeans", "ssca2", "genome", "vacation"]
