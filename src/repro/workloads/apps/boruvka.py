"""boruvka: parallel minimum spanning tree (Sec. VII, Table II).

The paper implements boruvka from scratch with four commutative operation
types; we follow that recipe:

* **OPUT** (64-bit-key ordered put): each component records its
  minimum-weight outgoing edge.
* **MIN**: components union by hooking the larger root id to the smaller
  (monotonically decreasing parent pointers — naturally commutative).
* **MAX**: edges added to the MST are marked.
* **ADD**: the MST's total weight is accumulated.

Round structure (SPMD with barriers):

1. *Select*: threads scan their edge chunk; for each edge whose endpoints
   are in different components, OPUT ``(w, eid, cu, cv, u, v)`` into both
   components' min-edge cells.
2. *Process*: for each root component, read its min-edge cell (a normal
   read — triggers the OPUT reduction); the smaller-root side ("owner")
   adds the edge: MAX-marks it, ADDs its weight, and MIN-hooks the larger
   root to the smaller.
3. *Fix-up & compress*: lost MIN updates (two unions targeting the same
   cell keep only the smaller) are repaired by re-hooking each added edge
   until its endpoints share a root — acyclic because hooks only ever
   decrease. Threads then path-compress their nodes (compression itself is
   a MIN update!) and reset their min-edge cells.
4. Thread 0 publishes whether any union happened; no progress ends the
   loop.

Input: a usroads-like synthetic road network (see
``repro.workloads.inputs.graphs``); distinct weights make the MST unique,
so verification against a host-side reference MST is exact.
"""

from __future__ import annotations

from ...core.labels import add_label, max_label, min_label, oput_label
from ...mem.address import WORD_BYTES
from ...runtime.ops import Atomic, BARRIER
from ..inputs.graphs import Graph, road_network
from ..micro.common import BuiltWorkload

DEFAULT_NODES = 192
MAX_FIND_DEPTH = 10_000


def build(machine, num_threads: int, num_nodes: int = DEFAULT_NODES,
          extra_edge_factor: float = 1.3, seed: int = 1,
          graph: Graph = None) -> BuiltWorkload:
    if graph is None:
        graph = road_network(num_nodes, extra_edge_factor, seed=seed)
    app = _Boruvka(machine, graph, num_threads)
    return BuiltWorkload(
        name="boruvka",
        bodies=[app.make_body(t) for t in range(num_threads)],
        verify=app.verify,
        info={"nodes": graph.num_nodes, "edges": graph.num_edges},
    )


def _chunk(n: int, parts: int, i: int) -> range:
    base, extra = divmod(n, parts)
    start = i * base + min(i, extra)
    return range(start, start + base + (1 if i < extra else 0))


class _Boruvka:
    def __init__(self, machine, graph: Graph, num_threads: int):
        self.machine = machine
        self.graph = graph
        self.num_threads = num_threads
        labels = machine.labels
        self.OPUT = (labels.get("OPUT") if "OPUT" in labels
                     else machine.register_label(oput_label()))
        self.MIN = (labels.get("MIN") if "MIN" in labels
                    else machine.register_label(min_label()))
        self.MAX = (labels.get("MAX") if "MAX" in labels
                    else machine.register_label(max_label()))
        self.ADD = (labels.get("ADD") if "ADD" in labels
                    else machine.register_label(add_label()))

        n, e = graph.num_nodes, graph.num_edges
        alloc = machine.alloc
        self.hooks = alloc.alloc_words(n)        # MIN cells, 8 per line
        self.minedge = alloc.alloc_words(n)      # OPUT cells
        self.marks = alloc.alloc_words(e)        # MAX cells
        self.edges_arr = alloc.alloc_words(e)    # read-only (u, v, w)
        self.weight = alloc.alloc_line()         # ADD cell
        self.max_rounds = 2 * max(1, n - 1).bit_length() + 4
        self.progress = alloc.alloc_words(self.max_rounds)  # ADD cells
        self.flag = alloc.alloc_line()

        for i in range(n):
            machine.seed_word(self.hooks + i * WORD_BYTES, i)
            machine.seed_word(self.minedge + i * WORD_BYTES, None)
        for eid, (u, v, w) in enumerate(graph.edges):
            machine.seed_word(self.edges_arr + eid * WORD_BYTES, (u, v, w))
            machine.seed_word(self.marks + eid * WORD_BYTES, None)

    # --- address helpers -----------------------------------------------------

    def _hook(self, i: int) -> int:
        return self.hooks + i * WORD_BYTES

    def _minedge(self, c: int) -> int:
        return self.minedge + c * WORD_BYTES

    def _mark(self, eid: int) -> int:
        return self.marks + eid * WORD_BYTES

    # --- transactional pieces ----------------------------------------------

    def _find(self, ctx, node: int):
        """Chase hook pointers with conventional loads (reduces MIN lines).
        Generator sub-routine: use with ``yield from``."""
        cur = node
        for _ in range(MAX_FIND_DEPTH):
            parent = yield ctx.load(self._hook(cur))
            if parent is None or parent == cur:
                return cur
            cur = parent
        raise AssertionError("hook chain too deep (cycle?)")

    def _select_edge(self, ctx, eid: int):
        u, v, w = yield ctx.load(self.edges_arr + eid * WORD_BYTES)
        cu = yield from self._find(ctx, u)
        cv = yield from self._find(ctx, v)
        if cu == cv:
            return False
        lo, hi = (cu, cv) if cu < cv else (cv, cu)
        pair = (w, eid, lo, hi, u, v)
        for c in (lo, hi):
            cur = yield ctx.labeled_load(self._minedge(c), self.OPUT)
            if cur is None or cur == 0 or pair[0] < cur[0]:
                yield ctx.labeled_store(self._minedge(c), self.OPUT, pair)
        return True

    def _process_component(self, ctx, c: int, rnd: int):
        pair = yield ctx.load(self._minedge(c))  # OPUT reduction
        if pair is None or pair == 0:
            return None
        w, eid, lo, hi, u, v = pair
        if c != lo:
            # Mutual-minimum dedupe: when both endpoints selected the same
            # edge, only the smaller root adds it; otherwise this (larger)
            # root adds its own min edge.
            lo_pair = yield ctx.load(self._minedge(lo))
            if lo_pair == pair:
                return None
        # Mark the edge in the MST (64-bit MAX per the paper).
        mark = yield ctx.labeled_load(self._mark(eid), self.MAX)
        if mark is None or mark < 1:
            yield ctx.labeled_store(self._mark(eid), self.MAX, 1)
        # Accumulate total weight (ADD).
        total = yield ctx.labeled_load(self.weight, self.ADD)
        yield ctx.labeled_store(self.weight, self.ADD, total + w)
        # Union: hook the larger root to the smaller (MIN).
        cur = yield ctx.labeled_load(self._hook(hi), self.MIN)
        if cur is None or lo < cur:
            yield ctx.labeled_store(self._hook(hi), self.MIN, lo)
        # Count progress for the termination check (ADD).
        p = yield ctx.labeled_load(self.progress + rnd * WORD_BYTES, self.ADD)
        yield ctx.labeled_store(self.progress + rnd * WORD_BYTES, self.ADD, p + 1)
        return (u, v)

    def _fixup_step(self, ctx, u: int, v: int):
        """Repair a lost union: returns True when u and v share a root."""
        ru = yield from self._find(ctx, u)
        rv = yield from self._find(ctx, v)
        if ru == rv:
            return True
        lo, hi = (ru, rv) if ru < rv else (rv, ru)
        cur = yield ctx.labeled_load(self._hook(hi), self.MIN)
        if cur is None or lo < cur:
            yield ctx.labeled_store(self._hook(hi), self.MIN, lo)
        return False

    def _compress_and_reset(self, ctx, c: int):
        root = yield from self._find(ctx, c)
        if root != c:
            cur = yield ctx.labeled_load(self._hook(c), self.MIN)
            if cur is None or root < cur:
                yield ctx.labeled_store(self._hook(c), self.MIN, root)
        yield ctx.store(self._minedge(c), None)  # reset the OPUT cell

    def _publish_flag(self, ctx, rnd: int):
        count = yield ctx.load(self.progress + rnd * WORD_BYTES)
        yield ctx.store(self.flag, 1 if count else 0)

    # --- SPMD body ------------------------------------------------------------

    def make_body(self, tid: int):
        my_edges = _chunk(self.graph.num_edges, self.num_threads, tid)
        my_nodes = _chunk(self.graph.num_nodes, self.num_threads, tid)

        def body(ctx):
            for rnd in range(self.max_rounds):
                added = []
                for eid in my_edges:
                    # Loop control, index arithmetic, weight compares, and
                    # the graph-traversal bookkeeping zsim would execute.
                    yield ctx.work(180)
                    yield Atomic(self._select_edge, eid)
                yield BARRIER
                for c in my_nodes:
                    edge = yield Atomic(self._process_component, c, rnd)
                    if edge is not None:
                        added.append(edge)
                yield BARRIER
                for (u, v) in added:
                    for _ in range(MAX_FIND_DEPTH):
                        done = yield Atomic(self._fixup_step, u, v)
                        if done:
                            break
                for c in my_nodes:
                    yield Atomic(self._compress_and_reset, c)
                yield BARRIER
                if tid == 0:
                    yield Atomic(self._publish_flag, rnd)
                yield BARRIER
                flag = yield ctx.load(self.flag)
                if not flag:
                    return

        return body

    # --- verification -----------------------------------------------------------

    def verify(self, machine) -> None:
        machine.flush_reducible()
        expected_weight, expected_edges = _reference_mst(self.graph)
        weight = machine.read_word(self.weight)
        marked = set()
        for eid in range(self.graph.num_edges):
            if machine.read_word(self._mark(eid)):
                marked.add(eid)
        if weight != expected_weight:
            raise AssertionError(
                f"boruvka: MST weight {weight} != expected {expected_weight}"
            )
        if marked != expected_edges:
            raise AssertionError(
                f"boruvka: marked {len(marked)} edges, expected "
                f"{len(expected_edges)} (sets differ)"
            )
        # All nodes must share one root.
        roots = set()
        for i in range(self.graph.num_nodes):
            cur = i
            for _ in range(MAX_FIND_DEPTH):
                parent = machine.read_word(self._hook(cur))
                if parent is None or parent == cur:
                    break
                cur = parent
            roots.add(cur)
        if len(roots) != 1:
            raise AssertionError(f"boruvka: {len(roots)} roots remain")


def _reference_mst(graph: Graph):
    """Kruskal on the host; distinct weights make the MST unique."""
    parent = list(range(graph.num_nodes))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0
    chosen = set()
    for eid, (u, v, w) in sorted(enumerate(graph.edges),
                                 key=lambda kv: kv[1][2]):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += w
            chosen.add(eid)
    return total, chosen
