"""vacation: travel reservation system (Sec. VII).

STAMP's vacation runs an in-memory travel database (cars, flights, rooms,
customers) under an OLTP-style mix: reservations (lookups + booking
updates), customer deletions, and table updates. Per Table II the paper
compiles it with resizable hash tables whose remaining-space bounded
counters (64-bit ADD with gathers) are the commutative hot spot.

We model each relation as a :class:`ResizableHashTable` storing resource
records ``(total, available, price)`` and a reservations table mapping
``(customer, kind, resource)`` to bookings. Reservations update resource
availability in place (conventional read-modify-writes on the bucket) and
insert a booking (hash-table insert — the counter decrement).
"""

from __future__ import annotations

from ...runtime.ops import Atomic
from ...datatypes.hash_table import ResizableHashTable
from ..inputs.travel import make_requests
from ..micro.common import BuiltWorkload, split_ops

DEFAULT_TASKS = 2048
DEFAULT_RELATIONS = 128


def build(machine, num_threads: int, num_tasks: int = DEFAULT_TASKS,
          relations: int = DEFAULT_RELATIONS, items_per_task: int = 2,
          query_pct: int = 60, user_pct: int = 90,
          initial_buckets: int = None,
          use_gather: bool = True, seed: int = 1) -> BuiltWorkload:
    if initial_buckets is None:
        # Leave headroom beyond the host-seeded relations and expected
        # bookings so resizes are rare (the paper's regime; see genome).
        initial_buckets = max(32, relations // 2)
    requests = make_requests(num_tasks, items_per_task=items_per_task,
                             query_pct=query_pct, user_pct=user_pct,
                             relations=relations, seed=seed)
    app = _Vacation(machine, requests, num_threads, relations,
                    initial_buckets, use_gather, seed)
    return BuiltWorkload(
        name="vacation",
        bodies=[app.make_body(t) for t in range(num_threads)],
        verify=app.verify,
        info={"tasks": num_tasks, "relations": relations},
    )


class _Vacation:
    def __init__(self, machine, requests, num_threads, relations,
                 initial_buckets, use_gather, seed):
        self.machine = machine
        self.requests = requests
        self.num_threads = num_threads
        self.relations = relations
        self.resources = {
            kind: ResizableHashTable(machine, num_buckets=initial_buckets,
                                     use_gather=use_gather)
            for kind in ("car", "flight", "room")
        }
        # Bookings accumulate (deletions release only a sample), so the
        # reservations table needs headroom proportional to the task count.
        # The remaining-space counter's gather regime is scale-sensitive
        # (see EXPERIMENTS.md): at paper scale the counter approaches zero
        # only in brief resize epochs; a scaled-down run must keep the same
        # property or every thread ends up in gather/resize retry storms.
        reservation_buckets = max(initial_buckets, len(requests) // 4)
        self.reservations = ResizableHashTable(
            machine, num_buckets=reservation_buckets, use_gather=use_gather
        )
        rng = machine.rng.workload(f"vacation-setup/{seed}")
        self._seed_resources(rng)
        for table in (*self.resources.values(), self.reservations):
            table.distribute_remaining(num_threads)
        #: Host-side log of committed bookings, for verification
        #: (appended only after Atomic returns).
        self.booked = []

    def _seed_resources(self, rng) -> None:
        """Populate relations before the parallel region (setup phase)."""
        for kind, table in self.resources.items():
            for rid in range(self.relations):
                total = rng.randrange(1, 6)
                price = rng.randrange(50, 500)
                self._host_insert(table, rid, (total, total, price))

    def _host_insert(self, table, key, value) -> None:
        """Direct (pre-run) insert without simulated cycles."""
        machine = self.machine
        base, num_buckets, capacity = machine.memory.read_word(
            table.meta_addr
        )
        addr = table._bucket_addr(base, num_buckets, key)
        chain = machine.memory.read_word(addr)
        chain = chain if chain != 0 else ()
        machine.memory.write_word(addr, chain + ((key, value),))
        remaining = machine.memory.read_word(table.remaining.addr)
        machine.memory.write_word(table.remaining.addr, remaining - 1)

    # --- transactional request handlers -----------------------------------------

    def _reserve(self, ctx, customer, items):
        """Book every available item; returns booked item list."""
        booked = []
        for kind, rid in items:
            yield ctx.work(20)  # request parsing / price comparison
            record = yield from self.resources[kind].lookup(ctx, rid)
            if record is None:
                continue
            total, available, price = record
            if available <= 0:
                continue
            already = yield from self.reservations.lookup(
                ctx, (customer, kind, rid)
            )
            if already is not None:
                continue  # one booking per (customer, resource)
            # Update availability in place (conventional RMW on the
            # bucket), then insert the booking (counter decrement).
            yield from self.resources[kind].remove(ctx, rid)
            yield from self.resources[kind].insert(
                ctx, rid, (total, available - 1, price)
            )
            yield from self.reservations.insert(
                ctx, (customer, kind, rid), price
            )
            booked.append((kind, rid))
        return booked

    def _delete_customer(self, ctx, customer):
        """Release all of a customer's bookings (scan + removes)."""
        released = []
        for kind in ("car", "flight", "room"):
            for rid in range(0, self.relations, 16):  # sampled scan
                yield ctx.work(4)
                price = yield from self.reservations.lookup(
                    ctx, (customer, kind, rid)
                )
                if price is None:
                    continue
                yield from self.reservations.remove(ctx, (customer, kind, rid))
                record = yield from self.resources[kind].lookup(ctx, rid)
                if record is not None:
                    total, available, p = record
                    yield from self.resources[kind].remove(ctx, rid)
                    yield from self.resources[kind].insert(
                        ctx, rid, (total, available + 1, p)
                    )
                released.append((kind, rid))
        return released

    def _update_tables(self, ctx, customer, items):
        """Admin task: grow or reprice resources."""
        for kind, rid in items:
            yield ctx.work(10)
            record = yield from self.resources[kind].lookup(ctx, rid)
            if record is None:
                continue
            total, available, price = record
            yield from self.resources[kind].remove(ctx, rid)
            yield from self.resources[kind].insert(
                ctx, rid, (total + 1, available + 1, price)
            )
        return None

    # --- SPMD body -----------------------------------------------------------------

    def make_body(self, tid: int):
        counts = split_ops(len(self.requests), self.num_threads)
        start = sum(counts[:tid])
        my_requests = self.requests[start:start + counts[tid]]

        def body(ctx):
            for req in my_requests:
                yield ctx.work(150)  # client think time
                if req.action == "reserve":
                    booked = yield Atomic(self._reserve, req.customer,
                                          req.items)
                    for item in booked:
                        self.booked.append((req.customer, item))
                elif req.action == "delete_customer":
                    yield Atomic(self._delete_customer, req.customer)
                else:
                    yield Atomic(self._update_tables, req.customer,
                                 req.items)

        return body

    # --- verification -----------------------------------------------------------------

    def verify(self, machine) -> None:
        machine.flush_reducible()
        # Conservation: for every resource, (total - available) must equal
        # the number of live reservations for it.
        live = {}
        res_snapshot = self.reservations.snapshot()
        for (customer, kind, rid), _price in res_snapshot.items():
            live[(kind, rid)] = live.get((kind, rid), 0) + 1
        for kind, table in self.resources.items():
            snap = table.snapshot()
            for rid, (total, available, _price) in snap.items():
                outstanding = live.get((kind, rid), 0)
                if total - available != outstanding:
                    raise AssertionError(
                        f"vacation: {kind} {rid}: total {total}, available "
                        f"{available}, but {outstanding} live reservations"
                    )
                if available < 0:
                    raise AssertionError(
                        f"vacation: negative availability on {kind} {rid}"
                    )