"""Synthetic input generators replacing the paper's external datasets.

The paper uses the usroads graph [16] for boruvka and STAMP's built-in
generators for the others. We substitute deterministic synthetic inputs
with the same structural character (see DESIGN.md):

* :func:`~repro.workloads.inputs.graphs.road_network` — sparse, connected,
  near-planar, low-degree graph with distinct edge weights (usroads-like).
* :func:`~repro.workloads.inputs.graphs.rmat_graph` — power-law R-MAT graph
  (ssca2's input class).
* :func:`~repro.workloads.inputs.genes.make_segments` — overlapping gene
  segments with duplicates (genome's input class).
* :func:`~repro.workloads.inputs.travel.TravelDatabase` — relations and
  request mix mirroring vacation's parameters.
"""

from .graphs import road_network, rmat_graph
from .genes import make_segments
from .travel import make_requests

__all__ = ["road_network", "rmat_graph", "make_segments", "make_requests"]
