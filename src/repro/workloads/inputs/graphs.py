"""Graph generators.

``road_network`` substitutes the usroads dataset: road networks are sparse
(average degree ~2.5), connected, and near-planar. We build a random
spanning tree over points in the unit square plus extra short edges, with
strictly distinct weights (unique MST, which makes verification exact).

``rmat_graph`` substitutes ssca2's scale-free input (the R-MAT recursive
quadrant model with the canonical a/b/c/d parameters).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

Edge = Tuple[int, int, int]  # (u, v, weight)


@dataclass
class Graph:
    num_nodes: int
    edges: List[Edge] = field(default_factory=list)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def degree_sum(self) -> int:
        return 2 * len(self.edges)


def road_network(num_nodes: int, extra_edge_factor: float = 1.3,
                 seed: int = 1) -> Graph:
    """Connected sparse graph with distinct integer weights.

    A random spanning tree guarantees connectivity; ``extra_edge_factor``
    scales total edges relative to nodes (usroads has |E|/|V| ~ 1.2).
    Distances between random planar points drive the weights; a unique
    low-order tiebreak makes every weight distinct.
    """
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    rng = random.Random(f"road/{seed}")
    points = [(rng.random(), rng.random()) for _ in range(num_nodes)]

    def dist2(a: int, b: int) -> float:
        ax, ay = points[a]
        bx, by = points[b]
        return (ax - bx) ** 2 + (ay - by) ** 2

    edges: List[Edge] = []
    seen = set()

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        key = (min(u, v), max(u, v))
        if key in seen:
            return
        seen.add(key)
        # Distinct weights: scaled distance with a unique tiebreak.
        weight = int(dist2(u, v) * 10_000_000) * 100_000 + len(edges)
        edges.append((key[0], key[1], weight))

    order = list(range(num_nodes))
    rng.shuffle(order)
    for i in range(1, num_nodes):
        add_edge(order[i], order[rng.randrange(i)])

    target = int(num_nodes * extra_edge_factor)
    attempts = 0
    while len(edges) < target and attempts < 20 * target:
        attempts += 1
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        add_edge(u, v)

    rng.shuffle(edges)
    return Graph(num_nodes=num_nodes, edges=edges)


def rmat_graph(scale: int, edge_factor: int = 8, seed: int = 1,
               a: float = 0.57, b: float = 0.19, c: float = 0.19) -> Graph:
    """R-MAT power-law graph: 2**scale nodes, edge_factor * nodes edges."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    rng = random.Random(f"rmat/{seed}")
    num_nodes = 1 << scale
    num_edges = edge_factor * num_nodes
    edges: List[Edge] = []
    for i in range(num_edges):
        u = v = 0
        for _ in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.append((u, v, rng.randrange(1, 1 << 30)))
    return Graph(num_nodes=num_nodes, edges=edges)
