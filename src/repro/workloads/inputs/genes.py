"""Gene-segment generator (genome's input class).

genome -g<G> -s<S> -n<N>: a gene of length G is cut into N segments of
length S with overlaps and duplicates; the benchmark first deduplicates the
segments (hash-set inserts — the transactional hot path), then matches
overlaps to reassemble. We generate the same structure: a random gene
string, N random windows of length S (duplicates arise naturally), encoded
as integers for table keys.
"""

from __future__ import annotations

import random
from typing import List, Tuple

ALPHABET = "acgt"


def make_segments(gene_length: int, segment_length: int, num_segments: int,
                  seed: int = 1) -> Tuple[str, List[str]]:
    """Return (gene, segments). Segments are substrings of the gene."""
    if segment_length > gene_length:
        raise ValueError("segment longer than gene")
    rng = random.Random(f"gene/{seed}")
    gene = "".join(rng.choice(ALPHABET) for _ in range(gene_length))
    max_start = gene_length - segment_length
    segments = []
    # Guarantee coverage (every position appears in some segment), as the
    # real generator does, then fill with random windows (duplicates occur
    # once num_segments exceeds the number of distinct windows).
    starts = list(range(0, max_start + 1, max(1, segment_length // 2)))
    for start in starts:
        segments.append(gene[start:start + segment_length])
    while len(segments) < num_segments:
        start = rng.randrange(max_start + 1)
        segments.append(gene[start:start + segment_length])
    rng.shuffle(segments)
    return gene, segments[:num_segments]
