"""Travel-reservation request generator (vacation's input class).

vacation -n<N> -q<Q> -u<U> -r<R> -t<T>: T client tasks, each touching N
items; Q% of the relation's id range is queried; U% of tasks are
reservations/bookings, the rest split between deletions and table updates.
We generate the same request stream shape.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

RESOURCE_KINDS = ("car", "flight", "room")


@dataclass(frozen=True)
class Request:
    action: str           # "reserve" | "delete_customer" | "update_tables"
    customer: int
    items: tuple          # (kind, resource_id) pairs


def make_requests(num_tasks: int, items_per_task: int = 4,
                  query_pct: int = 60, user_pct: int = 90,
                  relations: int = 256, seed: int = 1) -> List[Request]:
    rng = random.Random(f"travel/{seed}")
    query_range = max(1, relations * query_pct // 100)
    requests = []
    for _ in range(num_tasks):
        r = rng.randrange(100)
        customer = rng.randrange(relations)
        items = tuple(
            (rng.choice(RESOURCE_KINDS), rng.randrange(query_range))
            for _ in range(items_per_task)
        )
        if r < user_pct:
            action = "reserve"
        elif r < user_pct + (100 - user_pct) // 2:
            action = "delete_customer"
        else:
            action = "update_tables"
        requests.append(Request(action=action, customer=customer,
                                items=items))
    return requests
