"""Workloads: the paper's microbenchmarks (Sec. VI) and full TM
applications (Sec. VII), plus synthetic input generators."""
