"""Counter-increment microbenchmark (Sec. VI, Fig. 9).

Threads perform ``total_ops`` increments to a single shared counter. The
paper runs 10M increments; the default here is scaled down (speedups are
per-operation cost ratios and saturate quickly), and is a parameter.
"""

from __future__ import annotations

from ...datatypes.counter import SharedCounter
from ...runtime.ops import Atomic
from .common import BuiltWorkload, split_ops

DEFAULT_OPS = 20_000


def build(machine, num_threads: int, total_ops: int = DEFAULT_OPS,
          think_cycles: int = 0) -> BuiltWorkload:
    counter = SharedCounter(machine)
    if machine.config.commtm_enabled and num_threads > 1:
        # Start in steady state: every running core already holds the line
        # in U with a zero partial (the paper's 10M-op runs amortize the
        # one-time GETU acquisition; scaled-down runs must not be dominated
        # by it). See Machine.seed_reducible.
        machine.seed_reducible(counter.addr, counter.label,
                               {core: 0 for core in range(num_threads)})
    per_thread = split_ops(total_ops, num_threads)

    def make_body(ops: int):
        def body(ctx):
            # Loop-invariant Atomic, hoisted: the engine retains it only
            # for abort replay, which completes before the body resumes,
            # so one instance safely serves every iteration.
            add_one = Atomic(counter.add, 1)
            for _ in range(ops):
                if think_cycles:
                    yield ctx.work(think_cycles)
                yield add_one
        return body

    def verify(m):
        m.flush_reducible()
        final = m.read_word(counter.addr)
        if final != total_ops:
            raise AssertionError(
                f"counter: expected {total_ops}, got {final}"
            )

    return BuiltWorkload(
        name="counter",
        bodies=[make_body(n) for n in per_thread],
        verify=verify,
        info={"total_ops": total_ops, "counter_addr": counter.addr},
    )
