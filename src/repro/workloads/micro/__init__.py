"""Microbenchmarks (Sec. VI): counter increments, reference counting,
linked lists, ordered puts, top-K insertions.

Each module exposes ``build(machine, num_threads, **params)`` returning a
:class:`~repro.workloads.micro.common.BuiltWorkload` with per-thread bodies
and a post-run verifier.
"""

from .common import BuiltWorkload, split_ops
from . import counter, refcount, linked_list, ordered_put, topk

__all__ = [
    "BuiltWorkload",
    "split_ops",
    "counter",
    "refcount",
    "linked_list",
    "ordered_put",
    "topk",
]
