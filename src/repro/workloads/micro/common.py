"""Shared workload plumbing.

Host-side result recording rule: transactions replay on abort, so any
host-side bookkeeping (appending to lists, counting) must happen *after*
an ``Atomic`` returns, never inside the transaction generator. All
workloads here follow that rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class BuiltWorkload:
    """A workload instantiated on a machine, ready to run."""

    name: str
    bodies: List[Callable]
    #: Called after the run (machine passed); raises on semantic errors.
    verify: Optional[Callable] = None
    #: Free-form extras exposed to benches (e.g. expected totals).
    info: dict = field(default_factory=dict)


def split_ops(total_ops: int, num_threads: int) -> List[int]:
    """Divide ``total_ops`` across threads (first threads take remainders)."""
    if num_threads <= 0:
        raise ValueError("need at least one thread")
    base, extra = divmod(total_ops, num_threads)
    return [base + (1 if t < extra else 0) for t in range(num_threads)]
