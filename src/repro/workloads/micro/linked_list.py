"""Linked-list microbenchmark (Sec. VI, Fig. 12).

Threads enqueue and dequeue elements from a singly-linked list used as an
unordered structure. Two mixes, as in the paper: 100% enqueues (Fig. 12a)
and 50% enqueues / 50% dequeues randomly interleaved (Fig. 12b).

In the baseline HTM the descriptor accesses become conventional loads and
stores (head and tail in one word models the paper's separate-cache-line
allocation: there is no false sharing, just true descriptor contention).
"""

from __future__ import annotations

from ...datatypes.linked_list import ConcurrentLinkedList
from ...mem.address import WORD_BYTES
from ...runtime.ops import Atomic
from .common import BuiltWorkload, split_ops

DEFAULT_OPS = 20_000

#: Non-transactional per-iteration loop work (see refcount.THINK_CYCLES).
THINK_CYCLES = 40


def build(machine, num_threads: int, total_ops: int = DEFAULT_OPS,
          enqueue_fraction: float = 1.0, use_gather: bool = True,
          think_cycles: int = THINK_CYCLES,
          prefill: int = 0) -> BuiltWorkload:
    if not 0.0 <= enqueue_fraction <= 1.0:
        raise ValueError("enqueue_fraction must be in [0, 1]")
    lst = ConcurrentLinkedList(machine, use_gather=use_gather)
    per_thread = split_ops(total_ops, num_threads)
    log = {"enqueued": [], "dequeued": [], "empty_dequeues": 0}
    if prefill:
        log["enqueued"].extend(_prefill(machine, lst, prefill, num_threads))
    elif machine.config.commtm_enabled and num_threads > 1:
        # Steady-state start: U pre-granted with empty partial lists (see
        # counter.build for rationale).
        machine.seed_reducible(lst.desc_addr, lst.label,
                               {core: 0 for core in range(num_threads)})

    def make_body(tid: int, ops: int):
        def body(ctx):
            rng = ctx.rng
            for i in range(ops):
                if think_cycles:
                    yield ctx.work(think_cycles)
                if enqueue_fraction >= 1.0 or rng.random() < enqueue_fraction:
                    value = (tid << 32) | i
                    yield Atomic(lst.enqueue, value)
                    log["enqueued"].append(value)
                else:
                    value = yield Atomic(lst.dequeue)
                    if value is None:
                        log["empty_dequeues"] += 1
                    else:
                        log["dequeued"].append(value)
        return body

    def verify(m):
        m.flush_reducible()
        remaining = _walk(m, lst.desc_addr)
        enq = set(log["enqueued"])
        deq = set(log["dequeued"])
        if len(deq) != len(log["dequeued"]):
            raise AssertionError("an element was dequeued twice")
        if not deq <= enq:
            raise AssertionError("dequeued an element never enqueued")
        if set(remaining) != enq - deq:
            raise AssertionError(
                f"list contents wrong: {len(remaining)} remaining, "
                f"expected {len(enq) - len(deq)}"
            )

    def _walk(m, desc_addr):
        desc = m.read_word(desc_addr)
        items = []
        if desc == 0:
            return items
        node, tail = desc
        while node != 0:
            items.append(m.read_word(node))
            node = m.read_word(node + WORD_BYTES)
        return items

    return BuiltWorkload(
        name="linked_list" if enqueue_fraction >= 1.0 else "linked_list_mixed",
        bodies=[make_body(t, n) for t, n in enumerate(per_thread)],
        verify=verify,
        info={"total_ops": total_ops,
              "enqueue_fraction": enqueue_fraction,
              "log": log},
    )


def _prefill(machine, lst, count: int, num_threads: int):
    """Seed the list with ``count`` elements before the parallel region.

    With CommTM enabled the elements are distributed as per-core partial
    lists in U state (the steady-state shape after warmup — see
    Machine.seed_reducible); the baseline gets one chain in memory.
    """
    values = [(0xFFFF << 32) | i for i in range(count)]
    nodes = []
    for value in values:
        node = machine.alloc.alloc_words(2)
        machine.seed_word(node, value)
        machine.seed_word(node + WORD_BYTES, 0)
        nodes.append(node)

    if machine.config.commtm_enabled and num_threads > 1:
        descs = {}
        for core in range(num_threads):
            chain = nodes[core::num_threads]
            if not chain:
                continue
            for a, b in zip(chain, chain[1:]):
                machine.seed_word(a + WORD_BYTES, b)
            descs[core] = (chain[0], chain[-1])
        machine.seed_reducible(lst.desc_addr, lst.label, descs)
    else:
        for a, b in zip(nodes, nodes[1:]):
            machine.seed_word(a + WORD_BYTES, b)
        machine.seed_word(lst.desc_addr, (nodes[0], nodes[-1]))
    return values
