"""Reference-counting microbenchmark (Sec. VI, Fig. 10).

Threads acquire and release references on 16 objects, implemented as
bounded non-negative counters. Per the paper: each thread starts with
three references to each object and holds at most ten; on every iteration
it picks a random object and increments or decrements its count with the
increment probability decreasing linearly from 1.0 (no references held)
to 0.0 (ten held).

Three configurations: CommTM with gather requests, CommTM without
(``use_gather=False``), and the baseline (machine configured with
``commtm_enabled=False``).
"""

from __future__ import annotations

from ...datatypes.bounded_counter import BoundedCounter
from ...runtime.ops import Atomic
from .common import BuiltWorkload, split_ops

DEFAULT_OPS = 20_000
NUM_OBJECTS = 16
INITIAL_REFS = 3
MAX_REFS = 10

#: Per-iteration work outside the transaction: object selection, random
#: draws, probability computation (the paper's cores are IPC-1, so this is
#: just the non-transactional instruction count of the loop body).
THINK_CYCLES = 60


def build(machine, num_threads: int, total_ops: int = DEFAULT_OPS,
          use_gather: bool = True, think_cycles: int = THINK_CYCLES,
          num_objects: int = NUM_OBJECTS) -> BuiltWorkload:
    counters = []
    for _ in range(num_objects):
        counter = BoundedCounter(machine, use_gather=use_gather)
        # Each thread starts holding INITIAL_REFS references per object.
        # Start in steady state (see Machine.seed_reducible) with the
        # counter mass deliberately distributed *unlike* the held counts:
        # in the paper the mass starts concentrated and never matches who
        # holds what, which is exactly what makes local-zero decrements —
        # and hence gathers/reductions — a persistent effect rather than a
        # one-off warmup.
        total = INITIAL_REFS * num_threads
        skew = {}
        for core in range(num_threads):
            share = min(2 * INITIAL_REFS, total) if core % 2 == 0 else 0
            skew[core] = share
            total -= share
        skew[num_threads - 1] += total  # exact total = held total
        machine.seed_reducible(counter.addr, counter.label, skew)
        counters.append(counter)
    per_thread = split_ops(total_ops, num_threads)
    final_held = {}

    def make_body(tid: int, ops: int):
        def body(ctx):
            held = [INITIAL_REFS] * num_objects
            rng = ctx.rng
            for _ in range(ops):
                if think_cycles:
                    yield ctx.work(think_cycles)
                obj = rng.randrange(num_objects)
                p_inc = 1.0 - held[obj] / MAX_REFS
                if rng.random() < p_inc:
                    ok = yield Atomic(counters[obj].increment, 1)
                    if ok:
                        held[obj] += 1
                else:
                    ok = yield Atomic(counters[obj].decrement)
                    if ok:
                        held[obj] -= 1
                    elif held[obj] > 0:
                        raise AssertionError(
                            "bounded counter refused a decrement while "
                            "references are held"
                        )
            final_held[tid] = held
        return body

    def verify(m):
        m.flush_reducible()
        for obj, counter in enumerate(counters):
            value = m.read_word(counter.addr)
            expected = sum(h[obj] for h in final_held.values())
            if value != expected:
                raise AssertionError(
                    f"refcount object {obj}: counter {value} != "
                    f"held total {expected}"
                )
            if value < 0:
                raise AssertionError(f"refcount object {obj} negative")

    return BuiltWorkload(
        name="refcount",
        bodies=[make_body(t, n) for t, n in enumerate(per_thread)],
        verify=verify,
        info={"total_ops": total_ops, "use_gather": use_gather},
    )
