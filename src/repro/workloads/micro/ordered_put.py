"""Ordered-put microbenchmark (Sec. VI, Fig. 13).

Threads perform priority updates with randomly-generated 64-bit keys and
values on a shared key-value cell; the cell must end up holding the
minimum-keyed pair. The baseline scales partially (only smaller keys cause
conflicting writes — reads still serialize on the invalidations), which is
why the paper reports a 3.8x rather than 128x gap.
"""

from __future__ import annotations

from ...datatypes.ordered_put import OrderedPutCell
from ...runtime.ops import Atomic
from .common import BuiltWorkload, split_ops

DEFAULT_OPS = 20_000
KEY_BITS = 64


def build(machine, num_threads: int, total_ops: int = DEFAULT_OPS) -> BuiltWorkload:
    cell = OrderedPutCell(machine)
    if machine.config.commtm_enabled and num_threads > 1:
        # Steady-state start: U pre-granted with identity partials (see
        # counter.build for rationale).
        machine.seed_reducible(cell.addr, cell.label,
                               {core: None for core in range(num_threads)})
    per_thread = split_ops(total_ops, num_threads)
    issued = []

    def make_body(tid: int, ops: int):
        def body(ctx):
            rng = ctx.rng
            for _ in range(ops):
                key = rng.getrandbits(KEY_BITS)
                value = rng.getrandbits(KEY_BITS)
                yield Atomic(cell.put, key, value)
                issued.append((key, value))
        return body

    def verify(m):
        m.flush_reducible()
        final = m.read_word(cell.addr)
        expected = min(issued, key=lambda kv: kv[0])
        if final is None or final[0] != expected[0]:
            raise AssertionError(
                f"ordered put: final {final} != min issued {expected}"
            )

    return BuiltWorkload(
        name="ordered_put",
        bodies=[make_body(t, n) for t, n in enumerate(per_thread)],
        verify=verify,
        info={"total_ops": total_ops},
    )
