"""Top-K insertion microbenchmark (Sec. VI, Fig. 14).

Threads insert random elements into a top-K set (the paper: 10M inserts,
K = 1000; scaled by default). Inserts build thread-local heaps under the
TOPK label; the final read triggers the K-way merge of Fig. 15.
"""

from __future__ import annotations

from ...datatypes.topk import TopKSet
from ...runtime.ops import Atomic
from .common import BuiltWorkload, split_ops

DEFAULT_OPS = 20_000
DEFAULT_K = 100


def build(machine, num_threads: int, total_ops: int = DEFAULT_OPS,
          k: int = DEFAULT_K) -> BuiltWorkload:
    topk = TopKSet(machine, k=k)
    if machine.config.commtm_enabled and num_threads > 1:
        # Steady-state start: U pre-granted with empty local heaps (see
        # counter.build for rationale).
        machine.seed_reducible(topk.addr, topk.label,
                               {core: () for core in range(num_threads)})
    per_thread = split_ops(total_ops, num_threads)
    issued = []

    def make_body(tid: int, ops: int):
        def body(ctx):
            rng = ctx.rng
            for _ in range(ops):
                value = rng.getrandbits(48)
                yield Atomic(topk.insert, value)
                issued.append(value)
        return body

    def verify(m):
        m.flush_reducible()
        final = m.read_word(topk.addr)
        final = () if final == 0 else final
        expected = tuple(sorted(issued)[-k:])
        if tuple(final) != expected:
            raise AssertionError(
                f"top-{k}: got {len(final)} elements, mismatch with expected"
            )

    return BuiltWorkload(
        name="topk",
        bodies=[make_body(t, n) for t, n in enumerate(per_thread)],
        verify=verify,
        info={"total_ops": total_ops, "k": k},
    )
