"""Deterministic random-number streams.

The paper achieves statistically-significant results by injecting "small
amounts of non-determinism" [Alameldeen & Wood] and averaging over runs.
We reproduce that with named, independently-seeded streams so that, e.g.,
backoff jitter and workload key generation never perturb each other: adding
draws to one stream leaves every other stream's sequence unchanged.
"""

from __future__ import annotations

import random
from typing import Dict


class RngStreams:
    """A family of independent :class:`random.Random` streams.

    Each named stream is seeded from ``(seed, name)`` so the same
    configuration seed always reproduces the same run.
    """

    def __init__(self, seed: int):
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with this name."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(f"{self._seed}/{name}")
            self._streams[name] = rng
        return rng

    def backoff(self) -> random.Random:
        """Stream used for transaction-abort backoff jitter."""
        return self.stream("backoff")

    def jitter(self) -> random.Random:
        """Stream used for initial per-core clock skew."""
        return self.stream("jitter")

    def eviction(self) -> random.Random:
        """Stream used to pick the random sharer that absorbs an evicted
        U-state line (Sec. III-B5)."""
        return self.stream("eviction")

    def workload(self, name: str = "workload") -> random.Random:
        """Stream for workload input generation."""
        return self.stream(name)
