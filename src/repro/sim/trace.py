"""Execution tracing: per-core event logs and ASCII timelines.

Enable with ``SystemConfig(trace_enabled=True)``; the machine then records
transaction begins/commits/aborts, reductions, and gathers with their
simulated cycle, and :func:`render_timeline` draws them as per-core lanes —
the form of the paper's Fig. 1, recoverable for any workload
(see ``examples/fig1_timeline.py``).

For structured traces (typed spans with abort attribution, Perfetto
export, counter tracks), see :mod:`repro.obs` — this flat tracer stays the
lightweight in-process view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional


class EventKind(enum.Enum):
    TX_BEGIN = "("
    TX_COMMIT = "C"
    TX_ABORT = "x"
    REDUCTION = "R"
    GATHER = "G"
    BARRIER = "|"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    cycle: int
    core: int
    kind: EventKind
    detail: str = ""


class Tracer:
    """Collects :class:`TraceEvent`s when enabled (zero cost otherwise).

    When disabled, ``record`` is rebound to a no-op at construction so the
    engine's hot loop pays one short-circuited call instead of attribute
    tests per event.

    The event list is bounded by ``limit``; events past it are *counted*
    in :attr:`dropped` (and reported by :meth:`counts` and
    :func:`render_timeline`) rather than silently discarded.
    """

    def __init__(self, enabled: bool = False, limit: int = 100_000):
        self.enabled = enabled
        self.limit = limit
        self.events: List[TraceEvent] = []
        self.dropped = 0
        if not enabled:
            self.record = self._record_disabled

    def record(self, cycle: int, core: int, kind: EventKind,
               detail: str = "") -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(cycle, core, kind, detail))

    def _record_disabled(self, cycle: int, core: int, kind: EventKind,
                         detail: str = "") -> None:
        return None

    def for_core(self, core: int) -> List[TraceEvent]:
        return [e for e in self.events if e.core == core]

    def counts(self) -> dict:
        out = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        out["dropped"] = self.dropped
        return out


def render_timeline(tracer: Tracer, cores: Optional[List[int]] = None,
                    width: int = 72, title: str = "") -> str:
    """ASCII timeline: one lane per core, events placed by cycle.

    ``(`` tx begin, ``C`` commit, ``x`` abort, ``R`` reduction,
    ``G`` gather, ``|`` barrier. Events sharing a column keep the
    most severe one (abort > commit > begin); each lane is annotated with
    its per-kind totals so collisions never under-report, and a warning
    line appears when the tracer hit its event limit.
    """
    events = tracer.events
    if not events:
        return title or "(no events)"
    if cores is None:
        cores = sorted({e.core for e in events})
    t_min = min(e.cycle for e in events)
    t_max = max(e.cycle for e in events)
    span = max(1, t_max - t_min)

    severity = {
        EventKind.TX_BEGIN: 0,
        EventKind.BARRIER: 1,
        EventKind.GATHER: 2,
        EventKind.REDUCTION: 3,
        EventKind.TX_COMMIT: 4,
        EventKind.TX_ABORT: 5,
    }

    lines: List[str] = []
    if title:
        lines.append(title)
    for core in cores:
        lane = [" "] * width
        best = [-1] * width
        totals: dict = {}
        for e in events:
            if e.core != core:
                continue
            totals[e.kind] = totals.get(e.kind, 0) + 1
            col = min(width - 1, int((e.cycle - t_min) * (width - 1) / span))
            if severity[e.kind] > best[col]:
                best[col] = severity[e.kind]
                lane[col] = e.kind.value
        annot = " ".join(f"{kind.value}:{totals[kind]}"
                         for kind in severity if kind in totals)
        lines.append(f"core {core:>3} |" + "".join(lane) + "|  " + annot)
    lines.append(f"{'':>9}{t_min} .. {t_max} cycles")
    lines.append("legend: ( begin   C commit   x abort   R reduction   "
                 "G gather   | barrier   (lane totals follow each lane)")
    if tracer.dropped:
        lines.append(f"warning: {tracer.dropped} event(s) dropped at the "
                     f"{tracer.limit}-event limit; lane totals cover "
                     f"recorded events only")
    return "\n".join(lines)
