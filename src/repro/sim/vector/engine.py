"""VectorEngine: epoch-batched execution with per-op interpreted fallback.

The interpreted engine advances one core by one operation per scheduler
step, paying the full dispatch/handler/heap machinery each time even when
the operation is a guaranteed private-cache hit. This engine alternates
between two phases:

**Fence-bounded epochs** (:meth:`VectorEngine._run_epoch`). Every live,
unblocked core's pulled operation is classified: *local* operations —
think time, a private-hit load/store, a labeled update on this core's own
M/E/U line, a whole transaction fusible through :mod:`.kernels` — enter a
private min-start heap; everything else (a miss, a barrier, a transaction
restart, thread completion) becomes a *fence* at its start time. The
epoch then pops the heap and executes every local operation starting
strictly before the earliest fence; after each execution the core pulls
and classifies its next operation, re-entering the heap (so one core
chains through a whole local region) or lowering the fence. Statistics
land in per-core columns
(:class:`~repro.sim.vector.columns.EpochColumns`) that numpy reduces into
the ordinary ``Stats`` fields when the run completes.

*Why the interleaving is bit-identical to strict min-clock order*: local
operations touch only their own core's private cache (plus additive
global counters), so local operations commute with each other — only
their multiset matters, and that is exactly the set the strict scheduler
would execute before reaching the earliest fenced event. A fence
discovered mid-epoch sits at ``t + d`` of an operation just executed
with duration ``d >= 1`` — strictly after every operation executed so
far (heap pops are monotone in start time) — so it never invalidates
completed work; a tie between a local operation and a fence is never
executed (strict ``t < fence``), because the strict scheduler's
``(stamp, core)`` tie-break could order the fenced event first.
Durations are exact by construction: a classified operation's latency
depends only on this core's cache state, which no other core can change
during an epoch. Zero-duration operations (``Work(0)``) are never
classified local — their ``t + d`` would not move past a tie — and fall
to the strict phase instead.

**Certified protocol accesses** (:meth:`VectorEngine._certify_proto`).
Three event classes that used to fence every epoch now execute inside
it: deterministic misses and S-upgrades (closed-form latency predicted
from the precomputed NoC/directory tables and validated against the
real handler's charge), word-wise reductions (batched through the numpy
kernel in :mod:`.kernels` when exact), and gathers. A certified access
runs the *real* ``MemorySystem`` handler at its heap-pop time — the
strict scheduler's execution point — so it is bit-identical by
construction; certification merely proves the transition cannot abort,
NACK, or nondeterministically evict. Because these accesses mutate
shared state, every later fused/fast/proto pop re-validates its
precomputed snapshot and fences on disagreement.

**Adaptive backend gate + fenced replay** (:meth:`VectorEngine._run_vector`).
Workloads that never engage epochs (e.g. conventional-HTM baselines
whose every access conflicts) pay the classification attempts as pure
host overhead: after a warmup, if the share of simulated cycles executed
inside epochs stays below a threshold, the run rebinds to one
uninterrupted strict (run-ahead) pass. Symmetrically, when several cores
fence in one attempt (a barrier wave, a burst of uncertifiable misses),
the strict phase gets at least one op per fenced event so the whole wave
replays as one sorted batch. Every fence increments a cause histogram
(``Stats.host_vector_fence_causes``).

**Strict phases** (:meth:`VectorEngine._strict_stepper`). An exact clone of
``Engine._run_runahead`` — same heap, same ``(stamp, core)`` tie-break,
same stale-entry requeue — extended to (a) consume operations the epoch
certification pulled but did not execute, (b) discard a pulled operation
when its transaction aborts (replay re-creates it), and (c) stop after an
operation budget so the engine can re-attempt an epoch. The budget starts
small and doubles every time an epoch attempt fails, so irregular regions
(conflicts, barriers, reductions) degrade gracefully toward plain
run-ahead execution instead of thrashing on failed certifications.

Epochs batch per-op work, so anything that must see every operation —
the coherence sanitizer, the Perfetto tracer, the ``REPRO_NO_FASTPATH``
/ ``REPRO_NO_RUNAHEAD`` reference modes, lazy conflict detection —
forces the whole run down the interpreted engine, with a logged notice
(never a silently unchecked epoch).

**Observability** (``REPRO_OBS``) is the exception: the obs layer *is*
vector-native. Strict phases reuse the interpreted hooks verbatim (obs
disables the interpreted fast path, so every strict access passes the
full handlers); certified K_PROTO / K_FMISS accesses run the real
handlers with ``Requester.now`` set, so touch/NACK/reduction/gather
metrics fire naturally; epoch fast hits and fused transactions
*synthesize* the emissions the interpreted run would have made — one
touch per access, a begin span at the strict begin cycle, and a commit
record **deferred** to its closed-form commit cycle (commit emissions
sample machine-wide counters, so they must fire at their exact strict
``(cycle, core)`` position, after every earlier event's mutations; see
:meth:`VectorEngine._fire_deferred_obs`). The engine additionally feeds
a dedicated vector lane (epoch spans, certifier mispredicts, gate
rebinds, drain regions) and the host self-profiler
(:mod:`repro.obs.hostprof`) — both outside the per-core payload the
parity oracle compares. ``tests/test_vector_obs_parity.py`` proves the
resulting obs payload identical to the interpreted run's.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ...coherence.messages import AccessKind, Requester
from ...coherence.states import State
from ...errors import SimulationError
from ...runtime.ops import (
    Atomic,
    Barrier,
    Load,
    LabeledLoad,
    LabeledStore,
    LoadGather,
    Store,
    Work,
)
from ..engine import (
    _FINISHED,
    Engine,
    Frame,
    NO_FASTPATH_ENV,
    NO_RUNAHEAD_ENV,
    fastpath_enabled,
    runahead_enabled,
)
from . import certify, log
from .columns import EpochColumns
from .kernels import lower_atomic, reduce_lines

_M = State.M
_E = State.E
_S = State.S
_U = State.U
_I = State.I

# Operation kinds a classified record can carry. Conventional routes of
# LabeledLoad/LabeledStore/LoadGather (baseline HTM, labels disabled) also
# classify as K_LOAD/K_STORE — no labeled counts, mirroring the engine.
# K_BEGIN/K_COMMIT bracket *interpreted* transactions run inside an epoch:
# begin draws its timestamp in heap-pop (= strict) order, commit is
# core-local under eager conflict detection. K_PROTO carries a certified
# *full-protocol* access — a miss, an S-upgrade, a reduction, a gather —
# whose outcome :meth:`VectorEngine._certify_proto` proved deterministic
# from the current directory/sharer snapshot: executed at heap-pop time
# (= the strict scheduler's execution point) through the real
# ``MemorySystem`` handlers, so it is bit-identical by construction.
K_WORK = 0
K_FUSED = 1
K_LOAD = 2
K_STORE = 3
K_LLOAD = 4
K_LSTORE = 5
K_BEGIN = 6
K_COMMIT = 7
K_PROTO = 8
#: K_PROTO sub-kind for labeled gathers (record ``data`` field only; a
#: record's ``kind`` is never K_GATHER).
K_GATHER = 9

#: Engine op-kind -> protocol AccessKind, for the extracted certifier.
_CERTIFY_KINDS = {
    K_LOAD: AccessKind.LOAD,
    K_STORE: AccessKind.STORE,
    K_LLOAD: AccessKind.LABELED_LOAD,
    K_LSTORE: AccessKind.LABELED_STORE,
    K_GATHER: AccessKind.GATHER,
}
#: An aborted transaction's restart (backoff draw + stall + re-begin),
#: executed at the core's heap-pop time — exactly the point the strict
#: scheduler would call ``_restart_tx`` — so the rng draw order matches.
K_RESTART = 10
#: A barrier arrival. Arrivals execute at heap-pop time (= strict arrival
#: order); the non-last arrivers block and leave the epoch, and the last
#: arrival's release — which can only fire when every other live core is
#: already waiting, i.e. with an empty epoch heap — re-admits the whole
#: wave into the *same* epoch at the release time.
K_BARRIER = 11
#: First-touch fused transaction, phase 1: the real ``htm.begin`` (the
#: timestamp draw happens in heap-pop = strict order). The body is
#: scheduled as its own record at ``t + tx_begin_cycles`` because between
#: begin and first access the transaction has no footprint — other cores'
#: records must interleave exactly as the strict schedule would.
K_FMISS_BEGIN = 12
#: First-touch fused transaction, phase 2: one certified GETU install
#: through the real protocol handlers, the remaining labeled hits closed
#: form (they all L1-hit the just-installed line), and the real commit.
#: Re-certified at its own pop; on decline it falls back to the
#: interpreted transaction by materializing the frame the strict begin
#: would have created.
K_FMISS_BODY = 13

# Strict-phase op budget between epoch attempts: doubles while epoch
# attempts keep yielding nothing (irregular region), shrinks back toward
# the minimum when epochs are productive. Small minimum on purpose: an
# epoch usually ends at one fenced event (a single miss or barrier
# arrival), so a large strict quantum would overshoot it and interpret
# work the next epoch could have batched.
_MIN_BURST = 8
_MAX_BURST = 4096

# Adaptive backend gate (mirrors the interpreted engine's fast-path
# warmup): after this many epoch attempts, if the share of simulated
# cycles executed inside epochs is below the threshold, the run rebinds
# to a single uninterrupted strict (run-ahead) pass — epoch attempts are
# pure host-side overhead on workloads that never engage them.
_GATE_WARMUP_EPOCHS = 32
_GATE_MIN_SHARE = 0.5
# Early exit from the warmup itself: each attempt costs a full scan of
# every runner, so a workload that is recognizably fence-bound should not
# pay for the whole warmup. The cumulative epoch-cycle share only *falls*
# on such workloads (every contended phase repeats), so a share already
# well below full engagement after a handful of attempts is decisive —
# measured trajectories separate cleanly (a fence-bound counter run sits
# near 0.6 by attempt four and keeps falling, an epoch-friendly kmeans
# run stays above 0.95). The early bar is deliberately *higher* than
# _GATE_MIN_SHARE: past the warmup the accumulated evidence justifies a
# lower bar.
_GATE_EARLY_ATTEMPTS = 4
_GATE_EARLY_SHARE = 0.65


class VectorEngine(Engine):
    """Engine backend ``"vector"``: wavefront epochs + strict fallback."""

    def __init__(self, machine, bodies):
        super().__init__(machine, bodies)
        msys = self.msys
        self._caches = msys.caches
        self._l1_lat = msys._l1_latency
        self._l12_lat = msys._l12_latency
        self._fused_base = self._tx_begin_cycles + self._tx_commit_cycles
        #: Commits may execute inside epochs only with a nonzero latency:
        #: a zero-duration event could tie with a fenced one at the same
        #: cycle, where the strict tie-break might order the fence first.
        self._commit_local = self._tx_commit_cycles >= 1
        self._cols = EpochColumns(self.config.num_cores)
        #: Per-epoch memo of validated fused targets:
        #: (core, line, label, idx0, n) -> CacheLine.
        self._fused_ok: dict = {}
        #: Why the most recent _classify call declined (fence-cause
        #: histogram; see Stats.host_vector_fence_causes).
        self._decline = "unclassified"
        #: Restarts may run in-epoch only when they cannot take zero
        #: cycles (backoff_cycles returns >= 1 whenever base > 0): a
        #: zero-duration event could tie with a fence at its own start.
        self._restart_local = (self.config.backoff_base > 0
                               or self._tx_begin_cycles >= 1)
        # Batched reduction seam: word-wise reductions and gather merges
        # collect the sharer lines and fold them in one numpy pass
        # (bit-identical words and charge; see kernels.reduce_lines).
        msys.reduction_kernel = self._reduction_kernel
        #: Synthesized commit emissions awaiting their strict positions:
        #: a heapq of ``(cycle, core, committed_cycles, reads, writes,
        #: labeled, attempt)``. Commit emissions sample machine-wide
        #: counters, so a fused transaction's commit — executed eagerly
        #: at its heap pop — may only *emit* once every record ordered
        #: before ``(cycle, core)`` has run. Always empty when no
        #: Observer is installed, so the hot loops' guard is one local
        #: truthiness test.
        self._obs_deferred: List[tuple] = []
        #: Host-side phase accountant (None ~ obs off: the hot loops
        #: never look it up per op, only per phase boundary).
        self._prof = self._obs.hostprof if self._obs is not None else None

    def _fire_deferred_obs(self, t: int, core: int) -> None:
        """Emit every deferred synthesized commit whose strict position
        ``(cycle, core)`` does not follow the event about to execute at
        ``(t, core)``. The tie (same cycle, same core) fires first: a
        commit emission precedes the same core's next operation in
        program order. Cross-core ties resolve by core index, exactly
        the strict scheduler's ``(stamp, core)`` tie-break."""
        deferred = self._obs_deferred
        fire = self._obs.fused_tx_commit
        heappop = heapq.heappop
        while deferred and (deferred[0][0], deferred[0][1]) <= (t, core):
            e = heappop(deferred)
            fire(e[1], e[0], e[2], e[3], e[4], e[5], e[6])

    def _reduction_kernel(self, label, rows):
        prof = self._prof
        if prof is None:
            out = reduce_lines(label, rows)
        else:
            t0 = prof.start()
            out = reduce_lines(label, rows)
            prof.stop("kernel", t0)
        if out is not None:
            self.stats.host_vector_kernel_reductions += 1
        return out

    # ------------------------------------------------------------------

    def _epochs_disabled_reason(self) -> Optional[str]:
        machine = self.machine
        if getattr(machine, "sanitizer", None) is not None:
            return "coherence sanitizer installed (REPRO_SANITIZE)"
        if self._tracing:
            return "tracing enabled"
        if not fastpath_enabled():
            return f"{NO_FASTPATH_ENV} set"
        if not runahead_enabled():
            return f"{NO_RUNAHEAD_ENV} set"
        if not self._eager:
            return "lazy conflict detection"
        return None

    def run(self) -> None:
        reason = self._epochs_disabled_reason()
        if reason is not None:
            # Epochs batch per-op work; per-op layers (sanitizer,
            # tracer, the reference escape hatches) must see every
            # operation, so the whole run goes through the interpreted
            # engine rather than producing unchecked epochs. The obs
            # layer is the exception: its emissions are synthesized
            # (and where order-sensitive, deferred) at their exact
            # strict positions, so epochs stay on.
            log.info("vector backend: %s; running per-op via the "
                     "interpreted engine", reason)
            super().run()
            return
        self._run_vector()
        if not self.clocks.all_finished():
            from ...errors import SimulationError
            raise SimulationError("no runnable core but simulation not finished")
        self.stats.parallel_cycles = self.clocks.max_cycle

    def _gated_drain(self, attempts: int, epoch_cycles: int) -> None:
        """The gate's rebind: mark it on the vector lane (when observing)
        and run the uninterrupted strict pass, accounted as the ``drain``
        host phase."""
        obs = self._obs
        prof = self._prof
        if obs is not None:
            total = sum(self._cycles)
            obs.vector_gate_rebind(self.clocks.max_cycle, attempts,
                                   epoch_cycles / total if total else 0.0)
            heap = self.clocks._heap
            t0 = heap[0][0] if heap else self.clocks.max_cycle
        if prof is None:
            self._strict_drain()
        else:
            p0 = prof.start()
            self._strict_drain()
            prof.stop("drain", p0)
        if obs is not None:
            obs.vector_drain(t0, self.clocks.max_cycle)

    def _run_vector(self) -> None:
        burst = _MIN_BURST
        attempts = 0
        epoch_cycles = 0
        gate_pending = True
        prof = self._prof
        strict = self._strict_stepper()
        next(strict)  # prime: bind the hot locals, park at the first yield
        try:
            while True:
                if prof is None:
                    n, ecyc, fences = self._run_epoch()
                else:
                    p0 = prof.start()
                    n, ecyc, fences = self._run_epoch()
                    prof.stop("epoch", p0)
                epoch_cycles += ecyc
                attempts += 1
                if (gate_pending and attempts == _GATE_EARLY_ATTEMPTS
                        and epoch_cycles
                        < sum(self._cycles) * _GATE_EARLY_SHARE):
                    gate_pending = False
                    self.stats.host_vector_gated = True
                    log.info("vector backend: weak epoch engagement "
                             "after %d attempts; rebinding to the "
                             "run-ahead loop", attempts)
                    strict.close()  # lands its host counters
                    self._gated_drain(attempts, epoch_cycles)
                    break
                if gate_pending and attempts >= _GATE_WARMUP_EPOCHS:
                    # Adaptive backend gate: epoch engagement is the share
                    # of simulated cycles executed inside epochs. Below
                    # threshold, every further attempt is host overhead —
                    # rebind to one uninterrupted strict (run-ahead) pass.
                    # Host-only decision: the strict stepper is a clone of
                    # the interpreted run-ahead loop, so simulated results
                    # are bit-identical either way.
                    gate_pending = False
                    if epoch_cycles < sum(self._cycles) * _GATE_MIN_SHARE:
                        self.stats.host_vector_gated = True
                        log.info("vector backend: epoch engagement below "
                                 "%.0f%% after %d attempts; rebinding to "
                                 "the run-ahead loop",
                                 _GATE_MIN_SHARE * 100, attempts)
                        strict.close()
                        self._gated_drain(attempts, epoch_cycles)
                        break
                if n == 0:
                    burst = min(burst * 2, _MAX_BURST)
                elif n >= burst:
                    burst = _MIN_BURST
                else:
                    burst = max(_MIN_BURST, burst // 2)
                # Epoch-parallel fenced replay: when several cores fenced
                # in this attempt (e.g. a barrier arrival wave, or misses
                # on lines the certifier declined), give the strict phase
                # at least one op per fenced event so the whole wave
                # replays as one sorted batch instead of one epoch
                # attempt per event.
                if prof is None:
                    more = strict.send(max(burst, fences))
                else:
                    p0 = prof.start()
                    more = strict.send(max(burst, fences))
                    prof.stop("strict", p0)
                if not more:
                    break
        finally:
            strict.close()  # run its ``finally`` so host counters land
            if self._obs_deferred:
                # Commits whose strict emission position lies past the
                # last executed event (the run's tail): nothing can
                # precede them anymore, so flush in heap order.
                self._fire_deferred_obs(self.clocks.max_cycle + 1, -1)
            # One deferred flush: nothing reads the columns' Stats fields
            # mid-run, so per-epoch flushes would only add numpy overhead
            # to short epochs.
            if prof is None:
                self._cols.flush(self.stats)
            else:
                p0 = prof.start()
                self._cols.flush(self.stats)
                prof.stop("stats_reduce", p0)

    # ------------------------------------------------------------------
    # Epoch phase
    # ------------------------------------------------------------------

    def _run_epoch(self):
        """Attempt one epoch; returns ``(ops, cycles, fences)`` — the
        number of operations executed (0 when nothing classified local),
        the simulated cycles they covered, and the number of fence events
        observed. Operations pulled but not executed stay in
        ``runner.pulled`` for the strict phase.

        Cores whose next event is *not* local — a miss, a barrier, a
        transaction restart, thread completion — do not park the whole
        epoch: they become *fences* at their event's start time. The
        epoch executes, in min-start order off a private heap, every
        local operation starting strictly before the earliest fence —
        exactly the set the strict scheduler would run before reaching
        the fenced event. A core whose operation executes immediately
        pulls and classifies its next one, so a core chains through
        whole local regions in one epoch. A fence discovered mid-epoch
        is always at ``t + d`` of an op just executed, hence *strictly
        after* every op executed so far (durations are >= 1), so it
        never invalidates anything already done; ties between a local
        op and a fence never execute (strict ``t < fence``), because
        the strict scheduler could order the fenced event first."""
        tx_active = self._tx_active
        done = self.clocks._done
        cycles = self._cycles
        finished = _FINISHED
        classify = self._classify
        self._fused_ok.clear()
        obs = self._obs
        deferred = self._obs_deferred
        if obs is None:
            fc = self._cols.fence_causes
        else:
            # Fresh per-epoch histogram so the epoch's trace span can be
            # annotated with *its own* fence causes; merged into the
            # run-wide dict at the end of the attempt.
            fc = {}
        #: Epoch trace span bounds (observing only): first executed pop
        #: time, max clock reached by an executed record.
        ep_t0 = -1
        ep_end = 0
        fences = 0

        heap: List[list] = []  # [start, core, rec] — min-start order
        fence = None  # earliest start among held non-local events
        admit = self._admit
        for runner in self.runners:
            if runner is None:
                continue
            core = runner.core
            if done[core] or runner.blocked:
                continue
            ft = admit(runner, heap, fc)
            if ft is not None:
                fences += 1
                if fence is None or ft < fence:
                    fence = ft
        if not heap:
            return 0, 0, fences

        cols = self._cols
        instr_col = cols.instructions
        labeled_col = cols.labeled
        non_tx_col = cols.non_tx_cycles
        tx_col = cols.tx_cycles
        commits_col = cols.commits
        by_label = cols.by_label
        breakdown = self._breakdown
        htm = self.htm
        msys = self.msys
        certify = self._certify_proto
        fast_load = self._fast_load
        fast_store = self._fast_store
        fast_lload = self._fast_labeled_load
        fast_lstore = self._fast_labeled_store

        epoch_ops = 0
        epoch_cycles = 0
        fused_txs = 0
        #: Set once a K_PROTO op executed: full-protocol accesses mutate
        #: shared state (directory, foreign caches, own L2/L1 via install),
        #: so later pops must re-validate what classification precomputed.
        proto_mutated = False
        heappop = heapq.heappop
        heappush = heapq.heappush

        #: A record provably <= everything in the heap: a core chaining
        #: through a local region stays the global minimum most of the
        #: time, and skipping the heappush/heappop pair for those pops
        #: is the single largest host saving in this loop.
        pending = None
        while True:
            if pending is not None:
                item = pending
                pending = None
            elif heap:
                item = heappop(heap)
            else:
                break
            t = item[0]
            if fence is not None and t >= fence:
                # The minimum held start reached the fence: everything
                # still on the heap starts at or past it too. Hold the
                # lot (ops stay in runner.pulled) and let the strict
                # phase run the fenced event first. Back into the heap
                # so the post-loop sweep sees this record too.
                heappush(heap, item)
                break
            if obs is not None:
                if ep_t0 < 0:
                    ep_t0 = t
                if deferred and (deferred[0][0],
                                 deferred[0][1]) <= (t, item[1]):
                    # A synthesized commit's strict position precedes
                    # this record: emit it first (counter samples read
                    # machine-wide state, which is now exactly what the
                    # interpreted run would have seen at that point).
                    self._fire_deferred_obs(t, item[1])
            rec = item[2]
            runner, core, dur, kind, op, data, tx = rec

            # --- execute the held op ------------------------------------
            if kind == K_WORK:
                instr_col[core] += dur
                if tx is None:
                    non_tx_col[core] += dur
                else:
                    breakdown[core].tx_committed += dur
                    tx.cycles_this_attempt += dur
            elif kind == K_FUSED:
                entry, idx0, deltas, label, ret = data
                cache = self._caches[core]
                if proto_mutated:
                    # An earlier protocol access may have invalidated,
                    # downgraded, or L1-evicted the pre-validated target
                    # (our own install evicts LRU L1 slots too, voiding
                    # the all-L1-hits charge). Re-validate or hold.
                    st = entry.state
                    if (cache.peek_line(entry.line) is not entry
                            or entry.line not in cache._l1
                            or not (st is _M or st is _E
                                    or (st is _U and entry.label is label))
                            or entry.clean_words is not None
                            or entry.spec_read or entry.spec_written
                            or entry.spec_labeled):
                        fc["fused_revoked"] = fc.get("fused_revoked", 0) + 1
                        fences += 1
                        if fence is None or t < fence:
                            fence = t
                        break
                if obs is not None:
                    # Synthesize what the interpreted run would emit: the
                    # begin span at the strict begin cycle t (the ts this
                    # record "draws" is the pre-bump _next_ts), one touch
                    # per labeled access (aggregate metrics, order-free),
                    # and the commit record deferred to its closed-form
                    # commit cycle t + dur - commit, where it interleaves
                    # with other cores' emissions in strict order. Spec
                    # sizes are constants: 2n labeled hits on one private
                    # line set exactly spec_labeled -> (0, 0, 1).
                    obs.fused_tx_begin(core, t, htm._next_ts)
                    touch = obs.touch
                    line_no = entry.line
                    for _ in range(2 * len(deltas)):
                        touch(line_no, label)
                    commit = self._tx_commit_cycles
                    heappush(deferred,
                             (t + dur - commit, core, dur - commit,
                              0, 0, 1, 1))
                cache.touch(entry.line)
                entry.words = words = list(entry.words)
                j = idx0
                for d in deltas:
                    words[j] += d
                    j += 1
                entry.dirty = True
                if entry.state is _E:
                    entry.state = _M
                htm._next_ts += 1
                n2 = 2 * len(deltas)
                instr_col[core] += n2
                labeled_col[core] += n2
                name = label.name
                by_label[name] = by_label.get(name, 0) + n2
                commits_col[core] += 1
                tx_col[core] += dur
                fused_txs += 1
                runner.pending_value = ret
            elif kind == K_PROTO:
                # Certified full-protocol access (miss, upgrade,
                # reduction, gather): executed here, at its strict
                # execution point, through the real MemorySystem handlers
                # — bit-identical by construction. Earlier epoch work may
                # have changed the snapshot (spec bits appear when in-tx
                # cores run local ops), so re-certify before committing.
                pred = certify(core, data, op.addr,
                               getattr(op, "label", None), t,
                               tx is not None)
                if pred is None:
                    fc["proto_revoked"] = fc.get("proto_revoked", 0) + 1
                    fences += 1
                    if fence is None or t < fence:
                        fence = t
                    break
                req = Requester(core, tx.ts if tx is not None else None,
                                now=t)
                if data == K_LOAD:
                    res = msys.load(core, op.addr, req)
                elif data == K_STORE:
                    res = msys.store(core, op.addr, op.value, req)
                elif data == K_LLOAD:
                    res = msys.labeled_load(core, op.addr, op.label, req)
                elif data == K_LSTORE:
                    res = msys.labeled_store(core, op.addr, op.label,
                                             op.value, req)
                else:
                    res = msys.load_gather(core, op.addr, op.label, req)
                if res.abort_requester or res.aborted_victims:
                    raise SimulationError(
                        "certified epoch protocol access aborted a "
                        "transaction; the certifier must decline these"
                    )
                dur = res.cycles
                instr_col[core] += 1
                if data != K_LOAD and data != K_STORE:
                    labeled_col[core] += 1
                    name = op.label.name
                    by_label[name] = by_label.get(name, 0) + 1
                if tx is None:
                    non_tx_col[core] += dur
                else:
                    # Straight to the breakdown (not the deferred column):
                    # an abort after this epoch reclassifies
                    # cycles_this_attempt out of tx_committed, clamped to
                    # what the breakdown already holds.
                    breakdown[core].tx_committed += dur
                    tx.cycles_this_attempt += dur
                runner.pending_value = res.value
                cols.proto_ops += 1
                if pred >= 0:
                    if pred == dur:
                        cols.pred_hits += 1
                    else:
                        cols.pred_misses += 1
                        if obs is not None:
                            obs.vector_mispredict(core, t, op.addr // 64,
                                                  pred, dur)
                proto_mutated = True
                self._fused_ok.clear()
            elif kind == K_BEGIN:
                # Clone of _op_atomic's outermost branch (tracing is off
                # whenever epochs run). The timestamp draw happens here,
                # in heap-pop order — the strict scheduler's order — and
                # so does the begin emission.
                tx = htm.begin(core, ts=op.ts)
                if obs is not None:
                    obs.tx_begin(core, t, tx)
                breakdown[core].tx_committed += dur
                tx.cycles_this_attempt += dur
                gen = op.fn(runner.ctx, *op.args)
                runner.frames.append(Frame(gen, op, True))
                runner.send = gen.send
            elif kind == K_COMMIT:
                if tx.aborted or tx.lazy_written:  # defensive: hold it
                    fc["commit_revoked"] = fc.get("commit_revoked", 0) + 1
                    fences += 1
                    break
                # Clone of _finish_frame's commit path (tracing off;
                # eager detection, so no lazy publication). The commit
                # emission runs before htm.commit — commit_all clears
                # the spec bits the hook reads — at this record's pop
                # time, which *is* its strict emission position.
                frames = runner.frames
                frames.pop()
                runner.send = frames[-1].gen.send
                if obs is not None:
                    obs.tx_commit(core, t, tx)
                htm.commit(core)
                breakdown[core].tx_committed += dur
                runner.pending_value = data  # the frame's StopIteration value
                tx = None
            elif kind == K_RESTART:
                # The strict path's own _restart_tx (finish_abort, frame
                # unwind, livelock guard, backoff draw + stall charged
                # as wasted, begin_retry + begin charge, fresh generator)
                # — bit-identical by construction; it advances the clock
                # itself, so the duration is read back off it. A held op
                # from the doomed attempt is discarded exactly as the
                # strict stepper would (replay re-creates it).
                runner.pulled = None
                runner.pulled_value = None
                self._restart_tx(runner, tx)
                dur = cycles[core] - t
                tx = tx_active[core]
            elif kind == K_BARRIER:
                # Arrival at heap-pop time = the strict scheduler's
                # arrival order. Non-last arrivers block and simply leave
                # the epoch (no record, no fence — a blocked core cannot
                # act until released).
                runner.pulled = None
                self._barrier_arrive(runner)
                epoch_ops += 1
                if runner.blocked:
                    continue
                # Last arriver: the release fired. It can only fire when
                # every other live core is already waiting, so the heap
                # is empty; every waiter's stall was charged non-tx and
                # its clock advanced to the release time by
                # _maybe_release_barrier. Re-admit the whole wave into
                # this same epoch.
                nt = cycles[core]
                epoch_cycles += nt - t
                if obs is not None and nt > ep_end:
                    ep_end = nt
                if heap:  # defensive: fall back to fencing the release
                    fences += 1
                    if fence is None or nt < fence:
                        fence = nt
                    break
                admit = self._admit
                for r2 in self.runners:
                    if r2 is None:
                        continue
                    c2 = r2.core
                    if done[c2] or r2.blocked:
                        continue
                    ft = admit(r2, heap, fc)
                    if ft is not None:
                        fences += 1
                        if fence is None or ft < fence:
                            fence = ft
                continue
            elif kind == K_FMISS_BEGIN:
                # Phase 1 of a first-touch fused transaction: the real
                # begin (timestamp drawn in heap-pop = strict order),
                # then schedule the body as its own record at t + dur.
                # No frame is pushed — generator creation is deferred to
                # the fallback path, where it is still side-effect free.
                tx = htm.begin(core, ts=op.ts)
                if obs is not None:
                    obs.tx_begin(core, t, tx)
                breakdown[core].tx_committed += dur
                tx.cycles_this_attempt += dur
                nt = t + dur
                cycles[core] = nt
                epoch_ops += 1
                epoch_cycles += dur
                if obs is not None and nt > ep_end:
                    ep_end = nt
                item[0] = nt
                item[2] = [runner, core, 0, K_FMISS_BODY, op, data, tx]
                if heap and (heap[0][0] < nt
                             or (heap[0][0] == nt and heap[0][1] < core)):
                    heappush(heap, item)
                else:
                    pending = item
                continue
            elif kind == K_FMISS_BODY:
                plan = data
                n = len(plan.deltas)
                line_no = plan.line
                addr0 = line_no * 64 + plan.idx0 * 8
                cache = self._caches[core]
                # Records executed since classification (our phase 1 ran
                # at t - begin) may have changed the directory snapshot —
                # even flipped which GETU case this install takes.
                # Re-certify from the state at the body's own pop.
                pred = (certify(core, K_LLOAD, addr0, plan.label, t, True)
                        if cache.peek_line(line_no) is None else None)
                if pred is None or pred < 0:
                    # Fall back to the interpreted transaction: create
                    # the frame the strict begin would have created and
                    # fence at the body's start — the next pull yields
                    # the first labeled access, replayed op by op.
                    gen = op.fn(runner.ctx, *op.args)
                    runner.frames.append(Frame(gen, op, True))
                    runner.send = gen.send
                    runner.pulled = None
                    runner.pending_value = None
                    fc["fmiss_revoked"] = fc.get("fmiss_revoked", 0) + 1
                    fences += 1
                    if fence is None or t < fence:
                        fence = t
                    continue
                req = Requester(core, tx.ts, now=t)
                res = msys.labeled_load(core, addr0, plan.label, req)
                if res.abort_requester or res.aborted_victims:
                    raise SimulationError(
                        "certified fused install aborted a transaction; "
                        "the certifier must decline these"
                    )
                entry = cache.peek_line(line_no)
                # The remaining 2n-1 labeled ops replay closed form: the
                # just-installed line L1-hits every one of them. The
                # first store's copy-on-write snapshot feeds rollback
                # (never taken — the real commit below clears it);
                # spec_labeled was already set by the speculative
                # install. One LRU touch stands in for all (idempotent).
                cache.touch(line_no)
                if entry.clean_words is None:
                    entry.clean_words = list(entry.words)
                entry.spec_labeled = True
                entry.words = words = list(entry.words)
                j = plan.idx0
                for d in plan.deltas:
                    words[j] += d
                    j += 1
                entry.dirty = True
                dur = res.cycles + (2 * n - 1) * self._l1_lat \
                    + self._tx_commit_cycles
                n2 = 2 * n
                instr_col[core] += n2
                labeled_col[core] += n2
                name = plan.label.name
                by_label[name] = by_label.get(name, 0) + n2
                breakdown[core].tx_committed += dur
                tx.cycles_this_attempt += dur
                if obs is not None:
                    # The real labeled_load above fired its own touch;
                    # synthesize the remaining 2n-1 closed-form hits.
                    # Spec sizes must be read before htm.commit clears
                    # the bits; the commit record itself is deferred to
                    # its strict emission position t + dur - commit.
                    # Unlike the interpreted run, cycles_this_attempt
                    # here includes the commit charge — subtract it.
                    touch = obs.touch
                    for _ in range(n2 - 1):
                        touch(line_no, plan.label)
                    reads, writes, labeled_n = obs._spec_sizes(core)
                    commit = self._tx_commit_cycles
                    heappush(deferred,
                             (t + dur - commit, core,
                              tx.cycles_this_attempt - commit,
                              reads, writes, labeled_n, tx.attempts))
                htm.commit(core)  # commit_all clears the spec residue
                tx = None
                runner.pending_value = plan.value
                cols.proto_ops += 1
                if pred == res.cycles:
                    cols.pred_hits += 1
                else:
                    cols.pred_misses += 1
                    if obs is not None:
                        obs.vector_mispredict(core, t, line_no, pred,
                                              res.cycles)
                fused_txs += 1
                proto_mutated = True
                self._fused_ok.clear()
            else:
                spec = tx is not None
                if kind == K_LOAD:
                    fast = fast_load(core, op.addr, spec)
                elif kind == K_STORE:
                    fast = fast_store(core, op.addr, op.value, spec)
                elif kind == K_LLOAD:
                    fast = fast_lload(core, op.addr, op.label, spec)
                else:
                    fast = fast_lstore(core, op.addr, op.label,
                                       op.value, spec)
                if fast is None:
                    # Classification guarantees a hit; if the protocol
                    # disagrees (an earlier protocol access invalidated
                    # or downgraded the line), hold the op (still in
                    # runner.pulled) and end the epoch: everything left
                    # on the heap starts at or after this op, so nothing
                    # else may run first.
                    fc["fast_revoked"] = fc.get("fast_revoked", 0) + 1
                    fences += 1
                    break
                if obs is not None:
                    # The fast paths carry no hooks; the interpreted run
                    # under obs takes the full handlers, which touch the
                    # line once per access (with the label only when the
                    # access routed as labeled).
                    if kind == K_LOAD or kind == K_STORE:
                        obs.touch(op.addr // 64)
                    else:
                        obs.touch(op.addr // 64, op.label)
                if kind == K_LOAD or kind == K_LLOAD:
                    value, dur = fast
                    runner.pending_value = value
                else:
                    dur = fast
                instr_col[core] += 1
                if kind == K_LLOAD or kind == K_LSTORE:
                    labeled_col[core] += 1
                    name = op.label.name
                    by_label[name] = by_label.get(name, 0) + 1
                if tx is None:
                    non_tx_col[core] += dur
                else:
                    breakdown[core].tx_committed += dur
                    tx.cycles_this_attempt += dur
            nt = t + dur
            cycles[core] = nt
            runner.pulled = None
            epoch_ops += 1
            epoch_cycles += dur
            if obs is not None and nt > ep_end:
                ep_end = nt

            # --- pull and classify this core's next op ------------------
            # A non-local pull fences this core at its new time
            # t + dur > t, strictly after everything already executed.
            value = runner.pending_value
            runner.pending_value = None
            nop = None
            while True:
                try:
                    nop = runner.send(value)
                except StopIteration as stop:
                    frames = runner.frames
                    if len(frames) > 1 and not frames[-1].is_tx_root:
                        # Plain nested generator: free, invisible pop.
                        frames.pop()
                        runner.send = frames[-1].gen.send
                        value = stop.value
                        continue
                    runner.pulled = finished
                    runner.pulled_value = stop.value
                    if (self._commit_local and len(frames) > 1
                            and tx is not None
                            and not tx.aborted and not tx.lazy_written):
                        # Tx commit: core-local event at nt lasting
                        # tx_commit_cycles — re-enters the heap so the
                        # fence check orders it like any other op.
                        item[0] = nt
                        item[2] = [runner, core, self._tx_commit_cycles,
                                   K_COMMIT, None, stop.value, tx]
                        heappush(heap, item)
                    else:
                        fc["thread_finish"] = fc.get("thread_finish", 0) + 1
                        fences += 1
                        if fence is None or nt < fence:
                            fence = nt
                break
            if nop is None:
                continue
            runner.pulled = nop
            if kind == K_FUSED and nop is op and nop.args is op.args:
                # Hoisted Atomic re-yielded unchanged (e.g. counter's
                # add_one): the plan and its validated target are still
                # exact, skip re-lowering. Never done for Work/memory
                # ops — their shuttles mutate in place between yields.
                nrec = rec
            else:
                nrec = classify(runner, nop, tx)
                if nrec is None:
                    cause = self._decline
                    fc[cause] = fc.get(cause, 0) + 1
                    fences += 1
                    if fence is None or nt < fence:
                        fence = nt
                    continue
            item[0] = nt
            item[2] = nrec
            if heap and (heap[0][0] < nt
                         or (heap[0][0] == nt and heap[0][1] < core)):
                heappush(heap, item)
            else:
                pending = item

        # A scheduled install body whose epoch ended before it popped
        # must fall back to the interpreted transaction (its begin has
        # already run): materialize the frame the strict begin would
        # have created, so the next pull — strict or epoch — yields the
        # transaction's first access.
        for it in heap:
            r = it[2]
            if r[3] == K_FMISS_BODY:
                rn = r[0]
                fop = r[4]
                gen = fop.fn(rn.ctx, *fop.args)
                rn.frames.append(Frame(gen, fop, True))
                rn.send = gen.send
                rn.pulled = None
                rn.pending_value = None

        if obs is not None:
            if epoch_ops:
                obs.vector_epoch(ep_t0, max(ep_end, ep_t0) - ep_t0,
                                 epoch_ops, fences, fc)
            gfc = self._cols.fence_causes
            for cause, count in fc.items():
                gfc[cause] = gfc.get(cause, 0) + count
        if epoch_ops:
            stats = self.stats
            stats.host_vector_epochs += 1
            stats.host_vector_epoch_ops += epoch_ops
            stats.host_vector_fused_txs += fused_txs
        return epoch_ops, epoch_cycles, fences

    def _admit(self, runner, heap, fc) -> Optional[int]:
        """Pull and classify one unblocked, unfinished core's next event.

        Epoch-local events (including a pending restart or an inline
        commit) are pushed onto ``heap`` and None is returned; anything
        else bumps its cause in ``fc`` and returns the event's start time
        so the caller can fence at it. Shared between the epoch's opening
        scan and the in-epoch barrier release, which re-admits the whole
        released wave mid-epoch."""
        core = runner.core
        tx = self._tx_active[core]
        t = self._cycles[core]
        if tx is not None and tx.aborted:
            if self._restart_local:
                # The restart executes at this core's heap-pop time —
                # exactly where the strict scheduler would call
                # _restart_tx — so the backoff rng draw happens in
                # strict order and the retried transaction re-enters
                # the epoch instead of fencing it.
                heapq.heappush(heap, [t, core,
                                      [runner, core, 0, K_RESTART, None,
                                       None, tx]])
                return None
            fc["tx_restart"] = fc.get("tx_restart", 0) + 1
            return t
        op = runner.pulled
        if op is None:
            value = runner.pending_value
            runner.pending_value = None
            while True:
                try:
                    op = runner.send(value)
                except StopIteration as stop:
                    frames = runner.frames
                    if len(frames) > 1 and not frames[-1].is_tx_root:
                        # Plain nested generator: popping it is free
                        # and invisible to every other core.
                        frames.pop()
                        runner.send = frames[-1].gen.send
                        value = stop.value
                        continue
                    runner.pulled = op = _FINISHED
                    runner.pulled_value = stop.value
                break
            if op is not _FINISHED:
                runner.pulled = op
        if op is _FINISHED:
            # A pending frame-finish: an inline-committable tx root
            # becomes a K_COMMIT record (the commit is a core-local
            # event lasting tx_commit_cycles); thread completion and
            # anything irregular stay strict-phase work.
            frames = runner.frames
            if (self._commit_local and len(frames) > 1
                    and frames[-1].is_tx_root
                    and tx is not None and not tx.aborted
                    and not tx.lazy_written):
                heapq.heappush(heap, [t, core,
                                      [runner, core, self._tx_commit_cycles,
                                       K_COMMIT, None, runner.pulled_value,
                                       tx]])
                return None
            fc["thread_finish"] = fc.get("thread_finish", 0) + 1
            return t
        rec = self._classify(runner, op, tx)
        if rec is None:
            cause = self._decline
            fc[cause] = fc.get(cause, 0) + 1
            return t
        heapq.heappush(heap, [t, core, rec])
        return None

    # ------------------------------------------------------------------

    def _classify(self, runner, op, tx) -> Optional[list]:
        """Classify one held op as epoch-local, returning a record
        ``[runner, core, duration, kind, op, data, tx]`` with the *exact*
        latency the op will charge, or None to park the epoch (with the
        cause in ``self._decline`` for the fence histogram).

        This is a non-mutating mirror of the engine's routing rules plus
        the fast-path state checks in ``coherence/protocol.py``: only ops
        those fast paths would certainly service (and that cannot insert
        into the L1 while a transaction is active, so the LRU touch cannot
        self-abort) classify as local. Latency is precomputed from L1
        residency, which only this core can change before execution.
        Non-transactional accesses the fast path would *miss* — misses,
        S-upgrades, reductions, gathers — get a second chance through
        :meth:`_certify_proto`: when the protocol transition is fully
        determined by the current directory/sharer snapshot (no
        speculative victims, no unsafe evictions, word-wise labels only),
        they classify as K_PROTO and execute in-epoch through the real
        handlers."""
        core = runner.core
        cls = op.__class__
        if cls is Work:
            dur = op.cycles
            if dur < 1:  # Work(0) could tie with a held op at exactly G
                self._decline = "zero_work"
                return None
            return [runner, core, dur, K_WORK, op, None, tx]

        if cls is Atomic:
            if tx is not None:
                self._decline = "nested_atomic"
                return None  # closed nesting pushes a zero-cost frame
            if self._commtm:
                plan = lower_atomic(op)
                if plan is not None:
                    deltas = plan.deltas
                    n = len(deltas)
                    key = (core, plan.line, plan.label, plan.idx0, n)
                    entry = self._fused_ok.get(key)
                    if entry is None:
                        entry = self._validate_fused(core, plan, n)
                    if entry is not None:
                        self._fused_ok[key] = entry
                        dur = self._fused_base + 2 * n * self._l1_lat
                        data = (entry, plan.idx0, deltas, plan.label,
                                plan.value)
                        return [runner, core, dur, K_FUSED, op, data, None]
                    rec = self._classify_fused_miss(runner, core, op, plan, n)
                    if rec is not None:
                        return rec
            # Not fusible (no lowering, or the target line is not a
            # private hit yet): run the transaction *interpreted inside
            # the epoch*. The begin itself is local — it charges
            # tx_begin_cycles and draws its timestamp in heap-pop order,
            # which is exactly the strict scheduler's draw order.
            dur = self._tx_begin_cycles
            if dur < 1:
                self._decline = "zero_begin"
                return None
            return [runner, core, dur, K_BEGIN, op, None, None]

        labeled = (self._commtm
                   and not (tx is not None and tx.labels_disabled))
        if cls is Load:
            kind = K_LOAD
        elif cls is Store:
            kind = K_STORE
        elif cls is LabeledLoad:
            kind = K_LLOAD if labeled else K_LOAD
        elif cls is LabeledStore:
            kind = K_LSTORE if labeled else K_STORE
        elif cls is LoadGather:
            if labeled:
                # Gathers always take the full protocol path; the
                # certifier can still prove one epoch-safe.
                addr = op.addr
                if addr % 8:
                    self._decline = "misaligned"
                    return None
                if self._certify_proto(core, K_GATHER, addr, op.label,
                                       self._cycles[core],
                                       tx is not None) is None:
                    self._decline = ("tx_gather" if tx is not None
                                     else "gather_unsafe")
                    return None
                return [runner, core, 1, K_PROTO, op, K_GATHER, tx]
            kind = K_LOAD
        elif cls is Barrier:
            if tx is not None:
                # The strict path must raise TransactionError for this.
                self._decline = "barrier"
                return None
            # Arrival blocks (or, for the last arriver, releases the
            # whole wave) at heap-pop time; the stall is resolved and
            # charged by _maybe_release_barrier itself.
            return [runner, core, 0, K_BARRIER, op, None, None]
        else:
            self._decline = "unhandled_op"
            return None  # OrderedAtomic, unknown ops

        addr = op.addr
        if addr % 8:
            self._decline = "misaligned"
            return None  # misaligned: slow path raises
        cache = self._caches[core]
        entry = cache.peek_line(addr // 64)
        hit = entry is not None
        if hit:
            st = entry.state
            if kind == K_LOAD:
                hit = st is _M or st is _E or st is _S
            elif kind == K_STORE:
                hit = st is _M or st is _E
            else:  # K_LLOAD / K_LSTORE
                hit = (st is _M or st is _E
                       or (st is _U and entry.label is op.label))
        if hit:
            if entry.line in cache._l1:
                dur = self._l1_lat
            elif tx is not None:
                # The touch would insert into the L1 and could evict a
                # speculative line, aborting this core's own transaction —
                # only the full path may take that step.
                self._decline = "tx_l1_insert"
                return None
            else:
                dur = self._l12_lat
            return [runner, core, dur, kind, op, None, tx]
        # Fast-path state check failed: a miss, an S-upgrade, or a
        # non-commutative access to an own U line. The certifier may
        # prove the transition deterministic — for speculative requesters
        # that additionally means no victim can NACK (none speculative)
        # and no self-abort through a speculative eviction.
        if self._certify_proto(core, kind, addr,
                               op.label if kind == K_LLOAD
                               or kind == K_LSTORE else None,
                               self._cycles[core], tx is not None) is None:
            self._decline = ("tx_miss" if tx is not None
                             else "miss_unsafe")
            return None
        return [runner, core, 1, K_PROTO, op, kind, tx]

    def _classify_fused_miss(self, runner, core: int, op, plan,
                             n: int) -> Optional[list]:
        """First-touch fusion: the plan's line is not local, but when the
        GETU install itself certifies, the transaction still collapses —
        into *two* records mirroring the strict event times (see
        K_FMISS_BEGIN / K_FMISS_BODY). Only the true miss qualifies: a
        private copy in any state means the strict first access would
        take the fast path (different charge, no occupancy postlude)."""
        begin = self._tx_begin_cycles
        if begin < 1 or not self._commit_local:
            return None
        if plan.idx0 < 0 or plan.idx0 + n > 8:
            return None
        if self._caches[core].peek_line(plan.line) is not None:
            return None
        addr0 = plan.line * 64 + plan.idx0 * 8
        pred = self._certify_proto(core, K_LLOAD, addr0, plan.label,
                                   self._cycles[core] + begin, True)
        if pred is None or pred < 0:
            return None
        return [runner, core, begin, K_FMISS_BEGIN, op, plan, None]

    def _validate_fused(self, core: int, plan, n: int):
        """Check a FusedPlan against this core's cache: line present and
        L1-resident (the fused charge is all L1 hits, and no insertion
        means no eviction), stable state, no speculative residue, and the
        word run in bounds. Returns the CacheLine or None."""
        cache = self._caches[core]
        entry = cache.peek_line(plan.line)
        if entry is None or plan.line not in cache._l1:
            return None
        st = entry.state
        if not (st is _M or st is _E
                or (st is _U and entry.label is plan.label)):
            return None
        if (entry.clean_words is not None or entry.spec_read
                or entry.spec_written or entry.spec_labeled):
            return None
        if plan.idx0 < 0 or plan.idx0 + n > len(entry.words):
            return None
        return entry

    # ------------------------------------------------------------------
    # Full-protocol certification (K_PROTO)
    # ------------------------------------------------------------------

    def _certify_proto(self, core: int, memkind: int, addr: int, label,
                       now: int, spec: bool = False) -> Optional[int]:
        """Decide whether one access that missed the private-hit fast
        path may execute *inside* an epoch through the real protocol
        handlers, and predict its closed-form latency.

        The decision procedure itself is :func:`certify.certify_access`
        — a pure function of the memory system, shared with the
        exhaustive model checker, which proves on every reachable state
        of its bounded configs that a non-``None`` prediction matches
        the charge the real handlers produce.  This wrapper only maps
        the engine's integer op kinds onto :class:`AccessKind`.  It is
        looked up through the module attribute (not bound at import) so
        fault-injection tests can patch the certifier in one place for
        both consumers."""
        return certify.certify_access(self.msys, core,
                                      _CERTIFY_KINDS[memkind], addr,
                                      label, now, spec)

    # ------------------------------------------------------------------
    # Strict phase
    # ------------------------------------------------------------------

    def _strict_stepper(self):
        """Generator clone of ``Engine._run_runahead`` with three
        extensions: pulled ops (held by a failed epoch certification) are
        consumed before the generator is resumed; a pulled op is discarded
        when its transaction aborted (replay re-creates it); and the loop
        yields after a caller-supplied op budget so the engine can
        re-attempt an epoch. ``send(budget)`` runs up to ``budget`` ops
        and yields True while work remains, False when the ready heap
        drained. A generator rather than a method so the three dozen hot
        local bindings happen once per run, not once per burst."""
        clocks = self.clocks
        heap = clocks._heap
        done = clocks._done
        cycles = self._cycles
        runners = self.runners
        tx_active = self._tx_active
        handlers = self._handlers
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        heappush = heapq.heappush
        finished = _FINISHED
        deferred = self._obs_deferred  # always [] when obs is off
        fire_deferred = self._fire_deferred_obs
        batches = 0
        ops = 0
        spent = 0

        budget = yield None  # primed by next(); first send() starts work
        try:
            while True:
                if not heap:
                    budget = yield False
                    continue
                stamp, core = heappop(heap)
                while True:
                    if done[core] or runners[core].blocked:
                        # A blocked core's entry is a stray duplicate: an
                        # in-epoch barrier release reschedules its waiters
                        # while their pre-epoch entries still sit here.
                        # Discarding is safe — every unblock path issues a
                        # fresh reschedule.
                        if not heap:
                            break  # outer loop reports the drain
                        stamp, core = heappop(heap)
                        continue
                    c = cycles[core]
                    if stamp < c:
                        # Stale entry (core was charged since being queued
                        # — including by an epoch); requeue at its true
                        # time.
                        if heap:
                            stamp, core = heappushpop(heap, (c, core))
                        else:
                            stamp = c
                        continue

                    runner = runners[core]
                    batches += 1
                    while True:
                        ops += 1
                        spent += 1
                        if deferred and (deferred[0][0], deferred[0][1]) \
                                <= (cycles[core], core):
                            # A fused commit synthesized by an earlier
                            # epoch emits at this strict position.
                            fire_deferred(cycles[core], core)
                        tx = tx_active[core]
                        if tx is not None and tx.aborted:
                            # A held pulled op belongs to the generator
                            # being discarded; replay will re-yield it.
                            runner.pulled = None
                            runner.pulled_value = None
                            self._restart_tx(runner, tx)
                        else:
                            op = runner.pulled
                            if op is not None:
                                runner.pulled = None
                                if op is finished:
                                    value = runner.pulled_value
                                    runner.pulled_value = None
                                    self._finish_frame(runner, value)
                                    op = finished
                            else:
                                value = runner.pending_value
                                runner.pending_value = None
                                try:
                                    op = runner.send(value)
                                except StopIteration as stop:
                                    self._finish_frame(runner, stop.value)
                                    op = finished
                            if op is not finished:
                                try:
                                    handler = handlers[op.__class__]
                                except KeyError:
                                    handler = self._resolve_handler(op)
                                handler(runner, op)

                        if runner.blocked or done[core]:
                            break
                        if spent >= budget:
                            # Budget spent with this core still runnable:
                            # park it back in the heap (restoring the
                            # one-entry-per-ready-core invariant) and hand
                            # control back for an epoch attempt.
                            heappush(heap, (cycles[core], core))
                            spent = 0
                            budget = yield True
                            runner = None  # fresh pop after the epoch
                            break
                        c = cycles[core]
                        if heap:
                            top = heap[0]
                            if c > top[0] or (c == top[0] and core > top[1]):
                                stamp, core = heappushpop(heap, (c, core))
                                break

                    if runner is None:
                        break  # re-pop via the outer loop
                    if runner.blocked or done[runner.core]:
                        if not heap:
                            break  # outer loop reports the drain
                        stamp, core = heappop(heap)
        finally:
            self.stats.host_runahead_batches += batches
            self.stats.host_runahead_ops += ops

    def _strict_drain(self) -> None:
        """Unbudgeted strict pass: run the rest of the simulation through
        the run-ahead loop. Used when the adaptive gate rebinds a
        non-engaging workload — the budgeted stepper's per-op accounting
        (spent/budget compare, generator suspensions between bursts) is
        pure overhead once no further epoch attempt will ever run, and on
        a fence-bound workload this loop covers ~95% of the ops. A clone
        of ``Engine._run_runahead`` with the two vector-state extensions:
        held pulled ops are consumed first (discarded when their
        transaction aborted — replay re-creates them), and a popped entry
        for a blocked core is a stray duplicate from an in-epoch barrier
        release, discarded the same way the stepper does."""
        clocks = self.clocks
        heap = clocks._heap
        done = clocks._done
        cycles = self._cycles
        runners = self.runners
        tx_active = self._tx_active
        handlers = self._handlers
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        finished = _FINISHED
        deferred = self._obs_deferred  # always [] when obs is off
        fire_deferred = self._fire_deferred_obs
        batches = 0
        ops = 0

        if not heap:
            return
        stamp, core = heappop(heap)
        while True:
            if done[core] or runners[core].blocked:
                if not heap:
                    break
                stamp, core = heappop(heap)
                continue
            c = cycles[core]
            if stamp < c:
                if heap:
                    stamp, core = heappushpop(heap, (c, core))
                else:
                    stamp = c
                continue

            runner = runners[core]
            batches += 1
            while True:
                ops += 1
                if deferred and (deferred[0][0], deferred[0][1]) \
                        <= (cycles[core], core):
                    # A fused commit synthesized by an earlier epoch
                    # emits at this strict position.
                    fire_deferred(cycles[core], core)
                tx = tx_active[core]
                if tx is not None and tx.aborted:
                    runner.pulled = None
                    runner.pulled_value = None
                    self._restart_tx(runner, tx)
                else:
                    op = runner.pulled
                    if op is not None:
                        runner.pulled = None
                        if op is finished:
                            value = runner.pulled_value
                            runner.pulled_value = None
                            self._finish_frame(runner, value)
                            op = finished
                    else:
                        value = runner.pending_value
                        runner.pending_value = None
                        try:
                            op = runner.send(value)
                        except StopIteration as stop:
                            self._finish_frame(runner, stop.value)
                            op = finished
                    if op is not finished:
                        try:
                            handler = handlers[op.__class__]
                        except KeyError:
                            handler = self._resolve_handler(op)
                        handler(runner, op)

                if runner.blocked or done[core]:
                    break
                c = cycles[core]
                if heap:
                    top = heap[0]
                    if c > top[0] or (c == top[0] and core > top[1]):
                        stamp, core = heappushpop(heap, (c, core))
                        break

            if runner.blocked or done[runner.core]:
                if not heap:
                    break
                stamp, core = heappop(heap)

        self.stats.host_runahead_batches += batches
        self.stats.host_runahead_ops += ops
