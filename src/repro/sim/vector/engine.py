"""VectorEngine: epoch-batched execution with per-op interpreted fallback.

The interpreted engine advances one core by one operation per scheduler
step, paying the full dispatch/handler/heap machinery each time even when
the operation is a guaranteed private-cache hit. This engine alternates
between two phases:

**Fence-bounded epochs** (:meth:`VectorEngine._run_epoch`). Every live,
unblocked core's pulled operation is classified: *local* operations —
think time, a private-hit load/store, a labeled update on this core's own
M/E/U line, a whole transaction fusible through :mod:`.kernels` — enter a
private min-start heap; everything else (a miss, a barrier, a transaction
restart, thread completion) becomes a *fence* at its start time. The
epoch then pops the heap and executes every local operation starting
strictly before the earliest fence; after each execution the core pulls
and classifies its next operation, re-entering the heap (so one core
chains through a whole local region) or lowering the fence. Statistics
land in per-core columns
(:class:`~repro.sim.vector.columns.EpochColumns`) that numpy reduces into
the ordinary ``Stats`` fields when the run completes.

*Why the interleaving is bit-identical to strict min-clock order*: local
operations touch only their own core's private cache (plus additive
global counters), so local operations commute with each other — only
their multiset matters, and that is exactly the set the strict scheduler
would execute before reaching the earliest fenced event. A fence
discovered mid-epoch sits at ``t + d`` of an operation just executed
with duration ``d >= 1`` — strictly after every operation executed so
far (heap pops are monotone in start time) — so it never invalidates
completed work; a tie between a local operation and a fence is never
executed (strict ``t < fence``), because the strict scheduler's
``(stamp, core)`` tie-break could order the fenced event first.
Durations are exact by construction: a classified operation's latency
depends only on this core's cache state, which no other core can change
during an epoch. Zero-duration operations (``Work(0)``) are never
classified local — their ``t + d`` would not move past a tie — and fall
to the strict phase instead.

**Strict phases** (:meth:`VectorEngine._strict_stepper`). An exact clone of
``Engine._run_runahead`` — same heap, same ``(stamp, core)`` tie-break,
same stale-entry requeue — extended to (a) consume operations the epoch
certification pulled but did not execute, (b) discard a pulled operation
when its transaction aborts (replay re-creates it), and (c) stop after an
operation budget so the engine can re-attempt an epoch. The budget starts
small and doubles every time an epoch attempt fails, so irregular regions
(conflicts, barriers, reductions) degrade gracefully toward plain
run-ahead execution instead of thrashing on failed certifications.

Epochs batch per-op work, so anything that must see every operation —
the coherence sanitizer, the obs layer, the Perfetto tracer, the
``REPRO_NO_FASTPATH`` / ``REPRO_NO_RUNAHEAD`` reference modes, lazy
conflict detection — forces the whole run down the interpreted engine,
with a logged notice (never a silently unchecked epoch).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ...coherence.states import State
from ...runtime.ops import (
    Atomic,
    Load,
    LabeledLoad,
    LabeledStore,
    LoadGather,
    Store,
    Work,
)
from ..engine import (
    _FINISHED,
    Engine,
    Frame,
    NO_FASTPATH_ENV,
    NO_RUNAHEAD_ENV,
    fastpath_enabled,
    runahead_enabled,
)
from . import log
from .columns import EpochColumns
from .kernels import lower_atomic

_M = State.M
_E = State.E
_S = State.S
_U = State.U

# Operation kinds a classified record can carry. Conventional routes of
# LabeledLoad/LabeledStore/LoadGather (baseline HTM, labels disabled) also
# classify as K_LOAD/K_STORE — no labeled counts, mirroring the engine.
# K_BEGIN/K_COMMIT bracket *interpreted* transactions run inside an epoch:
# begin draws its timestamp in heap-pop (= strict) order, commit is
# core-local under eager conflict detection.
K_WORK = 0
K_FUSED = 1
K_LOAD = 2
K_STORE = 3
K_LLOAD = 4
K_LSTORE = 5
K_BEGIN = 6
K_COMMIT = 7

# Strict-phase op budget between epoch attempts: doubles while epoch
# attempts keep yielding nothing (irregular region), shrinks back toward
# the minimum when epochs are productive. Small minimum on purpose: an
# epoch usually ends at one fenced event (a single miss or barrier
# arrival), so a large strict quantum would overshoot it and interpret
# work the next epoch could have batched.
_MIN_BURST = 8
_MAX_BURST = 4096


class VectorEngine(Engine):
    """Engine backend ``"vector"``: wavefront epochs + strict fallback."""

    def __init__(self, machine, bodies):
        super().__init__(machine, bodies)
        msys = self.msys
        self._caches = msys.caches
        self._l1_lat = msys._l1_latency
        self._l12_lat = msys._l12_latency
        self._fused_base = self._tx_begin_cycles + self._tx_commit_cycles
        #: Commits may execute inside epochs only with a nonzero latency:
        #: a zero-duration event could tie with a fenced one at the same
        #: cycle, where the strict tie-break might order the fence first.
        self._commit_local = self._tx_commit_cycles >= 1
        self._cols = EpochColumns(self.config.num_cores)
        #: Per-epoch memo of validated fused targets:
        #: (core, line, label, idx0, n) -> CacheLine.
        self._fused_ok: dict = {}

    # ------------------------------------------------------------------

    def _epochs_disabled_reason(self) -> Optional[str]:
        machine = self.machine
        if getattr(machine, "sanitizer", None) is not None:
            return "coherence sanitizer installed (REPRO_SANITIZE)"
        if self._obs is not None:
            return "observer installed (REPRO_OBS)"
        if self._tracing:
            return "tracing enabled"
        if not fastpath_enabled():
            return f"{NO_FASTPATH_ENV} set"
        if not runahead_enabled():
            return f"{NO_RUNAHEAD_ENV} set"
        if not self._eager:
            return "lazy conflict detection"
        return None

    def run(self) -> None:
        reason = self._epochs_disabled_reason()
        if reason is not None:
            # Epochs batch per-op work; per-op layers (sanitizer, obs,
            # tracer, the reference escape hatches) must see every
            # operation, so the whole run goes through the interpreted
            # engine rather than producing unchecked epochs.
            log.info("vector backend: %s; running per-op via the "
                     "interpreted engine", reason)
            super().run()
            return
        self._run_vector()
        if not self.clocks.all_finished():
            from ...errors import SimulationError
            raise SimulationError("no runnable core but simulation not finished")
        self.stats.parallel_cycles = self.clocks.max_cycle

    def _run_vector(self) -> None:
        burst = _MIN_BURST
        strict = self._strict_stepper()
        next(strict)  # prime: bind the hot locals, park at the first yield
        try:
            while True:
                n = self._run_epoch()
                if n == 0:
                    burst = min(burst * 2, _MAX_BURST)
                elif n >= burst:
                    burst = _MIN_BURST
                else:
                    burst = max(_MIN_BURST, burst // 2)
                if not strict.send(burst):
                    break
        finally:
            strict.close()  # run its ``finally`` so host counters land
            # One deferred flush: nothing reads the columns' Stats fields
            # mid-run, so per-epoch flushes would only add numpy overhead
            # to short epochs.
            self._cols.flush(self.stats)

    # ------------------------------------------------------------------
    # Epoch phase
    # ------------------------------------------------------------------

    def _run_epoch(self) -> int:
        """Attempt one epoch; returns the number of operations executed
        (0 when nothing classified local). Operations pulled but not
        executed stay in ``runner.pulled`` for the strict phase.

        Cores whose next event is *not* local — a miss, a barrier, a
        transaction restart, thread completion — do not park the whole
        epoch: they become *fences* at their event's start time. The
        epoch executes, in min-start order off a private heap, every
        local operation starting strictly before the earliest fence —
        exactly the set the strict scheduler would run before reaching
        the fenced event. A core whose operation executes immediately
        pulls and classifies its next one, so a core chains through
        whole local regions in one epoch. A fence discovered mid-epoch
        is always at ``t + d`` of an op just executed, hence *strictly
        after* every op executed so far (durations are >= 1), so it
        never invalidates anything already done; ties between a local
        op and a fence never execute (strict ``t < fence``), because
        the strict scheduler could order the fenced event first."""
        tx_active = self._tx_active
        done = self.clocks._done
        cycles = self._cycles
        finished = _FINISHED
        classify = self._classify
        self._fused_ok.clear()

        heap: List[list] = []  # [start, core, rec] — min-start order
        fence = None  # earliest start among held non-local events
        for runner in self.runners:
            if runner is None:
                continue
            core = runner.core
            if done[core] or runner.blocked:
                continue
            tx = tx_active[core]
            t = cycles[core]
            if tx is not None and tx.aborted:
                # Restart (backoff rng draw included) is strict-phase
                # work; do not resume the doomed generator.
                if fence is None or t < fence:
                    fence = t
                continue
            op = runner.pulled
            if op is None:
                value = runner.pending_value
                runner.pending_value = None
                while True:
                    try:
                        op = runner.send(value)
                    except StopIteration as stop:
                        frames = runner.frames
                        if len(frames) > 1 and not frames[-1].is_tx_root:
                            # Plain nested generator: popping it is free
                            # and invisible to every other core.
                            frames.pop()
                            runner.send = frames[-1].gen.send
                            value = stop.value
                            continue
                        runner.pulled = op = finished
                        runner.pulled_value = stop.value
                    break
                if op is not finished:
                    runner.pulled = op
            if op is finished:
                # A pending frame-finish: an inline-committable tx root
                # becomes a K_COMMIT record (the commit is a core-local
                # event lasting tx_commit_cycles); thread completion and
                # anything irregular stay strict-phase work.
                frames = runner.frames
                if (self._commit_local and len(frames) > 1
                        and frames[-1].is_tx_root
                        and tx is not None and not tx.aborted
                        and not tx.lazy_written):
                    heap.append([t, core,
                                 [runner, core, self._tx_commit_cycles,
                                  K_COMMIT, None, runner.pulled_value, tx]])
                elif fence is None or t < fence:
                    fence = t
                continue
            rec = classify(runner, op, tx)
            if rec is None:
                if fence is None or t < fence:
                    fence = t
                continue
            heap.append([t, core, rec])
        if not heap:
            return 0
        heapq.heapify(heap)

        cols = self._cols
        instr_col = cols.instructions
        labeled_col = cols.labeled
        non_tx_col = cols.non_tx_cycles
        tx_col = cols.tx_cycles
        commits_col = cols.commits
        by_label = cols.by_label
        breakdown = self._breakdown
        htm = self.htm
        fast_load = self._fast_load
        fast_store = self._fast_store
        fast_lload = self._fast_labeled_load
        fast_lstore = self._fast_labeled_store

        epoch_ops = 0
        fused_txs = 0
        heappop = heapq.heappop
        heappush = heapq.heappush

        while heap:
            item = heappop(heap)
            t = item[0]
            if fence is not None and t >= fence:
                # The minimum held start reached the fence: everything
                # still on the heap starts at or past it too. Hold the
                # lot (ops stay in runner.pulled) and let the strict
                # phase run the fenced event first.
                break
            rec = item[2]
            runner, core, dur, kind, op, data, tx = rec

            # --- execute the held op ------------------------------------
            if kind == K_WORK:
                instr_col[core] += dur
                if tx is None:
                    non_tx_col[core] += dur
                else:
                    breakdown[core].tx_committed += dur
                    tx.cycles_this_attempt += dur
            elif kind == K_FUSED:
                entry, idx0, deltas, label_name, ret = data
                self._caches[core].touch(entry.line)
                entry.words = words = list(entry.words)
                j = idx0
                for d in deltas:
                    words[j] += d
                    j += 1
                entry.dirty = True
                if entry.state is _E:
                    entry.state = _M
                htm._next_ts += 1
                n2 = 2 * len(deltas)
                instr_col[core] += n2
                labeled_col[core] += n2
                by_label[label_name] = by_label.get(label_name, 0) + n2
                commits_col[core] += 1
                tx_col[core] += dur
                fused_txs += 1
                runner.pending_value = ret
            elif kind == K_BEGIN:
                # Clone of _op_atomic's outermost branch (tracing and obs
                # are off whenever epochs run). The timestamp draw happens
                # here, in heap-pop order — the strict scheduler's order.
                tx = htm.begin(core, ts=op.ts)
                breakdown[core].tx_committed += dur
                tx.cycles_this_attempt += dur
                gen = op.fn(runner.ctx, *op.args)
                runner.frames.append(Frame(gen, op, True))
                runner.send = gen.send
            elif kind == K_COMMIT:
                if tx.aborted or tx.lazy_written:  # defensive: hold it
                    break
                # Clone of _finish_frame's commit path (obs and tracing
                # off; eager detection, so no lazy publication).
                frames = runner.frames
                frames.pop()
                runner.send = frames[-1].gen.send
                htm.commit(core)
                breakdown[core].tx_committed += dur
                runner.pending_value = data  # the frame's StopIteration value
                tx = None
            else:
                spec = tx is not None
                if kind == K_LOAD:
                    fast = fast_load(core, op.addr, spec)
                elif kind == K_STORE:
                    fast = fast_store(core, op.addr, op.value, spec)
                elif kind == K_LLOAD:
                    fast = fast_lload(core, op.addr, op.label, spec)
                else:
                    fast = fast_lstore(core, op.addr, op.label,
                                       op.value, spec)
                if fast is None:
                    # Classification guarantees a hit; if the protocol
                    # disagrees, hold the op (still in runner.pulled) and
                    # end the epoch: everything left on the heap starts
                    # at or after this op, so nothing else may run first.
                    break
                if kind == K_LOAD or kind == K_LLOAD:
                    value, dur = fast
                    runner.pending_value = value
                else:
                    dur = fast
                instr_col[core] += 1
                if kind == K_LLOAD or kind == K_LSTORE:
                    labeled_col[core] += 1
                    name = op.label.name
                    by_label[name] = by_label.get(name, 0) + 1
                if tx is None:
                    non_tx_col[core] += dur
                else:
                    breakdown[core].tx_committed += dur
                    tx.cycles_this_attempt += dur
            nt = t + dur
            cycles[core] = nt
            runner.pulled = None
            epoch_ops += 1

            # --- pull and classify this core's next op ------------------
            # A non-local pull fences this core at its new time
            # t + dur > t, strictly after everything already executed.
            value = runner.pending_value
            runner.pending_value = None
            nop = None
            while True:
                try:
                    nop = runner.send(value)
                except StopIteration as stop:
                    frames = runner.frames
                    if len(frames) > 1 and not frames[-1].is_tx_root:
                        # Plain nested generator: free, invisible pop.
                        frames.pop()
                        runner.send = frames[-1].gen.send
                        value = stop.value
                        continue
                    runner.pulled = finished
                    runner.pulled_value = stop.value
                    if (self._commit_local and len(frames) > 1
                            and tx is not None
                            and not tx.aborted and not tx.lazy_written):
                        # Tx commit: core-local event at nt lasting
                        # tx_commit_cycles — re-enters the heap so the
                        # fence check orders it like any other op.
                        item[0] = nt
                        item[2] = [runner, core, self._tx_commit_cycles,
                                   K_COMMIT, None, stop.value, tx]
                        heappush(heap, item)
                    elif fence is None or nt < fence:
                        fence = nt
                break
            if nop is None:
                continue
            runner.pulled = nop
            if kind == K_FUSED and nop is op and nop.args is op.args:
                # Hoisted Atomic re-yielded unchanged (e.g. counter's
                # add_one): the plan and its validated target are still
                # exact, skip re-lowering. Never done for Work/memory
                # ops — their shuttles mutate in place between yields.
                item[0] = nt
                heappush(heap, item)
                continue
            nrec = classify(runner, nop, tx)
            if nrec is None:
                if fence is None or nt < fence:
                    fence = nt
                continue
            item[0] = nt
            item[2] = nrec
            heappush(heap, item)

        if epoch_ops:
            stats = self.stats
            stats.host_vector_epochs += 1
            stats.host_vector_epoch_ops += epoch_ops
            stats.host_vector_fused_txs += fused_txs
        return epoch_ops

    # ------------------------------------------------------------------

    def _classify(self, runner, op, tx) -> Optional[list]:
        """Classify one held op as epoch-local, returning a record
        ``[runner, core, duration, kind, op, data, tx]`` with the *exact*
        latency the op will charge, or None to park the epoch.

        This is a non-mutating mirror of the engine's routing rules plus
        the fast-path state checks in ``coherence/protocol.py``: only ops
        those fast paths would certainly service (and that cannot insert
        into the L1 while a transaction is active, so the LRU touch cannot
        self-abort) classify as local. Latency is precomputed from L1
        residency, which only this core can change before execution."""
        core = runner.core
        cls = op.__class__
        if cls is Work:
            dur = op.cycles
            if dur < 1:  # Work(0) could tie with a held op at exactly G
                return None
            return [runner, core, dur, K_WORK, op, None, tx]

        if cls is Atomic:
            if tx is not None:
                return None  # closed nesting pushes a zero-cost frame
            if self._commtm:
                plan = lower_atomic(op)
                if plan is not None:
                    deltas = plan.deltas
                    n = len(deltas)
                    key = (core, plan.line, plan.label, plan.idx0, n)
                    entry = self._fused_ok.get(key)
                    if entry is None:
                        entry = self._validate_fused(core, plan, n)
                    if entry is not None:
                        self._fused_ok[key] = entry
                        dur = self._fused_base + 2 * n * self._l1_lat
                        data = (entry, plan.idx0, deltas, plan.label.name,
                                plan.value)
                        return [runner, core, dur, K_FUSED, op, data, None]
            # Not fusible (no lowering, or the target line is not a
            # private hit yet): run the transaction *interpreted inside
            # the epoch*. The begin itself is local — it charges
            # tx_begin_cycles and draws its timestamp in heap-pop order,
            # which is exactly the strict scheduler's draw order.
            dur = self._tx_begin_cycles
            if dur < 1:
                return None
            return [runner, core, dur, K_BEGIN, op, None, None]

        labeled = (self._commtm
                   and not (tx is not None and tx.labels_disabled))
        if cls is Load:
            kind = K_LOAD
        elif cls is Store:
            kind = K_STORE
        elif cls is LabeledLoad:
            kind = K_LLOAD if labeled else K_LOAD
        elif cls is LabeledStore:
            kind = K_LSTORE if labeled else K_STORE
        elif cls is LoadGather:
            if labeled:
                return None  # gathers always take the full protocol path
            kind = K_LOAD
        else:
            return None  # Barrier, OrderedAtomic, unknown ops

        addr = op.addr
        if addr % 8:
            return None  # misaligned: slow path raises
        cache = self._caches[core]
        entry = cache.peek_line(addr // 64)
        if entry is None:
            return None
        st = entry.state
        if kind == K_LOAD:
            if st is not _M and st is not _E and st is not _S:
                return None
        elif kind == K_STORE:
            if st is not _M and st is not _E:
                return None
        else:  # K_LLOAD / K_LSTORE
            if not (st is _M or st is _E
                    or (st is _U and entry.label is op.label)):
                return None
        if entry.line in cache._l1:
            dur = self._l1_lat
        elif tx is not None:
            # The touch would insert into the L1 and could evict a
            # speculative line, aborting this core's own transaction —
            # only the full path may take that step.
            return None
        else:
            dur = self._l12_lat
        return [runner, core, dur, kind, op, None, tx]

    def _validate_fused(self, core: int, plan, n: int):
        """Check a FusedPlan against this core's cache: line present and
        L1-resident (the fused charge is all L1 hits, and no insertion
        means no eviction), stable state, no speculative residue, and the
        word run in bounds. Returns the CacheLine or None."""
        cache = self._caches[core]
        entry = cache.peek_line(plan.line)
        if entry is None or plan.line not in cache._l1:
            return None
        st = entry.state
        if not (st is _M or st is _E
                or (st is _U and entry.label is plan.label)):
            return None
        if (entry.clean_words is not None or entry.spec_read
                or entry.spec_written or entry.spec_labeled):
            return None
        if plan.idx0 < 0 or plan.idx0 + n > len(entry.words):
            return None
        return entry

    # ------------------------------------------------------------------
    # Strict phase
    # ------------------------------------------------------------------

    def _strict_stepper(self):
        """Generator clone of ``Engine._run_runahead`` with three
        extensions: pulled ops (held by a failed epoch certification) are
        consumed before the generator is resumed; a pulled op is discarded
        when its transaction aborted (replay re-creates it); and the loop
        yields after a caller-supplied op budget so the engine can
        re-attempt an epoch. ``send(budget)`` runs up to ``budget`` ops
        and yields True while work remains, False when the ready heap
        drained. A generator rather than a method so the three dozen hot
        local bindings happen once per run, not once per burst."""
        clocks = self.clocks
        heap = clocks._heap
        done = clocks._done
        cycles = self._cycles
        runners = self.runners
        tx_active = self._tx_active
        handlers = self._handlers
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop
        heappush = heapq.heappush
        finished = _FINISHED
        batches = 0
        ops = 0
        spent = 0

        budget = yield None  # primed by next(); first send() starts work
        try:
            while True:
                if not heap:
                    budget = yield False
                    continue
                stamp, core = heappop(heap)
                while True:
                    if done[core]:
                        if not heap:
                            break  # outer loop reports the drain
                        stamp, core = heappop(heap)
                        continue
                    c = cycles[core]
                    if stamp < c:
                        # Stale entry (core was charged since being queued
                        # — including by an epoch); requeue at its true
                        # time.
                        if heap:
                            stamp, core = heappushpop(heap, (c, core))
                        else:
                            stamp = c
                        continue

                    runner = runners[core]
                    batches += 1
                    while True:
                        ops += 1
                        spent += 1
                        tx = tx_active[core]
                        if tx is not None and tx.aborted:
                            # A held pulled op belongs to the generator
                            # being discarded; replay will re-yield it.
                            runner.pulled = None
                            runner.pulled_value = None
                            self._restart_tx(runner, tx)
                        else:
                            op = runner.pulled
                            if op is not None:
                                runner.pulled = None
                                if op is finished:
                                    value = runner.pulled_value
                                    runner.pulled_value = None
                                    self._finish_frame(runner, value)
                                    op = finished
                            else:
                                value = runner.pending_value
                                runner.pending_value = None
                                try:
                                    op = runner.send(value)
                                except StopIteration as stop:
                                    self._finish_frame(runner, stop.value)
                                    op = finished
                            if op is not finished:
                                try:
                                    handler = handlers[op.__class__]
                                except KeyError:
                                    handler = self._resolve_handler(op)
                                handler(runner, op)

                        if runner.blocked or done[core]:
                            break
                        if spent >= budget:
                            # Budget spent with this core still runnable:
                            # park it back in the heap (restoring the
                            # one-entry-per-ready-core invariant) and hand
                            # control back for an epoch attempt.
                            heappush(heap, (cycles[core], core))
                            spent = 0
                            budget = yield True
                            runner = None  # fresh pop after the epoch
                            break
                        c = cycles[core]
                        if heap:
                            top = heap[0]
                            if c > top[0] or (c == top[0] and core > top[1]):
                                stamp, core = heappushpop(heap, (c, core))
                                break

                    if runner is None:
                        break  # re-pop via the outer loop
                    if runner.blocked or done[runner.core]:
                        if not heap:
                            break  # outer loop reports the drain
                        stamp, core = heappop(heap)
        finally:
            self.stats.host_runahead_batches += batches
            self.stats.host_runahead_ops += ops
