"""Transaction lowering registry for the vector backend's epoch path.

A *lowering* turns one :class:`~repro.runtime.ops.Atomic` into a
:class:`FusedPlan`: a contiguous run of labeled commutative adds on a
single cache line, plus the transaction's declared return value. When the
epoch engine validates the plan against the core's private cache (line
present and L1-resident, state M/E or U with a matching label, no
speculative residue), the whole transaction — begin, labeled loads/stores,
commit — executes as one closed-form update whose effects and charged
cycles are exactly those of replaying the generator through the private-hit
fast path:

* each word gets ``words[i] += delta`` on a freshly copied words list
  (the fast-path store's copy-on-write), the line is marked dirty, and an
  E line silently upgrades to M;
* one LRU touch per line stands in for the per-op touches (consecutive
  ``move_to_end`` of the same key is idempotent, so the final LRU order is
  identical);
* the charged latency is ``tx_begin_cycles + 2 * rows * l1_latency +
  tx_commit_cycles`` — every access L1-hits because L1 residency is part
  of plan validation;
* the HTM timestamp counter advances by one (a committed transaction's
  timestamp is unobservable to the *simulation*, only the counter's final
  value matters; the observer, when installed, reads the pre-bump value as
  the synthesized begin span's ``ts`` — exactly what ``htm.begin`` would
  have drawn).

Speculative read/write bits are *not* set: commit would clear them in the
same closed-form step, and during an epoch no other core can observe them
(epochs only run while every live core's next operation is local).

Lowerings are registered per transaction *function* (``Atomic.fn`` is
usually a bound method; the registry keys on ``__func__``). Only
transactions that return ``None`` and touch a single line with plain
``+`` updates are lowered here; everything else parks the epoch and runs
through the interpreted path, which is always correct.
"""

from __future__ import annotations

from typing import Optional

from ...params import LINE_BYTES, WORD_BYTES


class FusedPlan:
    """One Atomic lowered to contiguous labeled adds on a single line."""

    __slots__ = ("line", "idx0", "deltas", "label", "value")

    def __init__(self, line: int, idx0: int, deltas: tuple, label,
                 value=None):
        self.line = line
        self.idx0 = idx0      # first word index within the line
        self.deltas = deltas  # one addend per consecutive word
        self.label = label
        self.value = value    # the transaction's return value


#: transaction function -> (Atomic) -> Optional[FusedPlan]
_LOWERINGS: dict = {}


def register_lowering(fn, lower) -> None:
    """Register ``lower`` for transactions whose ``Atomic.fn`` is ``fn``
    (or a bound method of it). ``lower(atomic)`` returns a FusedPlan, or
    None to decline (the transaction then runs interpreted)."""
    _LOWERINGS[getattr(fn, "__func__", fn)] = lower


def lower_atomic(op) -> Optional[FusedPlan]:
    """Look up and apply the lowering for one Atomic, if any."""
    fn = op.fn
    lower = _LOWERINGS.get(getattr(fn, "__func__", fn))
    if lower is None:
        return None
    return lower(op)


# ---------------------------------------------------------------------------
# Built-in lowerings
# ---------------------------------------------------------------------------

def _lower_shared_counter_add(op) -> Optional[FusedPlan]:
    """``SharedCounter.add``: one labeled load + store = one-word add."""
    counter = op.fn.__self__
    delta = op.args[0] if op.args else 1
    addr = counter.addr
    return FusedPlan(addr // LINE_BYTES, addr % LINE_BYTES // WORD_BYTES,
                     (delta,), counter.label)


def _lower_kmeans_accumulate(op) -> Optional[FusedPlan]:
    """``_KMeans._accumulate``: dims coordinate adds plus a count add,
    contiguous on the cluster's accumulator line."""
    app = op.fn.__self__
    cluster, point = op.args
    base = app.accum[cluster]
    return FusedPlan(base // LINE_BYTES, base % LINE_BYTES // WORD_BYTES,
                     (*point, 1), app.ADD)


def _register_builtins() -> None:
    from ...datatypes.counter import SharedCounter
    from ...workloads.apps.kmeans import _KMeans

    register_lowering(SharedCounter.add, _lower_shared_counter_add)
    register_lowering(_KMeans._accumulate, _lower_kmeans_accumulate)


_register_builtins()


# ---------------------------------------------------------------------------
# Batched reduction kernels
#
# A reduction folds the U sharers' partial lines one merge at a time on the
# shadow thread. For word-wise pure labels the fold never consults the
# HandlerContext, so the whole sharer vector can be lowered to one numpy
# column reduction — provided the result is *bit-identical* to the
# sequential fold. That holds exactly when (a) the label's word reducer is
# associative and commutative on the data actually present, and (b) numpy's
# int64 arithmetic cannot overflow where Python ints would not. The
# registry below therefore keys on a per-label ``vector_reduce`` tag set by
# the label factories that satisfy (a) — ADD, MIN, MAX, OR — and
# :func:`reduce_lines` declines (returns None, sequential fallback) any
# line set that violates (b): non-int words (OPUT tuples, MIN/MAX ``None``
# identities, floats) or magnitudes near the int64 range.
#
# numpy is imported lazily on the first kernel invocation: the tag
# vocabulary (``SUPPORTED_REDUCE_TAGS``) is consulted by the analysis
# passes (``missing-lowering`` lint, model checker), which must run on the
# no-numpy CI legs.
# ---------------------------------------------------------------------------

#: Magnitude bound per word: |v| <= 2**48 keeps any sum of up to 2**14
#: lines inside int64 exactly (and any OR, whose magnitude never exceeds
#: its largest operand's bit-width).
_KERNEL_BOUND = 1 << 48

#: ``vector_reduce`` tags with a registered column kernel. The
#: ``missing-lowering`` lint checks every word-wise datatype label
#: against this vocabulary.
SUPPORTED_REDUCE_TAGS = frozenset({"add", "min", "max", "or"})

np = None  # bound by _load_numpy on first kernel use

#: tag -> column reducer over an (nrows, words) int64 array.
_REDUCERS: dict = {}


def _load_numpy():
    global np
    if np is None:
        import numpy
        np = numpy
        _REDUCERS.update({
            "add": lambda arr: arr.sum(axis=0),
            "min": lambda arr: arr.min(axis=0),
            "max": lambda arr: arr.max(axis=0),
            "or": lambda arr: np.bitwise_or.reduce(arr, axis=0),
        })
    return np


def reduce_lines(label, rows):
    """Fold ``rows`` (full-line word lists) under ``label`` in one numpy
    pass. Returns the merged word list, or None to decline — unknown
    label, fewer than two rows, or data the kernel cannot reproduce
    bit-for-bit (non-int words, out-of-range magnitudes)."""
    tag = getattr(label, "vector_reduce", None)
    if tag not in SUPPORTED_REDUCE_TAGS or len(rows) < 2:
        return None
    bound = _KERNEL_BOUND
    for row in rows:
        for v in row:
            if type(v) is not int or not -bound <= v <= bound:
                return None
    _load_numpy()
    out = _REDUCERS[tag](np.asarray(rows, dtype=np.int64))
    return [int(v) for v in out]
