"""Per-core statistic columns for the vector backend's epoch path.

During an epoch the wave loop may execute thousands of operations without
ever touching the shared :class:`~repro.sim.stats.Stats` object: each
operation bumps a per-core slot in one of these columns instead. At the
epoch boundary the columns are lowered to int64 ndarrays and reduced with
numpy — scalar totals via array sums, per-core cycle-breakdown merges via
a nonzero mask — into the ordinary Stats fields, so the oracle
(``Stats.comparable()``) sees exactly the numbers the interpreted engine
would have produced.

The hot-path accumulators are plain Python lists on purpose: a scalar
indexed add on an ndarray costs more in CPython than the same add on a
list, so ndarray accumulators would make the wave loop slower than the
interpreter it replaces. The arrays (and the win) live at the flush
boundary, where whole columns reduce at once.
"""

from __future__ import annotations

import numpy as np


class EpochColumns:
    """Column-per-statistic, slot-per-core accumulators with a numpy flush."""

    __slots__ = ("num_cores", "instructions", "labeled", "non_tx_cycles",
                 "tx_cycles", "commits", "by_label", "proto_ops",
                 "pred_hits", "pred_misses", "fence_causes")

    def __init__(self, num_cores: int):
        self.num_cores = num_cores
        self.instructions = [0] * num_cores
        self.labeled = [0] * num_cores
        self.non_tx_cycles = [0] * num_cores
        self.tx_cycles = [0] * num_cores
        self.commits = [0] * num_cores
        #: label name -> labeled-op count (order-insensitive Counter merge).
        self.by_label: dict = {}
        #: Host-side epoch diagnostics (scalars; flushed into host_vector_*).
        self.proto_ops = 0
        self.pred_hits = 0
        self.pred_misses = 0
        #: fence cause -> count, flushed into host_vector_fence_causes.
        #: When the observer is installed the engine stages causes in a
        #: per-epoch dict instead (so each epoch span can report its own
        #: causes) and merges them here at the epoch boundary.
        self.fence_causes: dict = {}

    def flush(self, stats) -> None:
        """Reduce every column into ``stats`` and reset."""
        n = self.num_cores
        instr = np.asarray(self.instructions, dtype=np.int64)
        labeled = np.asarray(self.labeled, dtype=np.int64)
        non_tx = np.asarray(self.non_tx_cycles, dtype=np.int64)
        tx = np.asarray(self.tx_cycles, dtype=np.int64)
        commits = np.asarray(self.commits, dtype=np.int64)

        stats.instructions += int(instr.sum())
        stats.labeled_instructions += int(labeled.sum())
        stats.commits += int(commits.sum())

        breakdown = stats.breakdown
        for core in np.nonzero((non_tx != 0) | (tx != 0))[0]:
            entry = breakdown[core]
            entry.non_tx += int(non_tx[core])
            entry.tx_committed += int(tx[core])

        if self.by_label:
            stats.labeled_by_label.update(self.by_label)
            self.by_label = {}

        stats.host_vector_proto_ops += self.proto_ops
        stats.host_vector_miss_predicted += self.pred_hits + self.pred_misses
        stats.host_vector_miss_mispredicts += self.pred_misses
        self.proto_ops = 0
        self.pred_hits = 0
        self.pred_misses = 0
        if self.fence_causes:
            stats.host_vector_fence_causes.update(self.fence_causes)
            self.fence_causes = {}

        self.instructions = [0] * n
        self.labeled = [0] * n
        self.non_tx_cycles = [0] * n
        self.tx_cycles = [0] * n
        self.commits = [0] * n
