"""Vector backend: numpy-backed epoch engine, selectable per Machine.

The interpreted engine (``repro.sim.engine``) advances one core by one
operation per scheduler step. This package provides an alternative
backend — ``Machine(..., backend="vector")``, env ``REPRO_BACKEND=vector``,
harness ``--backend vector`` — that advances the simulation in *vectorized
epochs*: whenever every live core's next operation is provably local
(private-hit loads/stores, labeled updates on uncontended U lines, think
time, or a whole transaction fusible through the lowering registry in
:mod:`.kernels`), the engine executes a conservative time window of those
operations in bulk, accumulating statistics into per-core columns
(:mod:`.columns`) that are reduced into the ordinary :class:`Stats` fields
with numpy at epoch boundaries. Anything else — misses, conflicts, NACKs,
gathers, reductions, barriers, commits of non-fused transactions — falls
back per-op to the existing handlers in ``coherence/protocol.py``, so
protocol semantics stay centralized and ``Stats.comparable()`` is the
parity oracle (see tests/test_vector_equivalence.py).

This module owns backend *selection*: it never imports numpy at module
load, so the interpreted engine keeps working on installs without the
``[vector]`` extra. ``resolve_backend`` implements the precedence rules:
an explicit ``backend=`` argument beats ``REPRO_BACKEND``, which beats the
default. An explicitly requested vector backend without numpy raises
:class:`~repro.errors.BackendUnavailableError`; an env-requested one logs
a warning and falls back to the interpreted engine (so exporting
``REPRO_BACKEND=vector`` machine-wide cannot break minimal installs).
"""

from __future__ import annotations

import logging
import os
from typing import Optional

from ...errors import BackendUnavailableError, ConfigError

log = logging.getLogger("repro.sim.vector")

#: Environment variable selecting the engine backend when ``Machine`` is
#: constructed without an explicit ``backend=`` argument.
BACKEND_ENV = "REPRO_BACKEND"

#: The default, pure-Python per-op engine (``repro.sim.engine.Engine``).
INTERP = "interp"
#: The numpy-backed epoch engine (``repro.sim.vector.engine.VectorEngine``).
VECTOR = "vector"

BACKENDS = (INTERP, VECTOR)


def available() -> bool:
    """Whether the vector backend's only dependency (numpy) imports."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve the effective backend name (``"interp"`` or ``"vector"``).

    ``explicit`` (the ``Machine(backend=...)`` / CLI argument) takes
    precedence over :data:`BACKEND_ENV`; both beat the interpreted
    default. Unknown names raise :class:`ConfigError`. A vector request
    without numpy raises :class:`BackendUnavailableError` when explicit,
    and falls back to the interpreted engine (with a logged warning) when
    it came from the environment.
    """
    if explicit is not None:
        name = str(explicit).strip().lower()
        from_env = False
    else:
        name = os.environ.get(BACKEND_ENV, "").strip().lower() or INTERP
        from_env = True
    if name not in BACKENDS:
        raise ConfigError(
            f"unknown engine backend {name!r}; choose one of {BACKENDS}"
        )
    if name == VECTOR and not available():
        if not from_env:
            raise BackendUnavailableError(
                "the vector backend requires numpy; install it with "
                "`pip install repro[vector]` or use backend='interp'"
            )
        log.warning(
            "%s=vector but numpy is not installed; falling back to the "
            "interpreted engine (install with `pip install repro[vector]`)",
            BACKEND_ENV,
        )
        return INTERP
    return name
