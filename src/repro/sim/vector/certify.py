"""Read-only miss-latency certifier, as a pure function of protocol state.

This is the vector backend's K_PROTO oracle (see DESIGN.md §6.4),
extracted from the engine so it is a *pure* function of a
:class:`~repro.coherence.protocol.MemorySystem` — no numpy, no engine,
no mutation.  Two consumers share the one definition:

* :class:`~repro.sim.vector.engine.VectorEngine` calls it to decide
  whether a fast-path miss may execute inside an epoch and at what
  closed-form latency (validated post-hoc via
  ``host_vector_miss_predicted`` / ``_mispredicts``); and
* the exhaustive model checker (``python -m repro.analysis modelcheck``)
  proves its *soundness obligation*: on every reachable directory state
  of a bounded config, a non-``None`` prediction must equal the charge
  the real transition handlers produce — not just on the states
  benchmarks happen to visit.

:func:`certify_access` inspects cache/directory internals but never
writes them, never touches LRU order, and never draws the rng, so a
certification probe is invisible to the simulation.
"""

from __future__ import annotations

from typing import Optional

from ...coherence.messages import AccessKind
from ...coherence.states import State

_M = State.M
_E = State.E
_S = State.S
_U = State.U

_LOAD = AccessKind.LOAD
_STORE = AccessKind.STORE
_LLOAD = AccessKind.LABELED_LOAD
_LSTORE = AccessKind.LABELED_STORE
_GATHER = AccessKind.GATHER


def certify_access(msys, core: int, kind: AccessKind, addr: int, label,
                   now: int, spec: bool = False) -> Optional[int]:
    """Decide whether one access that missed the private-hit fast
    path is *fully determined by the current snapshot* and predict its
    closed-form latency.

    Returns the predicted charge in cycles (``>= 0``), ``-1`` for a
    transition that is certified deterministic but whose latency is
    not worth predicting closed-form (reductions, gathers with
    donors), or ``None`` to decline.

    The certification invariant: the access must not abort or NACK
    anyone — every private copy it downgrades, invalidates, reduces, or
    splits is non-speculative; every handler it runs is word-wise pure
    (no HandlerContext memory traffic); every install it performs either
    replaces an existing line or evicts a victim whose writeback is
    deterministic (never a U line, whose eviction draws the rng and
    may abort foreign transactions); and it never allocates an L3
    entry when the directory is at capacity (an inclusive L3 eviction
    can abort transactions).

    The predicted latency mirrors ``_charge_dir_access`` /
    ``_charge_inval_fanout`` / ``_forward_latency`` /
    ``_apply_occupancy`` using only pure mesh geometry.

    ``spec`` marks a transactional (speculative) requester. The same
    transitions certify, with two extra obligations: no victim
    anywhere may be speculative (a NACK would abort *us*, and which
    of NACK/abort fires depends on timestamp order), and the L1
    insert this access performs must not evict one of our own
    speculatively-accessed lines (a self-abort)."""
    config = msys.config
    cache = msys.caches[core]
    l1_lat = msys._l1_latency
    l12_lat = msys._l12_latency
    line_no = addr // 64
    entry = cache.lookup(line_no)
    directory = msys.directory
    ent = directory.peek(line_no)
    if spec and not l1_touch_safe(cache, line_no):
        return None

    if kind is _GATHER:
        if not config.gather_enabled:
            # Ablation: _gather delegates to _labeled_access.
            return certify_access(msys, core, _LLOAD, addr, label, now, spec)
        if entry is None:
            return None  # acquire-U-then-gather: two transitions
        st = entry.state
        if st is _M or st is _E:
            # _gather's acquire-U probe short-circuits to a plain
            # labeled hit: the core already holds the full value.
            return l1_lat if line_no in cache._l1 else l12_lat
        if (st is not _U or entry.label is not label
                or entry.speculative or entry.clean_words is not None):
            return None
        if ent is None or core not in ent.u_sharers:
            return None
        others = ent.u_sharers - {core}
        if not others:
            stall = max(0, msys._line_busy.get(line_no, 0) - now)
            return (msys._dir_rt[core][line_no % msys._l3_banks]
                    + config.l3.latency + stall
                    + (l1_lat if line_no in cache._l1 else l12_lat))
        if label._split_word is None:
            return None  # line-level splitters touch memory
        for other in others:
            oentry = msys.caches[other].lookup(line_no)
            if oentry is None or oentry.speculative:
                return None
        return -1  # split+merge latency: no closed form kept

    # --- shared prediction pieces ---------------------------------
    bank = line_no % msys._l3_banks
    dir_rt = msys._dir_rt[core][bank]
    l3lat = config.l3.latency
    stall = max(0, msys._line_busy.get(line_no, 0) - now)
    mesh = msys.mesh
    caches = msys.caches
    base = l12_lat + dir_rt + l3lat  # every miss route below

    if entry is not None and entry.state is _U:
        # Unlabeled (or differently-labeled) access to an own U line:
        # _noncommutative_own_u.
        if (kind is _LLOAD or kind is _LSTORE) and entry.label is label:
            # Matching-label labeled hit (only reachable via the
            # disabled-gather delegation; the fast path owns it
            # otherwise).
            return l1_lat if line_no in cache._l1 else l12_lat
        return _certify_own_u(msys, core, line_no, entry, ent, cache, stall)

    if kind is _LOAD:
        if entry is not None:
            return None  # M/E/S load hits belong to the fast path
        if ent is None:
            if 0 < directory.num_lines <= len(directory._entries):
                return None  # allocation would force an L3 eviction
            if not l2_install_safe(cache, line_no):
                return None
            return base + config.mem_latency + stall
        owner = ent.owner
        if owner is not None:
            if owner == core:
                return None  # directory/cache disagree; let it raise
            oentry = caches[owner].lookup(line_no)
            if oentry is None or oentry.spec_written \
                    or oentry.spec_labeled:
                # spec_read-only owners downgrade without conflict.
                return None
            if not l2_install_safe(cache, line_no):
                return None
            fanout = mesh.max_latency_from(
                msys._bank_tile(line_no),
                [msys._core_tile(owner)]) * 2
            fwd = mesh.latency(msys._core_tile(owner),
                               msys._core_tile(core))
            return base + fanout + fwd + stall
        if ent.u_sharers:
            return _certify_reduce(msys, core, line_no, ent, cache)
        if not l2_install_safe(cache, line_no):
            return None
        return base + stall  # E-if-unshared / S fill from the L3

    if kind is _STORE:
        if entry is not None and entry.state is not _S:
            return None  # M/E store hits belong to the fast path
        if ent is None:
            if entry is not None:
                return None  # S copy without an L3 entry: inconsistent
            if 0 < directory.num_lines <= len(directory._entries):
                return None
            if not l2_install_safe(cache, line_no):
                return None
            return base + config.mem_latency + stall
        if ent.u_sharers:
            return _certify_reduce(msys, core, line_no, ent, cache)
        if ent.owner == core:
            return None
        victims = []
        if ent.owner is not None:
            victims.append(ent.owner)
        victims.extend(s for s in ent.sharers if s != core)
        fwd = 0
        for victim in victims:
            ventry = caches[victim].lookup(line_no)
            if ventry is None or ventry.speculative:
                return None  # lost line raises; spec line conflicts
            vst = ventry.state
            if vst is _M or vst is _E:
                fwd = mesh.latency(msys._core_tile(victim),
                                   msys._core_tile(core))
        if entry is None and not l2_install_safe(cache, line_no):
            return None  # an S copy upgrades in place, no install
        fanout = 0
        if victims:
            fanout = mesh.max_latency_from(
                msys._bank_tile(line_no),
                [msys._core_tile(v) for v in victims]) * 2
        return base + fanout + fwd + stall

    # LABELED_LOAD / LABELED_STORE miss (I or S): GETU, Sec. III-B3
    # cases 1-5.
    if entry is not None and entry.state is not _S:
        return None  # M/E and matching-U hits belong to the fast path
    if ent is None:
        if entry is not None:
            return None  # S copy without an L3 entry: inconsistent
        if 0 < directory.num_lines <= len(directory._entries):
            return None
        if not l2_install_safe(cache, line_no):
            return None
        return base + config.mem_latency + stall
    if ent.u_sharers:
        if ent.u_label is label:
            # Case 4: same label -> identity install, no data moves.
            if not l2_install_safe(cache, line_no):
                return None
            return base + stall
        if core in ent.u_sharers:
            return None  # inconsistent with entry I/S; let it raise
        # Case 3: reduce at the requester, re-enter U relabeled.
        return _certify_reduce(msys, core, line_no, ent, cache)
    owner = ent.owner
    if owner is not None:
        if owner == core:
            return None
        oentry = caches[owner].lookup(line_no)
        if oentry is None or oentry.speculative:
            return None  # case 5 NACK-checks *any* speculative bit
        if not l2_install_safe(cache, line_no):
            return None
        fanout = mesh.max_latency_from(msys._bank_tile(line_no),
                                       [msys._core_tile(owner)]) * 2
        return base + fanout + stall  # owner keeps data: no forward
    # Cases 1-2: invalidate S sharers, install the L3 data.
    victims = [s for s in ent.sharers if s != core]
    for victim in victims:
        ventry = caches[victim].lookup(line_no)
        if ventry is not None and ventry.speculative:
            return None
    if entry is None and not l2_install_safe(cache, line_no):
        return None  # an own S copy is dropped first: no net growth
    fanout = 0
    if victims:
        fanout = mesh.max_latency_from(
            msys._bank_tile(line_no),
            [msys._core_tile(v) for v in victims]) * 2
    return base + fanout + stall


def _certify_own_u(msys, core: int, line_no: int, entry, ent,
                   cache, stall: int) -> Optional[int]:
    """Certify ``_noncommutative_own_u``: an unlabeled or relabeling
    access to a line this core holds in U. Sole sharer converts in
    place (closed-form); multiple sharers reduce here (certified,
    unpredicted)."""
    if (entry.clean_words is not None or entry.spec_read
            or entry.spec_written or entry.spec_labeled):
        return None
    if ent is None or core not in ent.u_sharers:
        return None  # directory/cache disagree; let the full path raise
    if len(ent.u_sharers) == 1:
        return ((msys._l1_latency if line_no in cache._l1
                 else msys._l12_latency)
                + msys._dir_rt[core][line_no % msys._l3_banks]
                + msys.config.l3.latency + stall)
    if ent.u_label._reduce_word is None:
        return None
    caches = msys.caches
    for other in ent.u_sharers:
        if other == core:
            continue
        oentry = caches[other].lookup(line_no)
        if oentry is None or oentry.speculative:
            return None
    # _install_reduced replaces this core's own line: no growth.
    return -1


def _certify_reduce(msys, core: int, line_no: int, ent,
                    cache) -> Optional[int]:
    """Certify a reduction collapsing all U copies at a core that does
    *not* hold the line: every sharer's copy present and
    non-speculative (no NACK, no abort, no lost-line error), a
    word-wise label (the fold never touches memory), and a safe
    install of the merged line."""
    label = ent.u_label
    if label is None or label._reduce_word is None:
        return None
    caches = msys.caches
    for sharer in ent.u_sharers:
        if sharer == core:
            return None  # own copy missed but directory says U: raise
        sentry = caches[sharer].lookup(line_no)
        if sentry is None or sentry.speculative:
            return None
    if not l2_install_safe(cache, line_no):
        return None
    return -1


def l2_install_safe(cache, line_no: int) -> bool:
    """True when installing ``line_no`` cannot trigger a
    nondeterministic private eviction: the key already exists
    (replace in place), there is headroom, or the LRU victim's
    eviction is deterministic (M/E writeback, S drop — but not U,
    whose eviction draws the rng and may abort foreign transactions,
    and not a speculative line, whose eviction aborts)."""
    lines = cache._lines
    if line_no in lines:
        return True
    cap = cache._l2_capacity
    if cap <= 0 or len(lines) < cap:
        return True
    victim = lines[next(iter(lines))]
    return victim.state is not _U and not victim.speculative


def l1_touch_safe(cache, line_no: int) -> bool:
    """True when the L1 insert of ``line_no`` (every certified access
    touches its target) cannot evict one of this core's own
    speculatively-accessed lines, which would abort the requester's
    transaction (Sec. III-B1). Only consulted for speculative
    requesters — without a transaction this core has no speculative
    lines to lose."""
    l1 = cache._l1
    if line_no in l1:
        return True
    cap = cache._l1_capacity
    if cap <= 0 or len(l1) < cap:
        return True
    victim = cache._lines.get(next(iter(l1)))
    return victim is None or not victim.speculative
