"""Per-core clocks and the min-clock scheduling order.

The engine is execution-driven: each core has a local cycle counter, and the
scheduler always advances the core whose clock is smallest. This yields a
deterministic fine-grained interleaving that approximates the paper's
cycle-level simulation at memory-operation granularity.

This class is the *single-step reference API*: one
``next_core()`` / step / ``reschedule()`` transaction per simulated
operation. The engine's default run-ahead scheduler operates on the same
heap (``_heap`` / ``_done``) in quanta — popping a core once and stepping it
until its clock passes the next stamp under the identical ``(stamp, core)``
tie-break — and ``REPRO_NO_RUNAHEAD=1`` falls back to driving this API
directly. The differential tests hold both to the same op-level
interleaving.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from ..errors import SimulationError


class CoreClocks:
    """Tracks each core's local cycle count and orders cores by time.

    Cores may be *parked* (blocked on backoff or finished); parked cores are
    excluded from scheduling until released at a wake-up cycle.
    """

    __slots__ = ("num_cores", "cycles", "_heap", "_parked", "_done")

    def __init__(self, num_cores: int, jitter=None, max_jitter: int = 8):
        self.num_cores = num_cores
        self.cycles: List[int] = [0] * num_cores
        if jitter is not None and max_jitter > 0:
            # Small initial skew injects the paper's non-determinism without
            # changing total work.
            self.cycles = [jitter.randrange(max_jitter) for _ in range(num_cores)]
        self._heap: List[Tuple[int, int]] = [
            (self.cycles[c], c) for c in range(num_cores)
        ]
        heapq.heapify(self._heap)
        self._parked = [False] * num_cores
        self._done = [False] * num_cores

    def advance(self, core: int, cycles: int) -> None:
        """Charge ``cycles`` to ``core``'s local clock."""
        if cycles < 0:
            raise SimulationError(f"negative cycle charge: {cycles}")
        self.cycles[core] += cycles

    def now(self, core: int) -> int:
        return self.cycles[core]

    def park_until(self, core: int, wake_cycle: int) -> None:
        """Block ``core`` until its clock reaches ``wake_cycle`` (backoff)."""
        self.cycles[core] = max(self.cycles[core], wake_cycle)

    def finish(self, core: int) -> None:
        """Mark ``core``'s thread as completed."""
        self._done[core] = True

    def is_finished(self, core: int) -> bool:
        return self._done[core]

    def all_finished(self) -> bool:
        return all(self._done)

    def reschedule(self, core: int) -> None:
        """Push the core back into the ready queue at its current time."""
        if not self._done[core]:
            heapq.heappush(self._heap, (self.cycles[core], core))

    def next_core(self) -> Optional[int]:
        """Pop the runnable core with the smallest clock, or None if all
        cores have finished."""
        while self._heap:
            stamp, core = heapq.heappop(self._heap)
            if self._done[core]:
                continue
            if stamp < self.cycles[core]:
                # Stale entry (core was charged since being queued); requeue
                # at its true time to preserve min-clock order.
                heapq.heappush(self._heap, (self.cycles[core], core))
                continue
            return core
        if self.all_finished():
            return None
        raise SimulationError("no runnable core but simulation not finished")

    @property
    def max_cycle(self) -> int:
        """The simulated completion time so far (max over core clocks)."""
        return max(self.cycles)
