"""Simulation statistics.

Collects everything the paper's evaluation reports:

* per-core cycle breakdown: non-transactional / transactional-committed /
  transactional-aborted (Fig. 17);
* wasted-cycle breakdown by conflict cause (Fig. 18);
* GET-request breakdown between private L2s and the shared L3:
  GETS / GETX / GETU (Fig. 19);
* commit/abort counts, reductions, gathers, splits;
* instruction counts, including labeled-instruction fractions (Sec. VII).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


class WastedCause(enum.Enum):
    """Why an aborted transaction's work was wasted (Fig. 18 categories)."""

    READ_AFTER_WRITE = "Read after Write"
    WRITE_AFTER_READ = "Write after Write/Read"
    GATHER_AFTER_LABELED = "Gather after Labeled access"
    OTHER = "Others"


@dataclass
class CoreCycleBreakdown:
    """Cycles spent by one core, split per Fig. 17."""

    non_tx: int = 0
    tx_committed: int = 0
    tx_aborted: int = 0

    @property
    def total(self) -> int:
        return self.non_tx + self.tx_committed + self.tx_aborted


@dataclass
class Stats:
    """Aggregated run statistics. One instance per simulation run."""

    num_cores: int = 0

    #: Simulated completion time of the parallel region (max core clock).
    parallel_cycles: int = 0

    # --- cycles -----------------------------------------------------------
    breakdown: List[CoreCycleBreakdown] = field(default_factory=list)
    wasted_by_cause: Counter = field(default_factory=Counter)
    shadow_thread_cycles: int = 0  # reduction/split handler work

    # --- transactions -----------------------------------------------------
    commits: int = 0
    aborts: int = 0
    nacks_sent: int = 0

    # --- coherence traffic -------------------------------------------------
    gets: int = 0   # GETS requests from private caches to L3/directory
    getx: int = 0   # GETX
    getu: int = 0   # GETU (CommTM only)
    invalidations: int = 0
    downgrades: int = 0
    forwards: int = 0          # U-state data forwards (reduction traffic)
    writebacks: int = 0
    l3_misses: int = 0
    noc_hops: int = 0

    # --- CommTM mechanisms --------------------------------------------------
    reductions: int = 0        # full reductions (lines merged counted below)
    reduction_lines: int = 0   # lines forwarded+merged across all reductions
    gathers: int = 0
    splits: int = 0
    u_evictions: int = 0

    # --- instructions -------------------------------------------------------
    instructions: int = 0
    labeled_instructions: int = 0  # labeled loads/stores + gathers
    #: Labeled operations per label name (profiling which commutative
    #: operations an application actually exercises — Table II's content).
    labeled_by_label: Counter = field(default_factory=Counter)
    #: Reductions per label name.
    reductions_by_label: Counter = field(default_factory=Counter)
    #: Gather requests per label name.
    gathers_by_label: Counter = field(default_factory=Counter)

    # --- host-side instrumentation ------------------------------------------
    # ``host_*`` fields describe the *simulator*, not the simulated machine:
    # they may legitimately differ between host-level optimizations that are
    # bit-identical in simulated behaviour, and are therefore excluded from
    # :meth:`comparable` (and from :meth:`summary`).

    #: Memory operations serviced by the coherence protocol's private-hit
    #: fast path (see ``MemorySystem.fast_load`` and friends).
    host_fastpath_hits: int = 0
    #: Memory operations that *attempted* the fast path and fell through to
    #: the full protocol path. Not counted when the fast path is disabled
    #: (``REPRO_NO_FASTPATH``, obs mode) or adaptively gated off — so
    #: ``hits + misses`` is the number of genuine attempts.
    host_fastpath_misses: int = 0
    #: True when the engine's adaptive gate turned the fast path off
    #: mid-run because the observed hit rate stayed below threshold after
    #: the warmup window (host-only decision; simulated stats unchanged).
    host_fastpath_gated: bool = False
    #: Scheduling quanta executed by the run-ahead scheduler — each batch
    #: is one heap transaction covering ``host_runahead_ops /
    #: host_runahead_batches`` simulated steps on one core. Zero when
    #: ``REPRO_NO_RUNAHEAD=1`` selects the stepped reference scheduler.
    host_runahead_batches: int = 0
    #: Simulated steps executed inside run-ahead batches.
    host_runahead_ops: int = 0
    #: Top-K hottest lines from the obs layer's metrics registry (empty
    #: unless the run observed; see :mod:`repro.obs`).
    host_hot_lines: List[dict] = field(default_factory=list)
    #: Which engine backend produced this run ("interp" or "vector").
    #: ``host_`` prefix on purpose: backends are bit-identical in simulated
    #: behaviour, so the backend name must not enter :meth:`comparable`.
    host_backend: str = "interp"
    #: Vectorized epochs executed by the vector backend (0 under interp).
    host_vector_epochs: int = 0
    #: Simulated operations executed inside vectorized epochs.
    host_vector_epoch_ops: int = 0
    #: Whole transactions executed closed-form via the fused-plan path.
    host_vector_fused_txs: int = 0
    #: Full-protocol accesses (misses, upgrades, reductions, gathers)
    #: certified deterministic and executed inside an epoch instead of
    #: fencing it.
    host_vector_proto_ops: int = 0
    #: Reduction merges folded by the batched numpy kernel instead of the
    #: sequential per-line handler loop (identical merged words & cycles).
    host_vector_kernel_reductions: int = 0
    #: In-epoch protocol accesses whose latency the closed-form NoC/
    #: directory-table predictor computed before execution...
    host_vector_miss_predicted: int = 0
    #: ...and how many of those predictions disagreed with the protocol's
    #: actual charge (the protocol result is always authoritative; a
    #: mispredict is a model-coverage datum, not an error).
    host_vector_miss_mispredicts: int = 0
    #: True when the adaptive backend gate rebound the run to the
    #: interpreted run-ahead loop because epoch engagement stayed below
    #: threshold through the warmup window (host-only decision).
    host_vector_gated: bool = False
    #: Why epochs fenced: cause -> count (e.g. "barrier", "tx_restart",
    #: "miss_unsafe"). Host-side diagnosis of epoch engagement.
    host_vector_fence_causes: Counter = field(default_factory=Counter)

    def __post_init__(self) -> None:
        if self.num_cores and not self.breakdown:
            self.breakdown = [CoreCycleBreakdown() for _ in range(self.num_cores)]

    # --- recording helpers --------------------------------------------------

    def charge(self, core: int, cycles: int, in_tx: bool) -> None:
        """Charge cycles to a core. Transactional cycles start as committed;
        :meth:`reclassify_aborted` moves them to aborted on rollback."""
        entry = self.breakdown[core]
        if in_tx:
            entry.tx_committed += cycles
        else:
            entry.non_tx += cycles

    def reclassify_aborted(self, core: int, cycles: int, cause: WastedCause) -> None:
        """Move ``cycles`` of this core's transactional time to the aborted
        bucket, attributing them to ``cause``."""
        entry = self.breakdown[core]
        moved = min(cycles, entry.tx_committed)
        entry.tx_committed -= moved
        entry.tx_aborted += moved
        self.wasted_by_cause[cause] += moved

    # --- derived summaries ---------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(b.total for b in self.breakdown)

    @property
    def non_tx_cycles(self) -> int:
        return sum(b.non_tx for b in self.breakdown)

    @property
    def tx_committed_cycles(self) -> int:
        return sum(b.tx_committed for b in self.breakdown)

    @property
    def tx_aborted_cycles(self) -> int:
        return sum(b.tx_aborted for b in self.breakdown)

    @property
    def l3_get_requests(self) -> int:
        """Total GET requests between private L2s and the L3 (Fig. 19)."""
        return self.gets + self.getx + self.getu

    @property
    def labeled_fraction(self) -> float:
        """Fraction of labeled instructions over all instructions
        (Sec. VII reports this per application)."""
        if self.instructions == 0:
            return 0.0
        return self.labeled_instructions / self.instructions

    @property
    def abort_rate(self) -> float:
        attempts = self.commits + self.aborts
        return self.aborts / attempts if attempts else 0.0

    @property
    def fastpath_hit_rate(self):
        """Fraction of fast-path *attempts* serviced by the private-hit fast
        path (host-side instrumentation). ``None`` when no attempt was made
        — fast path disabled via ``REPRO_NO_FASTPATH``, forced off by the
        obs layer, or the run was too short to attempt one — which is a
        different situation from "enabled but never hit" (0.0). Under the
        vector backend the counters cover only the strict (per-op) phases —
        epoch ops hit by construction and are not counted — so a ratio
        would be misleading: the string ``"n/a (vector)"`` is returned
        instead."""
        if self.host_backend == "vector":
            return "n/a (vector)"
        total = self.host_fastpath_hits + self.host_fastpath_misses
        return self.host_fastpath_hits / total if total else None

    @property
    def runahead_ops_per_batch(self):
        """Mean simulated steps per run-ahead scheduling quantum; ``None``
        under the stepped reference scheduler (``REPRO_NO_RUNAHEAD=1``).
        Under the vector backend the quanta interleave with vectorized
        epochs, so the mean no longer describes the run: the string
        ``"n/a (vector)"`` is returned instead."""
        if self.host_backend == "vector":
            return "n/a (vector)"
        if self.host_runahead_batches == 0:
            return None
        return self.host_runahead_ops / self.host_runahead_batches

    def comparable(self) -> Dict[str, object]:
        """Every *simulated* statistic as a plain dict, for equivalence
        assertions (e.g. the fast-path differential tests). Host-side
        ``host_*`` instrumentation fields are excluded; Counters are
        normalized to plain dicts with string keys and no zero entries."""
        out: Dict[str, object] = {}
        for f in dataclasses.fields(self):
            if f.name.startswith("host_"):
                continue
            value = getattr(self, f.name)
            if f.name == "breakdown":
                value = [(b.non_tx, b.tx_committed, b.tx_aborted)
                         for b in value]
            elif isinstance(value, Counter):
                value = {
                    (key.value if isinstance(key, enum.Enum) else key): count
                    for key, count in value.items() if count
                }
            out[f.name] = value
        return out

    def cycle_breakdown_totals(self) -> Dict[str, int]:
        return {
            "non_tx": self.non_tx_cycles,
            "tx_committed": self.tx_committed_cycles,
            "tx_aborted": self.tx_aborted_cycles,
        }

    def wasted_breakdown(self) -> Dict[str, int]:
        return {cause.value: self.wasted_by_cause.get(cause, 0)
                for cause in WastedCause}

    def get_breakdown(self) -> Dict[str, int]:
        return {"GETS": self.gets, "GETX": self.getx, "GETU": self.getu}

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline numbers, for reports and tests."""
        return {
            "cycles": self.parallel_cycles,
            "total_core_cycles": self.total_cycles,
            "commits": self.commits,
            "aborts": self.aborts,
            "abort_rate": self.abort_rate,
            "reductions": self.reductions,
            "gathers": self.gathers,
            "l3_gets": self.l3_get_requests,
            "labeled_fraction": self.labeled_fraction,
        }
