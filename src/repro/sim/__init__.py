"""Simulation substrate: deterministic RNG streams, per-core clocks,
statistics, and the execution-driven engine."""

from .rng import RngStreams
from .stats import Stats, WastedCause
from .clock import CoreClocks

__all__ = ["RngStreams", "Stats", "WastedCause", "CoreClocks"]
