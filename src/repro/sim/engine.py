"""Execution-driven engine.

Drives one workload coroutine per core at memory-operation granularity.
The scheduler always advances the core with the smallest local clock, which
approximates cycle-level interleaving; every operation charges Table I
latencies computed by the memory system.

Transactions (``Atomic`` ops) are replayed on abort: the transaction's
generator is discarded, the core stalls for randomized backoff, and a fresh
generator is created — mirroring hardware restart exactly, because all
shared-state effects go through speculative stores that rollback undoes.

Dispatch is a type-keyed table (``op.__class__`` -> bound handler) rather
than an isinstance ladder: every yielded op costs one dict lookup. Subclasses
(e.g. ``OrderedAtomic``) resolve through the MRO once and are memoized into
the table. Hot per-core state (the clock array, the active-transaction list,
the cycle breakdown) is bound to locals on the engine at construction so the
per-op path does plain list indexing instead of chained attribute loads.
All of this is pure host-side speed: simulated cycle counts are identical
to the straightforward implementation.

Scheduling runs in *run-ahead quanta*: after popping the minimum-clock core
from the ready heap, the engine keeps stepping that same core in a tight
inner loop until its clock passes the next heap stamp (same ``(stamp,
core)`` lexicographic tie-break the heap would apply), and only then
touches the heap again. One heap transaction per quantum instead of one per
op, and the popped core can never hit the stale-entry requeue path. The
interleaving is *identical* to one-pop-per-op scheduling — see
``_run_runahead`` for the invariant argument — and ``REPRO_NO_RUNAHEAD=1``
selects the stepped reference loop (``CoreClocks.next_core`` per op) for
differential testing, mirroring ``REPRO_NO_FASTPATH``.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..coherence.messages import Requester
from ..errors import SimulationError, TransactionError
from ..mem.address import line_of
from ..htm.backoff import backoff_cycles
from ..runtime.ops import (
    MEMORY_OPS,
    Atomic,
    Barrier,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Store,
    Work,
)
from ..runtime.thread_api import ThreadCtx
from .clock import CoreClocks
from .trace import EventKind

#: Sentinel distinguishing "generator finished" from any yielded op (a body
#: yielding ``None`` must still be rejected as an unknown operation).
_FINISHED = object()

#: Escape-hatch environment variable: any value other than ""/"0"/"false"
#: forces every memory operation down the full protocol path (differential
#: testing of the private-hit fast path). Read per Engine so tests can flip
#: it between runs in one process.
NO_FASTPATH_ENV = "REPRO_NO_FASTPATH"


def fastpath_enabled() -> bool:
    return os.environ.get(NO_FASTPATH_ENV, "").strip().lower() in (
        "", "0", "false")


#: Escape-hatch environment variable: any value other than ""/"0"/"false"
#: replaces the run-ahead scheduler with the stepped reference loop (one
#: ``CoreClocks.next_core()`` / step / ``reschedule()`` transaction per
#: simulated operation). Same differential-testing role as
#: REPRO_NO_FASTPATH; read per Engine.run so tests can flip it per run.
NO_RUNAHEAD_ENV = "REPRO_NO_RUNAHEAD"


def runahead_enabled() -> bool:
    return os.environ.get(NO_RUNAHEAD_ENV, "").strip().lower() in (
        "", "0", "false")


#: Adaptive fast-path gate. Attempting the private-hit fast path costs a
#: failed lookup before the full protocol path on every miss, so on
#: workloads that mostly miss (heavily shared lines under the baseline HTM)
#: it is a net host-side loss. Once this many memory operations have
#: attempted the fast path, an Engine whose observed hit rate is below
#: FASTPATH_GATE_MIN_HIT_RATE rebinds the memory-op handlers to the full
#: path for the rest of the run. Host-only decision: the full handlers are
#: bit-identical to the fast ones (tests/test_fastpath_equivalence.py), so
#: simulated results cannot change — only wall-clock does.
FASTPATH_GATE_WARMUP = 512
FASTPATH_GATE_MIN_HIT_RATE = 0.5


def _obs_noop(*args) -> None:
    """Bound in place of the Observer's lifecycle hooks when obs is off."""
    return None


@dataclass(slots=True)
class Frame:
    """One level of a thread's generator stack."""

    gen: object
    atomic: Optional[Atomic] = None
    is_tx_root: bool = False


@dataclass(slots=True)
class ThreadRunner:
    core: int
    ctx: ThreadCtx
    frames: List[Frame] = field(default_factory=list)
    pending_value: object = None
    blocked: bool = False  # waiting at a barrier
    #: ``frames[-1].gen.send``, maintained at every frame push/pop: the
    #: step loops call it once per simulated operation, and the cached
    #: bound method replaces a four-hop attribute chain. None when the
    #: thread has finished (frames empty).
    send: object = None
    #: Op already pulled from the generator but not yet executed (or the
    #: ``_FINISHED`` sentinel, with the StopIteration value in
    #: ``pulled_value``). Only the vector backend's epoch certification
    #: sets these; consuming a pulled op before resuming the generator
    #: preserves the consume-before-resume contract exactly.
    pulled: object = None
    pulled_value: object = None


class Engine:
    """Runs a set of thread bodies to completion on a machine."""

    def __init__(self, machine, bodies: List[Callable]):
        self.machine = machine
        self.config = machine.config
        self.stats = machine.stats
        self.htm = machine.htm
        self.msys = machine.msys
        if len(bodies) > self.config.num_cores:
            raise SimulationError(
                f"{len(bodies)} threads exceed {self.config.num_cores} cores"
            )
        self.clocks = CoreClocks(self.config.num_cores,
                                 jitter=machine.rng.jitter())
        self.runners: List[Optional[ThreadRunner]] = []
        for core in range(self.config.num_cores):
            if core < len(bodies):
                ctx = ThreadCtx(core, machine)
                runner = ThreadRunner(core=core, ctx=ctx)
                gen = bodies[core](ctx)
                runner.frames.append(Frame(gen=gen))
                runner.send = gen.send
                self.runners.append(runner)
            else:
                self.runners.append(None)
                self.clocks.finish(core)
        self._live_threads = len(bodies)
        self._barrier_waiting: List[int] = []

        # Hot-path bindings. ``conflicts.active`` and ``clocks.cycles`` are
        # mutated in place by their owners, so holding the list references
        # is safe; ``tracer.record`` is a bound no-op when tracing is off.
        self._tx_active = self.htm.conflicts.active
        self._cycles = self.clocks.cycles
        self._breakdown = self.stats.breakdown
        self._trace = machine.tracer.record
        self._tracing = machine.tracer.enabled
        self._commtm = self.config.commtm_enabled
        self._eager = self.config.conflict_detection != "lazy"
        self._tx_begin_cycles = self.config.tx_begin_cycles
        self._tx_commit_cycles = self.config.tx_commit_cycles
        # Memory operations dispatch to the private-hit fast path by
        # default; the ``_op_*_fast`` handlers fall back to the full
        # handlers on anything but a stable private hit. REPRO_NO_FASTPATH
        # swaps in the full handlers wholesale (zero per-op overhead in
        # either mode).
        self._fast_load = self.msys.fast_load
        self._fast_store = self.msys.fast_store
        self._fast_labeled_load = self.msys.fast_labeled_load
        self._fast_labeled_store = self.msys.fast_labeled_store
        # Transaction-lifecycle hooks for the obs layer: bound no-ops when
        # no Observer is installed (same discipline as tracer.record).
        obs = getattr(machine, "obs", None)
        self._obs = obs
        self._obs_tx_begin = obs.tx_begin if obs is not None else _obs_noop
        self._obs_tx_retry = obs.tx_retry if obs is not None else _obs_noop
        self._obs_tx_commit = obs.tx_commit if obs is not None else _obs_noop
        self._obs_tx_abort = obs.tx_abort if obs is not None else _obs_noop
        # Observing forces the full handlers: fast private hits never reach
        # MemorySystem's public ops where the protocol-level hooks live.
        # This is the same switch REPRO_NO_FASTPATH flips, proven
        # bit-identical by tests/test_fastpath_equivalence.py — so enabling
        # observability cannot change simulated results.
        # Whether memory ops currently attempt the fast path (drives the
        # host_fastpath_misses attempt counter) and whether the adaptive
        # gate still has a decision to make (one-shot, at the end of the
        # warmup window).
        self._fastpath_attempting = fastpath_enabled() and obs is None
        self._gate_pending = self._fastpath_attempting
        if self._fastpath_attempting:
            self._handlers = {
                Atomic: self._op_atomic,
                Work: self._op_work,
                Barrier: self._op_barrier,
                Load: self._op_load_fast,
                Store: self._op_store_fast,
                LabeledLoad: self._op_labeled_load_fast,
                LabeledStore: self._op_labeled_store_fast,
                LoadGather: self._op_load_gather_fast,
            }
            # When sanitizing, checkpoint after every memory op. Fast-path
            # private hits never reach MemorySystem's public ops (where the
            # slow-path checkpoint lives), so the handler table itself is
            # wrapped — the table is rebuilt per Engine, so the unsanitized
            # hot path keeps its direct bindings.
            sanitizer = getattr(machine, "sanitizer", None)
            if sanitizer is not None:
                for op_cls in (Load, Store, LabeledLoad, LabeledStore,
                               LoadGather):
                    self._handlers[op_cls] = self._sanitized_handler(
                        self._handlers[op_cls], sanitizer.check)
        else:
            # Full handlers route through MemorySystem's public ops, which
            # already checkpoint when machine.sanitizer is installed.
            self._handlers = {
                Atomic: self._op_atomic,
                Work: self._op_work,
                Barrier: self._op_barrier,
                Load: self._op_load,
                Store: self._op_store,
                LabeledLoad: self._op_labeled_load,
                LabeledStore: self._op_labeled_store,
                LoadGather: self._op_load_gather,
            }

    @staticmethod
    def _sanitized_handler(handler, check):
        """Wrap a memory-op handler with a sanitizer checkpoint."""

        def sanitized(runner, op):
            handler(runner, op)
            check()

        return sanitized

    # ------------------------------------------------------------------

    def run(self) -> None:
        if runahead_enabled():
            self._run_runahead()
        else:
            self._run_stepped()
        if not self.clocks.all_finished():
            raise SimulationError("no runnable core but simulation not finished")
        self.stats.parallel_cycles = self.clocks.max_cycle

    def _run_runahead(self) -> None:
        # Run-ahead (leapfrog) scheduler: pop the minimum core once, then
        # keep stepping *that core* in a tight inner loop until its clock
        # passes the next heap stamp. One heap transaction per quantum
        # instead of one per op, and the running core never takes the
        # stale-entry requeue path.
        #
        # Why the interleaving is bit-identical to one-pop-per-op: every
        # unfinished, unblocked core other than the running one has exactly
        # one heap entry at (a lower bound of) its current clock, so the
        # one-pop loop would re-pop the running core immediately iff
        # ``(cycles[core], core) <= heap[0]`` lexicographically. That is
        # precisely the inner loop's continue condition. When ``heap[0]``
        # is stale (its core was charged since being queued), the true
        # stamp is *larger*, so breaking out is conservative: the outer
        # loop re-pops, requeues the stale entry at its true time, and
        # hands the quantum straight back. ``heap[0]`` is re-read every
        # iteration because a step can push entries (barrier release
        # reschedules the waiters).
        clocks = self.clocks
        heap = clocks._heap
        done = clocks._done
        cycles = self._cycles
        runners = self.runners
        tx_active = self._tx_active
        handlers = self._handlers
        heappop = heapq.heappop
        # push + pop-min in one sift: the quantum hand-off and the
        # stale-entry requeue both replace a heappush/heappop pair.
        heappushpop = heapq.heappushpop
        finished = _FINISHED
        batches = 0
        ops = 0

        if not heap:
            self.stats.host_runahead_batches += batches
            self.stats.host_runahead_ops += ops
            return
        stamp, core = heappop(heap)
        while True:
            if done[core]:
                if not heap:
                    break
                stamp, core = heappop(heap)
                continue
            c = cycles[core]
            if stamp < c:
                # Stale entry (core was charged since being queued); requeue
                # at its true time to preserve min-clock order.
                if heap:
                    stamp, core = heappushpop(heap, (c, core))
                else:
                    stamp = c
                continue

            runner = runners[core]
            batches += 1
            while True:
                ops += 1
                tx = tx_active[core]
                if tx is not None and tx.aborted:
                    self._restart_tx(runner, tx)
                else:
                    value = runner.pending_value
                    runner.pending_value = None
                    try:
                        op = runner.send(value)
                    except StopIteration as stop:
                        self._finish_frame(runner, stop.value)
                        op = finished
                    if op is not finished:
                        try:
                            handler = handlers[op.__class__]
                        except KeyError:
                            handler = self._resolve_handler(op)
                        handler(runner, op)

                if runner.blocked or done[core]:
                    break
                c = cycles[core]
                if heap:
                    top = heap[0]
                    if c > top[0] or (c == top[0] and core > top[1]):
                        # Another core's turn (or a stale entry to clean
                        # up): hand off, taking the new minimum in the
                        # same heap transaction.
                        stamp, core = heappushpop(heap, (c, core))
                        break

            if runner.blocked or done[runner.core]:
                # The core we were stepping left the ready set (barrier or
                # finished) without handing off; pull the next one. (After
                # a hand-off, ``core`` is already the freshly popped entry
                # and the loop top vets it.)
                if not heap:
                    break
                stamp, core = heappop(heap)

        self.stats.host_runahead_batches += batches
        self.stats.host_runahead_ops += ops

    def _run_stepped(self) -> None:
        # Reference scheduler (REPRO_NO_RUNAHEAD=1): one CoreClocks
        # transaction — next_core() / step / reschedule() — per simulated
        # operation. The differential tests hold this loop and
        # _run_runahead to identical interleavings, cycle counts and stats.
        clocks = self.clocks
        runners = self.runners
        while True:
            core = clocks.next_core()
            if core is None:
                return
            runner = runners[core]
            self._step_core(runner)
            if not runner.blocked and not clocks.is_finished(core):
                clocks.reschedule(core)

    def _step_core(self, runner: ThreadRunner) -> None:
        """Advance one core by one simulated operation (or one abort
        restart). Shared by the stepped loop; the run-ahead loop inlines
        the same logic."""
        tx = self._tx_active[runner.core]
        if tx is not None and tx.aborted:
            self._restart_tx(runner, tx)
            return
        value = runner.pending_value
        runner.pending_value = None
        try:
            op = runner.send(value)
        except StopIteration as stop:
            self._finish_frame(runner, stop.value)
            return
        handler = self._handlers.get(op.__class__)
        if handler is None:
            handler = self._resolve_handler(op)
        handler(runner, op)

    # ------------------------------------------------------------------

    def _dispatch(self, runner: ThreadRunner, op) -> None:
        handler = self._handlers.get(op.__class__)
        if handler is None:
            handler = self._resolve_handler(op)
        handler(runner, op)

    def _resolve_handler(self, op):
        """Memoize a subclassed op (e.g. OrderedAtomic) into the table."""
        for base in type(op).__mro__:
            handler = self._handlers.get(base)
            if handler is not None:
                self._handlers[op.__class__] = handler
                return handler
        raise SimulationError(f"unknown operation {op!r}")

    # ------------------------------------------------------------------

    def _op_atomic(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        if self._tx_active[core] is None:
            tx = self.htm.begin(core, ts=op.ts)  # OrderedAtomic: order == priority
            if self._tracing:
                self._trace(self._cycles[core], core, EventKind.TX_BEGIN)
            if self._obs is not None:
                self._obs_tx_begin(core, self._cycles[core], tx)
            # Inline _charge: a freshly begun transaction cannot be aborted.
            cycles = self._tx_begin_cycles
            self._breakdown[core].tx_committed += cycles
            tx.cycles_this_attempt += cycles
            self._cycles[core] += cycles
            # Inline op.make_generator (hot: once per transaction).
            gen = op.fn(runner.ctx, *op.args)
            runner.frames.append(Frame(gen, op, True))
        else:
            # Closed nesting by subsumption.
            gen = op.fn(runner.ctx, *op.args)
            runner.frames.append(Frame(gen, op))
        runner.send = gen.send

    def _op_work(self, runner: ThreadRunner, op) -> None:
        cycles = op.cycles
        if cycles < 0:
            raise SimulationError(f"negative Work: {cycles}")
        # Inline _charge: Work is one of the hottest ops (every think step).
        stats = self.stats
        stats.instructions += cycles
        core = runner.core
        tx = self._tx_active[core]
        entry = self._breakdown[core]
        if tx is None:
            entry.non_tx += cycles
        elif tx.aborted:
            entry.tx_aborted += cycles
            stats.wasted_by_cause[tx.abort_cause] += cycles
        else:
            entry.tx_committed += cycles
            tx.cycles_this_attempt += cycles
        self._cycles[core] += cycles

    def _op_barrier(self, runner: ThreadRunner, op) -> None:
        self._barrier_arrive(runner)

    # ------------------------------------------------------------------

    def _barrier_arrive(self, runner: ThreadRunner) -> None:
        core = runner.core
        if self._tx_active[core] is not None:
            raise TransactionError(
                f"Barrier inside a transaction on core {core}"
            )
        runner.blocked = True
        self._trace(self._cycles[core], core, EventKind.BARRIER)
        self._barrier_waiting.append(core)
        self._maybe_release_barrier(skip_reschedule=core)

    def _maybe_release_barrier(self, skip_reschedule: Optional[int] = None) -> None:
        if not self._barrier_waiting:
            return
        if len(self._barrier_waiting) < self._live_threads:
            return
        release_at = max(self._cycles[c] for c in self._barrier_waiting)
        waiting, self._barrier_waiting = self._barrier_waiting, []
        for core in waiting:
            stall = release_at - self._cycles[core]
            if stall > 0:
                # Barrier wait is non-transactional stall time.
                self.stats.charge(core, stall, in_tx=False)
                self.clocks.advance(core, stall)
            self.runners[core].blocked = False
            self.runners[core].pending_value = None
            if core != skip_reschedule:
                self.clocks.reschedule(core)

    # ------------------------------------------------------------------
    # Memory operations. One handler per op type (type-keyed dispatch);
    # all share the _after_memory_op postlude. The baseline HTM
    # (commtm_enabled=False) and restarted transactions with labels
    # disabled execute labeled operations conventionally.
    #
    # The ``_op_*_fast`` variants try the coherence protocol's private-hit
    # fast path first (see MemorySystem.fast_load and friends): a stable
    # hit comes back as a bare (value, cycles) tuple — no Requester, no
    # AccessResult, no occupancy bookkeeping — and anything else falls
    # through to the full handler. A fast hit can still abort this core's
    # own transaction through the L1 spec-eviction hook inside the LRU
    # touch, so the postlude's aborted check is preserved inline.

    # The charge+deliver postlude is written out inline in each fast
    # handler (rather than shared through a helper): it is the equivalent
    # of :meth:`_charge` with the transaction already in hand, and the
    # handlers run once per memory operation. ``tx.aborted`` is re-read
    # after the hit because the LRU touch can self-abort; an aborted hit
    # never delivers a value (mirrors ``_after_memory_op``).

    def _op_load_fast(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        fast = self._fast_load(core, op.addr, tx is not None)
        if fast is None:
            self._op_load(runner, op)
            return
        cycles = fast[1]
        self.stats.instructions += 1
        if tx is None:
            self._breakdown[core].non_tx += cycles
            runner.pending_value = fast[0]
        elif tx.aborted:
            self._breakdown[core].tx_aborted += cycles
            self.stats.wasted_by_cause[tx.abort_cause] += cycles
        else:
            self._breakdown[core].tx_committed += cycles
            tx.cycles_this_attempt += cycles
            runner.pending_value = fast[0]
        self._cycles[core] += cycles

    def _op_store_fast(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        if tx is None:
            cycles = self._fast_store(core, op.addr, op.value, False)
            if cycles is not None:
                self.stats.instructions += 1
                self._breakdown[core].non_tx += cycles
                self._cycles[core] += cycles
                return
        elif self._eager:  # lazy tx stores buffer; full path
            cycles = self._fast_store(core, op.addr, op.value, True)
            if cycles is not None:
                self.stats.instructions += 1
                if tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    self.stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                self._cycles[core] += cycles
                return
        self._op_store(runner, op)

    def _op_labeled_load_fast(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        if self._commtm and not (tx is not None and tx.labels_disabled):
            fast = self._fast_labeled_load(core, op.addr, op.label,
                                           tx is not None)
            if fast is not None:
                cycles = fast[1]
                stats = self.stats
                stats.instructions += 1
                stats.labeled_instructions += 1
                stats.labeled_by_label[op.label.name] += 1
                if tx is None:
                    self._breakdown[core].non_tx += cycles
                    runner.pending_value = fast[0]
                elif tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                    runner.pending_value = fast[0]
                self._cycles[core] += cycles
                return
        else:  # conventional route (baseline HTM / disabled labels)
            fast = self._fast_load(core, op.addr, tx is not None)
            if fast is not None:
                cycles = fast[1]
                self.stats.instructions += 1
                if tx is None:
                    self._breakdown[core].non_tx += cycles
                    runner.pending_value = fast[0]
                elif tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    self.stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                    runner.pending_value = fast[0]
                self._cycles[core] += cycles
                return
        self._op_labeled_load(runner, op)

    def _op_labeled_store_fast(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        if self._commtm and not (tx is not None and tx.labels_disabled):
            cycles = self._fast_labeled_store(core, op.addr, op.label,
                                              op.value, tx is not None)
            if cycles is not None:
                stats = self.stats
                stats.instructions += 1
                stats.labeled_instructions += 1
                stats.labeled_by_label[op.label.name] += 1
                if tx is None:
                    self._breakdown[core].non_tx += cycles
                elif tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                self._cycles[core] += cycles
                return
        elif tx is None or self._eager:  # conventional eager store route
            cycles = self._fast_store(core, op.addr, op.value,
                                      tx is not None)
            if cycles is not None:
                self.stats.instructions += 1
                if tx is None:
                    self._breakdown[core].non_tx += cycles
                elif tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    self.stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                self._cycles[core] += cycles
                return
        self._op_labeled_store(runner, op)

    def _op_load_gather_fast(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        if not self._commtm or (tx is not None and tx.labels_disabled):
            fast = self._fast_load(core, op.addr, tx is not None)
            if fast is not None:
                cycles = fast[1]
                self.stats.instructions += 1
                if tx is None:
                    self._breakdown[core].non_tx += cycles
                    runner.pending_value = fast[0]
                elif tx.aborted:
                    self._breakdown[core].tx_aborted += cycles
                    self.stats.wasted_by_cause[tx.abort_cause] += cycles
                else:
                    self._breakdown[core].tx_committed += cycles
                    tx.cycles_this_attempt += cycles
                    runner.pending_value = fast[0]
                self._cycles[core] += cycles
                return
        self._op_load_gather(runner, op)

    def _op_load(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        self.stats.instructions += 1
        res = self.msys.load(
            core, op.addr,
            Requester(core, tx.ts if tx is not None else None,
                      now=self._cycles[core]))
        self._after_memory_op(runner, core, res)

    def _op_store(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        self.stats.instructions += 1
        requester = Requester(core, tx.ts if tx is not None else None,
                              now=self._cycles[core])
        res = self._conventional_store(core, op.addr, op.value, requester, tx)
        self._after_memory_op(runner, core, res)

    def _op_labeled_load(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        stats = self.stats
        stats.instructions += 1
        requester = Requester(core, tx.ts if tx is not None else None,
                              now=self._cycles[core])
        if not self._commtm or (tx is not None and tx.labels_disabled):
            res = self.msys.load(core, op.addr, requester)
        else:
            stats.labeled_instructions += 1
            stats.labeled_by_label[op.label.name] += 1
            res = self.msys.labeled_load(core, op.addr, op.label, requester)
        self._after_memory_op(runner, core, res)

    def _op_labeled_store(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        stats = self.stats
        stats.instructions += 1
        requester = Requester(core, tx.ts if tx is not None else None,
                              now=self._cycles[core])
        if not self._commtm or (tx is not None and tx.labels_disabled):
            res = self._conventional_store(core, op.addr, op.value,
                                           requester, tx)
        else:
            stats.labeled_instructions += 1
            stats.labeled_by_label[op.label.name] += 1
            res = self.msys.labeled_store(core, op.addr, op.label,
                                          op.value, requester)
        self._after_memory_op(runner, core, res)

    def _op_load_gather(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self._tx_active[core]
        stats = self.stats
        stats.instructions += 1
        requester = Requester(core, tx.ts if tx is not None else None,
                              now=self._cycles[core])
        if not self._commtm or (tx is not None and tx.labels_disabled):
            res = self.msys.load(core, op.addr, requester)
        else:
            stats.labeled_instructions += 1
            stats.labeled_by_label[op.label.name] += 1
            res = self.msys.load_gather(core, op.addr, op.label, requester)
        self._after_memory_op(runner, core, res)

    def _after_memory_op(self, runner: ThreadRunner, core: int, res) -> None:
        stats = self.stats
        if self._fastpath_attempting:
            # Only a genuine fast-path attempt counts as a miss; with the
            # fast path disabled or gated off there is no attempt, and
            # Stats.fastpath_hit_rate reports None instead of 0.0.
            stats.host_fastpath_misses += 1
            if self._gate_pending:
                attempts = stats.host_fastpath_hits + stats.host_fastpath_misses
                if attempts >= FASTPATH_GATE_WARMUP:
                    self._gate_pending = False
                    if (stats.host_fastpath_hits
                            < attempts * FASTPATH_GATE_MIN_HIT_RATE):
                        self._disable_fastpath()
        self._charge(core, res.cycles)

        tx = self._tx_active[core]
        if res.abort_requester:
            if tx is None:
                raise SimulationError(
                    "non-transactional request was asked to abort"
                )
            if not tx.aborted:
                self.htm.conflicts.abort(core, res.abort_cause)
            return  # restart handled on the next step
        if tx is not None and tx.aborted:
            return  # aborted as a victim mid-operation (self-abort path)
        runner.pending_value = res.value

    def _disable_fastpath(self) -> None:
        """Adaptive gate: rebind the memory-op handlers to the full protocol
        path for the rest of this run (the hit rate stayed below threshold
        through the warmup window, so the failed fast-path probe is a net
        host-side cost per op). The table is mutated in place — the run
        loops hold a local alias — and memoized subclass entries are
        dropped so they re-resolve through the MRO. Sanitized runs lose the
        engine-level checkpoint wrappers here, but the full handlers go
        through MemorySystem's public ops, which checkpoint on their own.
        Host-only: simulated results are bit-identical either way."""
        self._fastpath_attempting = False
        self.stats.host_fastpath_gated = True
        handlers = self._handlers
        full = {
            Load: self._op_load,
            Store: self._op_store,
            LabeledLoad: self._op_labeled_load,
            LabeledStore: self._op_labeled_store,
            LoadGather: self._op_load_gather,
        }
        for cls in [c for c in handlers
                    if c not in full and issubclass(c, MEMORY_OPS)]:
            del handlers[cls]
        handlers.update(full)

    def _conventional_store(self, core: int, addr: int, value, requester,
                            tx):
        """Route a conventional store per the conflict-detection scheme:
        eager acquires ownership immediately; lazy buffers and records the
        line for commit-time publication."""
        if tx is not None and self.config.conflict_detection == "lazy":
            res = self.msys.lazy_store(core, addr, value, requester)
            if not res.abort_requester:
                if tx.lazy_written is None:
                    tx.lazy_written = set()
                tx.lazy_written.add(line_of(addr))
            return res
        return self.msys.store(core, addr, value, requester)

    # ------------------------------------------------------------------

    def _finish_frame(self, runner: ThreadRunner, value) -> None:
        core = runner.core
        frames = runner.frames
        frame = frames.pop()
        runner.send = frames[-1].gen.send if frames else None
        if frame.is_tx_root:
            tx = self._tx_active[core]
            if tx is None:
                raise TransactionError(
                    f"transaction frame on core {core} without a tx"
                )
            if tx.aborted:
                # Aborted between its last operation and commit.
                frames.append(frame)
                self._restart_tx(runner, tx)
                return
            if tx.lazy_written:
                # Lazy conflict detection: publish the write set, aborting
                # conflicting transactions (commits always win).
                requester = Requester(core, tx.ts, now=self._cycles[core])
                for line_no in sorted(tx.lazy_written):
                    pres = self.msys.publish_line(core, line_no, requester)
                    self._charge(core, pres.cycles)
                if tx.aborted:
                    # A publication cannot abort the committer; guard.
                    raise TransactionError("committer aborted mid-publish")
            # Commit clears the speculative sets instantly at the protocol
            # level; the commit latency is charged afterwards so it does not
            # extend the conflict window (mirrors hardware, where the
            # post-commit pipeline drain is not speculative).
            # The obs hook must precede commit: it reads the speculative
            # set sizes that commit_all() is about to clear.
            if self._obs is not None:
                self._obs_tx_commit(core, self._cycles[core], tx)
            self.htm.commit(core)
            if self._tracing:
                self._trace(self._cycles[core], core, EventKind.TX_COMMIT)
            # Inline stats.charge(in_tx=True) + clocks.advance: the commit
            # latency lands in the committed bucket after the tx detaches.
            cycles = self._tx_commit_cycles
            self._breakdown[core].tx_committed += cycles
            self._cycles[core] += cycles
        if not runner.frames:
            self.clocks.finish(core)
            self._live_threads -= 1
            # A finished thread no longer participates in barriers.
            self._maybe_release_barrier()
            return
        runner.pending_value = value

    def _restart_tx(self, runner: ThreadRunner, tx) -> None:
        core = runner.core
        self.htm.finish_abort(core)
        while runner.frames and not runner.frames[-1].is_tx_root:
            runner.frames.pop()
        if not runner.frames:
            raise TransactionError(
                f"aborted tx on core {core} has no transaction frame"
            )
        tx_frame = runner.frames.pop()
        atomic = tx_frame.atomic
        self._trace(self._cycles[core], core, EventKind.TX_ABORT,
                    detail=str(tx.abort_cause))

        if tx.attempts >= self.config.max_restarts:
            raise SimulationError(
                f"transaction on core {core} aborted {tx.attempts} times; "
                f"livelock guard tripped"
            )

        stall = backoff_cycles(self.machine.rng.backoff(), tx.attempts,
                               self.config.backoff_base,
                               self.config.backoff_max)
        self._obs_tx_abort(core, self._cycles[core], tx, stall)
        # Backoff stall is abort-induced: account it as wasted.
        self._breakdown[core].tx_aborted += stall
        self.stats.wasted_by_cause[tx.abort_cause] += stall
        self.clocks.advance(core, stall)

        self.htm.begin_retry(core, tx)
        self._obs_tx_retry(core, self._cycles[core], tx)
        self._charge(core, self.config.tx_begin_cycles)
        gen = atomic.make_generator(runner.ctx)
        runner.frames.append(Frame(gen=gen, atomic=atomic, is_tx_root=True))
        runner.send = gen.send
        runner.pending_value = None

    # ------------------------------------------------------------------

    def _charge(self, core: int, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError(f"negative cycle charge: {cycles}")
        tx = self._tx_active[core]
        entry = self._breakdown[core]
        if tx is None:
            entry.non_tx += cycles
        elif tx.aborted:
            # The op that doomed the tx: its cycles are wasted directly.
            entry.tx_aborted += cycles
            self.stats.wasted_by_cause[tx.abort_cause] += cycles
        else:
            entry.tx_committed += cycles
            tx.cycles_this_attempt += cycles
        self._cycles[core] += cycles
