"""Execution-driven engine.

Drives one workload coroutine per core at memory-operation granularity.
The scheduler always advances the core with the smallest local clock, which
approximates cycle-level interleaving; every operation charges Table I
latencies computed by the memory system.

Transactions (``Atomic`` ops) are replayed on abort: the transaction's
generator is discarded, the core stalls for randomized backoff, and a fresh
generator is created — mirroring hardware restart exactly, because all
shared-state effects go through speculative stores that rollback undoes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..coherence.messages import Requester
from ..errors import SimulationError, TransactionError
from ..mem.address import line_of
from ..htm.backoff import backoff_cycles
from ..runtime.ops import (
    Atomic,
    Barrier,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Store,
    Work,
)
from ..runtime.thread_api import ThreadCtx
from .clock import CoreClocks
from .trace import EventKind


@dataclass
class Frame:
    """One level of a thread's generator stack."""

    gen: object
    atomic: Optional[Atomic] = None
    is_tx_root: bool = False


@dataclass
class ThreadRunner:
    core: int
    ctx: ThreadCtx
    frames: List[Frame] = field(default_factory=list)
    pending_value: object = None
    blocked: bool = False  # waiting at a barrier


class Engine:
    """Runs a set of thread bodies to completion on a machine."""

    def __init__(self, machine, bodies: List[Callable]):
        self.machine = machine
        self.config = machine.config
        self.stats = machine.stats
        self.htm = machine.htm
        self.msys = machine.msys
        if len(bodies) > self.config.num_cores:
            raise SimulationError(
                f"{len(bodies)} threads exceed {self.config.num_cores} cores"
            )
        self.clocks = CoreClocks(self.config.num_cores,
                                 jitter=machine.rng.jitter())
        self.runners: List[Optional[ThreadRunner]] = []
        for core in range(self.config.num_cores):
            if core < len(bodies):
                ctx = ThreadCtx(core, machine)
                runner = ThreadRunner(core=core, ctx=ctx)
                runner.frames.append(Frame(gen=bodies[core](ctx)))
                self.runners.append(runner)
            else:
                self.runners.append(None)
                self.clocks.finish(core)
        self._live_threads = len(bodies)
        self._barrier_waiting: List[int] = []

    # ------------------------------------------------------------------

    def run(self) -> None:
        while True:
            core = self.clocks.next_core()
            if core is None:
                break
            self._step(core)
            if not self.runners[core].blocked:
                self.clocks.reschedule(core)
        self.stats.parallel_cycles = self.clocks.max_cycle

    # ------------------------------------------------------------------

    def _step(self, core: int) -> None:
        runner = self.runners[core]
        tx = self.htm.active(core)
        if tx is not None and tx.aborted:
            self._restart_tx(runner, tx)
            return

        frame = runner.frames[-1]
        value = runner.pending_value
        runner.pending_value = None
        try:
            op = frame.gen.send(value)
        except StopIteration as stop:
            self._finish_frame(runner, stop.value)
            return
        self._dispatch(runner, op)

    # ------------------------------------------------------------------

    def _dispatch(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        if isinstance(op, Atomic):
            if self.htm.active(core) is None:
                ts = getattr(op, "ts", None)  # OrderedAtomic: order == priority
                tx = self.htm.begin(core, ts=ts)
                self.machine.tracer.record(self.clocks.now(core), core,
                                           EventKind.TX_BEGIN)
                self._charge(core, self.config.tx_begin_cycles)
                runner.frames.append(
                    Frame(gen=op.make_generator(runner.ctx), atomic=op,
                          is_tx_root=True)
                )
            else:
                # Closed nesting by subsumption.
                runner.frames.append(
                    Frame(gen=op.make_generator(runner.ctx), atomic=op)
                )
            return

        if isinstance(op, Work):
            if op.cycles < 0:
                raise SimulationError(f"negative Work: {op.cycles}")
            self.stats.instructions += op.cycles
            self._charge(core, op.cycles)
            return

        if isinstance(op, Barrier):
            self._barrier_arrive(runner)
            return

        self._memory_op(runner, op)

    # ------------------------------------------------------------------

    def _barrier_arrive(self, runner: ThreadRunner) -> None:
        core = runner.core
        if self.htm.active(core) is not None:
            raise TransactionError(
                f"Barrier inside a transaction on core {core}"
            )
        runner.blocked = True
        self.machine.tracer.record(self.clocks.now(core), core,
                                   EventKind.BARRIER)
        self._barrier_waiting.append(core)
        self._maybe_release_barrier(skip_reschedule=core)

    def _maybe_release_barrier(self, skip_reschedule: Optional[int] = None) -> None:
        if not self._barrier_waiting:
            return
        if len(self._barrier_waiting) < self._live_threads:
            return
        release_at = max(self.clocks.now(c) for c in self._barrier_waiting)
        waiting, self._barrier_waiting = self._barrier_waiting, []
        for core in waiting:
            stall = release_at - self.clocks.now(core)
            if stall > 0:
                # Barrier wait is non-transactional stall time.
                self.stats.charge(core, stall, in_tx=False)
                self.clocks.advance(core, stall)
            self.runners[core].blocked = False
            self.runners[core].pending_value = None
            if core != skip_reschedule:
                self.clocks.reschedule(core)

    def _memory_op(self, runner: ThreadRunner, op) -> None:
        core = runner.core
        tx = self.htm.active(core)
        requester = Requester(core, tx.ts if tx is not None else None,
                              now=self.clocks.now(core))

        # The baseline HTM (commtm_enabled=False) and restarted transactions
        # with labels disabled execute labeled operations conventionally.
        plain = (not self.config.commtm_enabled
                 or (tx is not None and tx.labels_disabled))
        self.stats.instructions += 1

        if isinstance(op, Load):
            res = self.msys.load(core, op.addr, requester)
        elif isinstance(op, Store):
            res = self._conventional_store(core, op.addr, op.value,
                                           requester, tx)
        elif isinstance(op, LabeledLoad):
            if plain:
                res = self.msys.load(core, op.addr, requester)
            else:
                self.stats.labeled_instructions += 1
                self.stats.labeled_by_label[op.label.name] += 1
                res = self.msys.labeled_load(core, op.addr, op.label,
                                             requester)
        elif isinstance(op, LabeledStore):
            if plain:
                res = self._conventional_store(core, op.addr, op.value,
                                               requester, tx)
            else:
                self.stats.labeled_instructions += 1
                self.stats.labeled_by_label[op.label.name] += 1
                res = self.msys.labeled_store(core, op.addr, op.label,
                                              op.value, requester)
        elif isinstance(op, LoadGather):
            if plain:
                res = self.msys.load(core, op.addr, requester)
            else:
                self.stats.labeled_instructions += 1
                self.stats.labeled_by_label[op.label.name] += 1
                res = self.msys.load_gather(core, op.addr, op.label,
                                            requester)
        else:
            raise SimulationError(f"unknown operation {op!r}")

        self._charge(core, res.cycles)

        tx = self.htm.active(core)
        if res.abort_requester:
            if tx is None:
                raise SimulationError(
                    "non-transactional request was asked to abort"
                )
            if not tx.aborted:
                self.htm.conflicts.abort(core, res.abort_cause)
            return  # restart handled on the next step
        if tx is not None and tx.aborted:
            return  # aborted as a victim mid-operation (self-abort path)
        runner.pending_value = res.value

    def _conventional_store(self, core: int, addr: int, value, requester,
                            tx):
        """Route a conventional store per the conflict-detection scheme:
        eager acquires ownership immediately; lazy buffers and records the
        line for commit-time publication."""
        if tx is not None and self.config.conflict_detection == "lazy":
            res = self.msys.lazy_store(core, addr, value, requester)
            if not res.abort_requester:
                tx.lazy_written.add(line_of(addr))
            return res
        return self.msys.store(core, addr, value, requester)

    # ------------------------------------------------------------------

    def _finish_frame(self, runner: ThreadRunner, value) -> None:
        core = runner.core
        frame = runner.frames.pop()
        if frame.is_tx_root:
            tx = self.htm.active(core)
            if tx is None:
                raise TransactionError(
                    f"transaction frame on core {core} without a tx"
                )
            if tx.aborted:
                # Aborted between its last operation and commit.
                runner.frames.append(frame)
                self._restart_tx(runner, tx)
                return
            if tx.lazy_written:
                # Lazy conflict detection: publish the write set, aborting
                # conflicting transactions (commits always win).
                requester = Requester(core, tx.ts, now=self.clocks.now(core))
                for line_no in sorted(tx.lazy_written):
                    pres = self.msys.publish_line(core, line_no, requester)
                    self._charge(core, pres.cycles)
                if tx.aborted:
                    # A publication cannot abort the committer; guard.
                    raise TransactionError("committer aborted mid-publish")
            # Commit clears the speculative sets instantly at the protocol
            # level; the commit latency is charged afterwards so it does not
            # extend the conflict window (mirrors hardware, where the
            # post-commit pipeline drain is not speculative).
            self.htm.commit(core)
            self.machine.tracer.record(self.clocks.now(core), core,
                                       EventKind.TX_COMMIT)
            self.stats.charge(core, self.config.tx_commit_cycles,
                              in_tx=True)
            self.clocks.advance(core, self.config.tx_commit_cycles)
        if not runner.frames:
            self.clocks.finish(core)
            self._live_threads -= 1
            # A finished thread no longer participates in barriers.
            self._maybe_release_barrier()
            return
        runner.pending_value = value

    def _restart_tx(self, runner: ThreadRunner, tx) -> None:
        core = runner.core
        self.htm.finish_abort(core)
        while runner.frames and not runner.frames[-1].is_tx_root:
            runner.frames.pop()
        if not runner.frames:
            raise TransactionError(
                f"aborted tx on core {core} has no transaction frame"
            )
        tx_frame = runner.frames.pop()
        atomic = tx_frame.atomic
        self.machine.tracer.record(self.clocks.now(core), core,
                                   EventKind.TX_ABORT,
                                   detail=str(tx.abort_cause))

        if tx.attempts >= self.config.max_restarts:
            raise SimulationError(
                f"transaction on core {core} aborted {tx.attempts} times; "
                f"livelock guard tripped"
            )

        stall = backoff_cycles(self.machine.rng.backoff(), tx.attempts,
                               self.config.backoff_base,
                               self.config.backoff_max)
        # Backoff stall is abort-induced: account it as wasted.
        self.stats.breakdown[core].tx_aborted += stall
        self.stats.wasted_by_cause[tx.abort_cause] += stall
        self.clocks.advance(core, stall)

        new_tx = self.htm.begin_retry(core, tx)
        self._charge(core, self.config.tx_begin_cycles)
        runner.frames.append(
            Frame(gen=atomic.make_generator(runner.ctx), atomic=atomic,
                  is_tx_root=True)
        )
        runner.pending_value = None

    # ------------------------------------------------------------------

    def _charge(self, core: int, cycles: int) -> None:
        tx = self.htm.active(core)
        if tx is None:
            self.stats.charge(core, cycles, in_tx=False)
        elif tx.aborted:
            # The op that doomed the tx: its cycles are wasted directly.
            self.stats.breakdown[core].tx_aborted += cycles
            self.stats.wasted_by_cause[tx.abort_cause] += cycles
        else:
            self.stats.charge(core, cycles, in_tx=True)
            tx.cycles_this_attempt += cycles
        self.clocks.advance(core, cycles)
