"""CommTM reproduction: commutativity-aware hardware transactional memory.

Reproduces Zhang, Chiu, Sanchez, "Exploiting Semantic Commutativity in
Hardware Speculation", MICRO 2016, as an execution-driven multicore
simulator with an eager-lazy HTM baseline and the CommTM coherence
extensions (reducible U state, labeled memory operations, user-defined
reductions, gather requests).

Public API highlights:

* :class:`~repro.params.SystemConfig` — the simulated system (Table I).
* :class:`~repro.core.machine.Machine` — one simulated chip; run workloads.
* :mod:`repro.runtime` — the operations workload coroutines yield.
* :mod:`repro.core.labels` — user-defined labels, reductions, splitters.
* :mod:`repro.datatypes` — commutative data types built on the API.
* :mod:`repro.workloads` — the paper's microbenchmarks and applications.
* :mod:`repro.harness` — experiment runner reproducing every figure/table.
"""

from .params import SystemConfig, CacheGeometry, NocConfig, small_config
from .core.machine import Machine, MachineResult
from .core.labels import Label, LabelRegistry, wordwise_label
from .runtime.ops import (
    Atomic,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Store,
    Work,
)

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "CacheGeometry",
    "NocConfig",
    "small_config",
    "Machine",
    "MachineResult",
    "Label",
    "LabelRegistry",
    "wordwise_label",
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "LoadGather",
    "Work",
    "Atomic",
    "__version__",
]
