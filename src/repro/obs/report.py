"""Machine-readable run reports.

``python -m repro.harness <exp> --report-json out.json`` writes one
versioned JSON document per run: experiment identity, then one entry per
simulated sweep point (:func:`point_report`) carrying the headline stats,
the per-label table (labeled instructions, reductions, gathers — the
sweep-output form of ``tests/test_per_label_stats.py``'s in-process
counters), and — when the point ran with observability — the transaction
lifecycle summary, the address/label-level abort-attribution table, and
the top-K hottest lines. CI uploads these as artifacts; any consumer can
dispatch on the ``schema`` field.
"""

from __future__ import annotations

from typing import Dict, List

#: Version tags for the run report and the standalone metrics document.
REPORT_SCHEMA = "repro-obs-report/1"
METRICS_SCHEMA = "repro-obs-metrics/1"


def per_label_table(stats) -> Dict[str, dict]:
    """Label-level activity from :class:`~repro.sim.stats.Stats` Counters.

    Works on any run (the Counters are simulated statistics, present with
    or without the obs layer installed)."""
    names = (set(stats.labeled_by_label) | set(stats.reductions_by_label)
             | set(stats.gathers_by_label))
    return {
        name: {
            "labeled_instructions": int(stats.labeled_by_label.get(name, 0)),
            "reductions": int(stats.reductions_by_label.get(name, 0)),
            "gathers": int(stats.gathers_by_label.get(name, 0)),
        }
        for name in sorted(names)
    }


def vector_engagement(stats) -> dict:
    """How much of a run the vector backend's epochs actually covered —
    ``None``-safe only in the sense that callers should gate on
    ``stats.host_backend == "vector"`` first. The same block the
    throughput benchmark records, so one artifact carries both the
    simulated telemetry and the host-side engagement picture."""
    return {
        "epochs": stats.host_vector_epochs,
        "epoch_ops": stats.host_vector_epoch_ops,
        "fused_txs": stats.host_vector_fused_txs,
        "kernel_reductions": stats.host_vector_kernel_reductions,
        "gated": bool(stats.host_vector_gated),
        "fence_causes": {k: int(v) for k, v in
                         sorted(stats.host_vector_fence_causes.items())},
    }


def _rate(value, digits: int, none=None):
    """Round a host rate for the report, passing through the non-numeric
    forms (``None`` -> ``none``, "n/a (vector)" unchanged)."""
    if value is None:
        return none
    if isinstance(value, str):
        return value
    return round(value, digits)


def point_report(result) -> dict:
    """One sweep point (an ``ExperimentResult``) as a plain JSON dict."""
    stats = result.stats
    out = {
        "name": result.name,
        "num_threads": result.num_threads,
        "commtm": bool(result.commtm),
        "cycles": result.cycles,
        "stats": {k: v for k, v in stats.summary().items()},
        "cycle_breakdown": stats.cycle_breakdown_totals(),
        "wasted_by_cause": stats.wasted_breakdown(),
        "get_breakdown": stats.get_breakdown(),
        "per_label": per_label_table(stats),
        # Host-simulator internals (excluded from Stats.comparable()):
        # fastpath_hit_rate is None when no fast path was attempted, which
        # the report spells "disabled" to keep the JSON self-describing.
        # Under the vector backend both rate properties return the string
        # "n/a (vector)", which passes through unrounded.
        "host": {
            "backend": stats.host_backend,
            "fastpath_hit_rate": _rate(stats.fastpath_hit_rate, 4,
                                       none="disabled"),
            "fastpath_gated": stats.host_fastpath_gated,
            "runahead_batches": stats.host_runahead_batches,
            "runahead_ops_per_batch": _rate(stats.runahead_ops_per_batch, 3),
        },
    }
    if stats.host_backend == "vector":
        out["host"]["vector_engagement"] = vector_engagement(stats)
    obs = result.info.get("obs") if isinstance(result.info, dict) else None
    if obs is not None:
        out["lifecycle"] = obs["lifecycle"]["summary"]
        out["abort_attribution"] = obs["lifecycle"]["abort_attribution"]
        out["hot_lines"] = obs["metrics"]["hot_lines"]
        out["obs_per_label_touches"] = obs["metrics"]["per_label"]
        # Host-side self-profile (repro-obs-hostprof/1): absent on
        # payloads written before the hostprof section existed.
        if "hostprof" in obs:
            out["hostprof"] = obs["hostprof"]
    return out


def run_report(experiment: str, results: List, *, threads=None,
               scale=None) -> dict:
    """The full ``--report-json`` document for one harness invocation."""
    return {
        "schema": REPORT_SCHEMA,
        "experiment": experiment,
        "threads": list(threads) if threads is not None else None,
        "scale": scale,
        "points": [point_report(r) for r in results],
    }


def metrics_report(experiment: str, results: List) -> dict:
    """The ``--metrics-out`` document: hot-line metrics per sweep point."""
    points = []
    for result in results:
        obs = (result.info.get("obs")
               if isinstance(result.info, dict) else None)
        points.append({
            "name": result.name,
            "num_threads": result.num_threads,
            "commtm": bool(result.commtm),
            "hot_lines": obs["metrics"]["hot_lines"] if obs else [],
            "per_label": obs["metrics"]["per_label"] if obs else {},
            "trace_event_counts": (obs["trace"]["counts"] if obs else {}),
        })
    return {
        "schema": METRICS_SCHEMA,
        "experiment": experiment,
        "points": points,
    }


__all__ = ["METRICS_SCHEMA", "REPORT_SCHEMA", "metrics_report",
           "per_label_table", "point_report", "run_report",
           "vector_engagement"]
