"""Structured trace recorder: typed span, instant, and counter events.

Events are stored directly in Chrome trace-event form (``ph`` B/E/X/i/C
dicts without a ``pid``; the exporter injects lane identity), appended in
the order the simulation produces them — per core that order is
chronological, which is what lets the exporter's stable sort keep B/E
pairs matched.

The recorder is bounded: past ``limit`` events new ones are *counted* as
dropped, never silently lost (the failure mode the flat ``Tracer`` had
before it grew a ``dropped`` counter). Span *ends* bypass the limit while
a span is open on that core — at most one per core — so truncated traces
still parse as well-formed B/E trees in Perfetto.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Default event-list bound. Generous for micro/app runs at harness scale;
#: the exporter records the dropped count so truncation is always visible.
DEFAULT_LIMIT = 250_000


class TraceRecorder:
    """Collects trace events for one simulated machine."""

    def __init__(self, limit: int = DEFAULT_LIMIT):
        self.limit = limit
        self.events: List[dict] = []
        self.dropped = 0
        self.max_ts = 0
        self._open: Dict[int, int] = {}  # core -> open span depth

    # --- emission -----------------------------------------------------------

    def _emit(self, event: dict, force: bool = False) -> bool:
        ts = event.get("ts")
        if ts is not None and ts > self.max_ts:
            self.max_ts = ts
        if not force and len(self.events) >= self.limit:
            self.dropped += 1
            return False
        self.events.append(event)
        return True

    def begin_span(self, core: int, ts: int, name: str,
                   args: Optional[dict] = None) -> None:
        ok = self._emit({"ph": "B", "name": name, "cat": "tx",
                         "tid": core, "ts": ts, "args": args or {}})
        if ok:
            self._open[core] = self._open.get(core, 0) + 1

    def end_span(self, core: int, ts: int,
                 args: Optional[dict] = None) -> None:
        if self._open.get(core, 0) <= 0:
            return  # matching B was dropped (or never emitted): stay matched
        self._open[core] -= 1
        # Forced: an unmatched B would corrupt the whole lane's span tree.
        self._emit({"ph": "E", "tid": core, "ts": ts, "args": args or {}},
                   force=True)

    def complete(self, core: int, ts: int, dur: int, name: str,
                 args: Optional[dict] = None) -> None:
        self._emit({"ph": "X", "name": name, "cat": "interval", "tid": core,
                    "ts": ts, "dur": dur, "args": args or {}})

    def instant(self, core: int, ts: int, name: str,
                args: Optional[dict] = None) -> None:
        self._emit({"ph": "i", "s": "t", "name": name, "cat": "event",
                    "tid": core, "ts": ts, "args": args or {}})

    def counter(self, ts: int, name: str, value) -> None:
        self._emit({"ph": "C", "name": name, "tid": 0, "ts": ts,
                    "args": {name: value}})

    # --- finalization --------------------------------------------------------

    def close_open_spans(self, ts: Optional[int] = None) -> int:
        """Close every still-open span (e.g. a transaction in flight when
        the run ended) at ``ts`` so exports always pair B with E. Returns
        the number of spans closed."""
        if ts is None:
            ts = self.max_ts
        closed = 0
        for core, depth in sorted(self._open.items()):
            for _ in range(depth):
                self._emit({"ph": "E", "tid": core, "ts": ts,
                            "args": {"outcome": "unfinished"}}, force=True)
                closed += 1
            self._open[core] = 0
        return closed

    def cores(self) -> List[int]:
        """Every core that produced at least one event."""
        return sorted({e["tid"] for e in self.events if "tid" in e})

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            key = e.get("name", e["ph"])
            out[key] = out.get(key, 0) + 1
        if self.dropped:
            out["dropped"] = self.dropped
        return out


__all__ = ["DEFAULT_LIMIT", "TraceRecorder"]
