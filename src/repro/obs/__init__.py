"""Structured observability: traces, lifecycles, metrics, reports.

The paper's evaluation is built from cross-cutting telemetry — cycle
breakdowns (Fig. 17), wasted-work attribution (Fig. 18), traffic splits
(Fig. 19), reduction/gather frequencies — and this package makes all of it
*queryable* instead of aggregate-only:

* :class:`~repro.obs.recorder.TraceRecorder` — typed span/instant/counter
  events (transaction attempts with abort cause, attacker core, line and
  label; reductions and gathers with line counts and latency; NACKs and
  backoff intervals), exported as Chrome/Perfetto trace-event JSON by
  :func:`~repro.obs.perfetto.chrome_trace` — open any run in
  ``ui.perfetto.dev``, one lane per core plus counter tracks.
* :class:`~repro.obs.lifecycle.LifecycleTracker` — one record per
  transaction (read/write/labeled-set sizes, cycles, retries, outcome),
  summarized into an address/label-level abort-attribution table that
  extends Fig. 18 from cause granularity to line granularity.
* :class:`~repro.obs.metrics.MetricsRegistry` — per-line / per-label
  hot-line counters in the protocol (touches, reductions triggered,
  invalidations caused), surfaced via ``Stats.host_hot_lines``.
* :mod:`~repro.obs.report` — versioned machine-readable run reports
  consumed by ``python -m repro.harness --report-json`` and CI artifacts.
* :class:`~repro.obs.hostprof.HostProfiler` — a zero-dependency *host*
  wall-clock phase accountant (epoch classify, kernel exec, strict
  stepper, fenced replay, stats reduce; harness build/dispatch/cache
  phases), emitted as a versioned ``repro-obs-hostprof/1`` report
  section and an optional Perfetto host-time lane.

Enablement follows the sanitizer's discipline exactly: ``observe=True`` on
:class:`~repro.core.machine.Machine` or ``REPRO_OBS=1`` in the environment
(the harness flags ``--trace-out``/``--report-json``/``--metrics-out`` set
it for you). The flag is deliberately *not* a ``SystemConfig`` field — it
cannot change simulated results, so it must not perturb the result cache's
config fingerprints. When off, nothing is installed: the engine's handler
table, the protocol's hook slots and every hot path are byte-for-byte the
code that runs without this package, so disabled-mode cycles and
``Stats.comparable()`` are bit-identical and throughput is unchanged.
When on, the *interpreted* engine routes memory operations through the
full protocol path (the same switch ``REPRO_NO_FASTPATH=1`` flips, proven
bit-identical by ``tests/test_fastpath_equivalence.py``) so every event is
seen at a single choke point. The *vector* backend keeps its epochs and
synthesizes the same emissions at their exact strict positions (deferring
the order-sensitive ones; see ``repro.sim.vector.engine``), proven
payload-identical by ``tests/test_vector_obs_parity.py`` — simulated
results are bit-identical either way; only host-side wall-clock pays.
"""

from .hostprof import HARNESS_PROF, HOSTPROF_SCHEMA, HostProfiler
from .lifecycle import AbortRecord, LifecycleTracker, TxRecord
from .metrics import LineMetrics, MetricsRegistry
from .observer import OBS_ENV, Observer, obs_enabled
from .perfetto import TRACE_SCHEMA, chrome_trace, merge_traces
from .recorder import TraceRecorder
from .report import (METRICS_SCHEMA, REPORT_SCHEMA, per_label_table,
                     point_report, vector_engagement)

__all__ = [
    "OBS_ENV",
    "Observer",
    "obs_enabled",
    "TraceRecorder",
    "TxRecord",
    "AbortRecord",
    "LifecycleTracker",
    "LineMetrics",
    "MetricsRegistry",
    "TRACE_SCHEMA",
    "REPORT_SCHEMA",
    "METRICS_SCHEMA",
    "HOSTPROF_SCHEMA",
    "HARNESS_PROF",
    "HostProfiler",
    "chrome_trace",
    "merge_traces",
    "per_label_table",
    "point_report",
    "vector_engagement",
]
