"""Per-transaction lifecycle records and abort attribution.

One :class:`TxRecord` per transaction (not per attempt): retries accumulate
:class:`AbortRecord` entries carrying the Fig. 18 cause *plus* what the
aggregate stats cannot answer — which core's request killed the attempt, on
which line, under which label, and how big the victim's read/write/labeled
sets were at that moment. :meth:`LifecycleTracker.attribution` folds the
abort events into an address/label-level table, extending the paper's
cause-level wasted-work breakdown to line granularity.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(slots=True)
class AbortRecord:
    """One aborted attempt of a transaction."""

    cycle: int                      # victim-local cycle of the restart
    attempt: int                    # which attempt died (1-based)
    cause: str                      # WastedCause.value
    attacker: Optional[int] = None  # core whose request aborted us
    line: Optional[int] = None      # conflicting line number
    label: Optional[str] = None     # label of the conflicting line
    wasted_cycles: int = 0          # cycles charged to the dead attempt
    backoff_cycles: int = 0         # randomized stall before the retry
    read_set: int = 0               # speculative set sizes at abort (lines)
    write_set: int = 0
    labeled_set: int = 0

    def as_dict(self) -> dict:
        return {
            "cycle": self.cycle, "attempt": self.attempt,
            "cause": self.cause, "attacker": self.attacker,
            "line": self.line, "label": self.label,
            "wasted_cycles": self.wasted_cycles,
            "backoff_cycles": self.backoff_cycles,
            "read_set": self.read_set, "write_set": self.write_set,
            "labeled_set": self.labeled_set,
        }


@dataclass(slots=True)
class TxRecord:
    """Lifecycle of one transaction, across all its attempts."""

    core: int
    ts: int                          # conflict-resolution timestamp
    begin_cycle: int
    outcome: str = "running"         # "committed" | "running"
    end_cycle: Optional[int] = None
    attempts: int = 1
    committed_cycles: int = 0        # cycles of the successful attempt
    wasted_cycles: int = 0           # cycles across all dead attempts
    backoff_cycles: int = 0
    read_set: int = 0                # speculative set sizes at commit (lines)
    write_set: int = 0
    labeled_set: int = 0
    aborts: List[AbortRecord] = field(default_factory=list)

    @property
    def retries(self) -> int:
        return self.attempts - 1

    def as_dict(self) -> dict:
        return {
            "core": self.core, "ts": self.ts,
            "begin_cycle": self.begin_cycle, "end_cycle": self.end_cycle,
            "outcome": self.outcome, "attempts": self.attempts,
            "committed_cycles": self.committed_cycles,
            "wasted_cycles": self.wasted_cycles,
            "backoff_cycles": self.backoff_cycles,
            "read_set": self.read_set, "write_set": self.write_set,
            "labeled_set": self.labeled_set,
            "aborts": [a.as_dict() for a in self.aborts],
        }


class LifecycleTracker:
    """Maintains open records per core; finished ones stay queryable."""

    def __init__(self):
        self.records: List[TxRecord] = []
        self._open: Dict[int, TxRecord] = {}

    # --- recording (driven by the Observer) ----------------------------------

    def begin(self, core: int, cycle: int, ts: int) -> TxRecord:
        rec = TxRecord(core=core, ts=ts, begin_cycle=cycle)
        self.records.append(rec)
        self._open[core] = rec
        return rec

    def retry(self, core: int, attempt: int) -> None:
        rec = self._open.get(core)
        if rec is not None:
            rec.attempts = attempt

    def abort(self, core: int, abort: AbortRecord) -> None:
        rec = self._open.get(core)
        if rec is None:
            return
        rec.aborts.append(abort)
        rec.wasted_cycles += abort.wasted_cycles
        rec.backoff_cycles += abort.backoff_cycles

    def commit(self, core: int, cycle: int, committed_cycles: int,
               read_set: int, write_set: int, labeled_set: int) -> None:
        rec = self._open.pop(core, None)
        if rec is None:
            return
        rec.outcome = "committed"
        rec.end_cycle = cycle
        rec.committed_cycles = committed_cycles
        rec.read_set = read_set
        rec.write_set = write_set
        rec.labeled_set = labeled_set

    # --- queries --------------------------------------------------------------

    def attribution(self) -> List[dict]:
        """Address/label-level abort attribution, most-aborting lines first.

        Rows aggregate abort events by (line, label, cause); ``attackers``
        maps attacking core -> abort count. ``line`` is None when the abort
        had no single conflicting line (e.g. a capacity eviction)."""
        rows: Dict[Tuple, dict] = {}
        for rec in self.records:
            for ab in rec.aborts:
                key = (ab.line, ab.label, ab.cause)
                row = rows.get(key)
                if row is None:
                    row = rows[key] = {
                        "line": ab.line, "label": ab.label,
                        "cause": ab.cause, "aborts": 0,
                        "wasted_cycles": 0, "attackers": Counter(),
                    }
                row["aborts"] += 1
                row["wasted_cycles"] += ab.wasted_cycles + ab.backoff_cycles
                if ab.attacker is not None:
                    row["attackers"][ab.attacker] += 1
        out = sorted(rows.values(),
                     key=lambda r: (-r["aborts"], -r["wasted_cycles"],
                                    r["line"] if r["line"] is not None else -1))
        for row in out:
            row["attackers"] = {str(core): n
                                for core, n in sorted(row["attackers"].items())}
        return out

    def summary(self) -> dict:
        committed = sum(1 for r in self.records if r.outcome == "committed")
        retries = [r.retries for r in self.records]
        hist: Counter = Counter(retries)
        return {
            "transactions": len(self.records),
            "committed": committed,
            "aborted_attempts": sum(len(r.aborts) for r in self.records),
            "total_retries": sum(retries),
            "max_retries": max(retries, default=0),
            "retries_histogram": {str(k): hist[k] for k in sorted(hist)},
            "wasted_cycles": sum(r.wasted_cycles for r in self.records),
            "backoff_cycles": sum(r.backoff_cycles for r in self.records),
            "max_read_set": max((r.read_set for r in self.records), default=0),
            "max_write_set": max((r.write_set for r in self.records),
                                 default=0),
            "max_labeled_set": max((r.labeled_set for r in self.records),
                                   default=0),
        }


__all__ = ["AbortRecord", "TxRecord", "LifecycleTracker"]
