"""Host-side phase accountant: where does *wall-clock* go?

Every other number in :mod:`repro.obs` is simulated time. This module
accounts the simulator's own execution on the host — ``perf_counter_ns``
deltas taken at phase boundaries, never per operation — so "why is this
run slow on my machine" is answerable from the same artifact bundle as
"why is this run slow in simulated cycles". Phases are coarse by
contract:

* vector engine: ``epoch`` (one classify+execute attempt), ``strict``
  (one budgeted run-ahead burst), ``drain`` (the unbudgeted fenced
  replay after a gate rebind), ``kernel`` (one batched numpy reduction),
  ``stats_reduce`` (the column flush);
* harness: ``build_machine``, ``build_workload``, ``simulate``,
  ``verify`` around one run, plus ``cache_get`` / ``cache_put`` /
  ``experiment`` accumulated process-wide in :data:`HARNESS_PROF`.

The accountant is zero-dependency and cheap enough to leave armed: two
``perf_counter_ns`` calls and two dict adds per phase boundary. The
vector engine still skips it entirely when no Observer is installed, so
the obs-off hot loop stays untouched.

Reports are versioned (:data:`HOSTPROF_SCHEMA`); :meth:`trace_events`
renders the retained intervals as a Chrome ``X`` lane (host wall
microseconds) that the Perfetto exporter appends as its own thread.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, List

#: Version tag stamped into every hostprof report section.
HOSTPROF_SCHEMA = "repro-obs-hostprof/1"

#: Bound on *retained* per-interval events; totals and call counts keep
#: accumulating past it, and the report records how many were dropped.
DEFAULT_EVENT_LIMIT = 4096


class HostProfiler:
    """Accumulates wall-clock by named phase for one run (or process)."""

    __slots__ = ("totals", "calls", "events", "dropped", "limit", "_origin")

    def __init__(self, limit: int = DEFAULT_EVENT_LIMIT):
        #: phase name -> accumulated nanoseconds.
        self.totals: Dict[str, int] = {}
        #: phase name -> boundary-pair count.
        self.calls: Dict[str, int] = {}
        #: Retained intervals: ``(phase, start_ns_since_origin, dur_ns)``.
        self.events: List[tuple] = []
        self.dropped = 0
        self.limit = limit
        self._origin = perf_counter_ns()

    # --- recording ----------------------------------------------------------

    def start(self) -> int:
        """Open a phase: returns the timestamp to pass to :meth:`stop`."""
        return perf_counter_ns()

    def stop(self, phase: str, t0: int) -> None:
        """Close a phase opened at ``t0`` and account the delta."""
        self._account(phase, t0 - self._origin, perf_counter_ns() - t0)

    def add(self, phase: str, dur_ns: int) -> None:
        """Account an externally measured duration (e.g. a phase timed
        before this profiler existed, like machine construction)."""
        if dur_ns < 0:
            dur_ns = 0
        self._account(phase, perf_counter_ns() - self._origin - dur_ns,
                      dur_ns)

    def _account(self, phase: str, start: int, dur: int) -> None:
        if start < 0:
            # An externally measured phase (add) may have begun before
            # this profiler existed — machine construction times itself
            # around the Observer's birth. Clamp to the origin so the
            # trace lane stays monotonic from ts 0.
            start = 0
        self.totals[phase] = self.totals.get(phase, 0) + dur
        self.calls[phase] = self.calls.get(phase, 0) + 1
        if len(self.events) < self.limit:
            self.events.append((phase, start, dur))
        else:
            self.dropped += 1

    # --- exports ------------------------------------------------------------

    def report(self) -> dict:
        """Versioned plain-dict section (picklable, JSON-ready)."""
        total = sum(self.totals.values())
        return {
            "schema": HOSTPROF_SCHEMA,
            "total_ns": total,
            "phases": {
                name: {
                    "ns": ns,
                    "calls": self.calls[name],
                    "share": round(ns / total, 4) if total else 0.0,
                }
                for name, ns in sorted(self.totals.items())
            },
            "dropped_events": self.dropped,
        }

    def trace_events(self) -> List[dict]:
        """Retained intervals as Chrome ``X`` events in host wall
        microseconds (the exporter assigns the lane identity). Sub-µs
        intervals clamp to 1 so they stay visible."""
        return [
            {"ph": "X", "name": phase, "cat": "host", "tid": 0,
             "ts": start // 1000, "dur": max(dur // 1000, 1), "args": {}}
            for phase, start, dur in sorted(self.events,
                                            key=lambda e: e[1])
        ]


#: Process-wide accountant for phases with no per-run Observer to hang
#: off: result-cache lookups/stores and whole-experiment dispatch. The
#: CLI's ``--hostprof-out`` document carries its report alongside the
#: per-point sections. Worker processes accumulate their own instance;
#: only the parent's is reported (cache and dispatch run in the parent).
HARNESS_PROF = HostProfiler()


__all__ = ["DEFAULT_EVENT_LIMIT", "HARNESS_PROF", "HOSTPROF_SCHEMA",
           "HostProfiler"]
