"""Chrome/Perfetto trace-event JSON export.

Produces the `Trace Event Format`_ JSON object form: ``{"traceEvents":
[...]}`` plus top-level metadata. Open the file directly in
``ui.perfetto.dev`` (or ``chrome://tracing``): each simulated core is a
named thread lane carrying its transaction spans (B/E), instant events
(reductions, gathers, NACKs, conflicts) and backoff intervals (X), and the
counter tracks (``u_lines``, ``abort_rate``) render as graphs. Timestamps
are simulated cycles presented as microseconds — Perfetto's units are
cosmetic; relative placement is what matters.

Schema ``/2`` adds two optional lanes past the core lanes: the vector
engine's own track (epoch spans annotated with op count and fence-cause
histogram, certifier-mispredict instants, gate-rebind markers,
strict-drain regions — simulated-cycle timestamps) and the host
self-profiler's wall-clock track (phase intervals in real microseconds;
a different timebase on purpose, so it gets its own lane instead of
interleaving). Readers of ``/1`` payloads still work: the extra keys are
simply absent and the export degrades to the core lanes.

Multi-point sweeps merge into one trace with one *process* per sweep
point (:func:`merge_traces`), so e.g. a thread ladder's points sit side by
side in the UI.

.. _Trace Event Format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

#: Version tag stamped into every exported trace (bump on breaking change).
#: /2: optional vector-engine and host-time lanes after the core lanes.
TRACE_SCHEMA = "repro-obs-trace/2"


def _point_events(pid: int, point: str, events: List[dict],
                  vector_events: Optional[List[dict]] = None,
                  host_events: Optional[List[dict]] = None) -> List[dict]:
    """One sweep point's events as a named Chrome process ``pid``.

    Stored events carry no ``pid`` and are appended in simulation order —
    chronological *per core* but interleaved across cores — so a stable
    sort by ``ts`` yields a globally ordered lane-consistent stream (B/E
    nesting per tid survives because equal timestamps keep append order).
    The vector and host lanes are appended after the core lanes, each
    sorted on its own: they never emit B/E pairs, and the host lane is on
    a different timebase (wall µs), so per-lane monotonicity is all that
    is required.
    """
    out: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": pid, "tid": 0, "ts": 0,
        "args": {"name": point},
    }]
    cores = sorted({e["tid"] for e in events if "tid" in e})
    for core in cores:
        out.append({"ph": "M", "name": "thread_name", "pid": pid,
                    "tid": core, "ts": 0, "args": {"name": f"core {core}"}})
    for event in sorted(events, key=lambda e: e["ts"]):
        tagged = dict(event)
        tagged["pid"] = pid
        out.append(tagged)
    lane = (cores[-1] + 1) if cores else 1
    for name, extra in (("engine (vector)", vector_events),
                        ("host (wall µs)", host_events)):
        if extra:
            out.append({"ph": "M", "name": "thread_name", "pid": pid,
                        "tid": lane, "ts": 0, "args": {"name": name}})
            for event in sorted(extra, key=lambda e: e["ts"]):
                tagged = dict(event)
                tagged["pid"] = pid
                tagged["tid"] = lane
                out.append(tagged)
        lane += 1
    return out


def chrome_trace(observer, pid: int = 0, point: Optional[str] = None) -> dict:
    """Export one Observer's recording as a Chrome trace-event object."""
    recorder = observer.recorder
    recorder.close_open_spans()
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": _point_events(
            pid, point or "run", recorder.events,
            vector_events=observer.vector_recorder.events,
            host_events=observer.hostprof.trace_events()),
        "otherData": {
            "dropped_events": recorder.dropped,
            "event_counts": recorder.counts(),
        },
    }


def merge_traces(point_traces: Iterable[Tuple[str, dict]]) -> dict:
    """Merge per-point trace payloads into one multi-process trace.

    ``point_traces`` yields ``(point_label, trace_payload)`` pairs where
    the payload is the ``"trace"`` entry of ``Observer.payload()`` (the
    form the harness attaches to ``ExperimentResult.info["obs"]``).
    Payloads written before schema ``/2`` carry no ``vector_events`` /
    ``host_events`` keys; they merge as core-lanes-only points.
    """
    events: List[dict] = []
    dropped = 0
    counts: dict = {}
    for pid, (point, payload) in enumerate(point_traces):
        dropped += payload.get("dropped", 0)
        for name, n in payload.get("counts", {}).items():
            counts[name] = counts.get(name, 0) + n
        events.extend(_point_events(
            pid, point, payload["events"],
            vector_events=payload.get("vector_events"),
            host_events=payload.get("host_events")))
    return {
        "schema": TRACE_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": events,
        "otherData": {
            "dropped_events": dropped,
            "event_counts": counts,
        },
    }


__all__ = ["TRACE_SCHEMA", "chrome_trace", "merge_traces"]
