"""The Observer: one object wiring recorder, lifecycle, and metrics.

The :class:`~repro.core.machine.Machine` installs an Observer when
``observe=True`` (or ``REPRO_OBS=1``); the engine, the conflict manager,
and the memory system each hold a slot that is ``None`` otherwise, so the
disabled mode adds no work anywhere. When installed, the engine routes
memory operations through the full protocol handlers (the
``REPRO_NO_FASTPATH`` path, proven bit-identical to the fast path by
``tests/test_fastpath_equivalence.py``) so every protocol event passes a
single choke point.

Abort attribution is assembled from three call sites, in order:

1. :meth:`conflict` / :meth:`nack` (protocol) — stage the *attacker core,
   line, and label* for the core that is about to lose;
2. :meth:`tx_rollback` (conflict manager, pre-rollback) — capture the
   victim's speculative read/write/labeled-set sizes while the bits are
   still set, and merge in the staged conflict info;
3. :meth:`tx_abort` (engine restart path) — finalize the
   :class:`~repro.obs.lifecycle.AbortRecord` with wasted and backoff
   cycles and close the transaction's trace span.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from .hostprof import HostProfiler
from .lifecycle import AbortRecord, LifecycleTracker
from .metrics import MetricsRegistry
from .recorder import DEFAULT_LIMIT, TraceRecorder

#: Set to 1/true/yes to enable observability for any run (CLI, tests,
#: benchmarks) without plumbing a flag through — same discipline as
#: REPRO_SANITIZE.
OBS_ENV = "REPRO_OBS"


def obs_enabled(default: bool = False) -> bool:
    value = os.environ.get(OBS_ENV)
    if value is None:
        return default
    return value.strip().lower() not in ("", "0", "false", "no")


def _label_name(label) -> Optional[str]:
    return None if label is None else label.name


class Observer:
    """Collects structured telemetry for one machine run."""

    def __init__(self, machine, limit: int = DEFAULT_LIMIT):
        self.machine = machine
        self.recorder = TraceRecorder(limit=limit)
        #: Engine-level lane for the vector backend (epoch spans,
        #: certifier mispredicts, gate rebinds, strict-drain regions).
        #: Kept separate from the per-core recorder so the core lanes'
        #: payload stays byte-identical to an interpreted run.
        self.vector_recorder = TraceRecorder(limit=limit)
        #: Host-side wall-clock phase accountant (see repro.obs.hostprof).
        self.hostprof = HostProfiler()
        self.lifecycle = LifecycleTracker()
        self.metrics = MetricsRegistry()
        self.commits = 0
        self.aborts = 0
        #: Staged conflict attribution per core about to abort:
        #: {"attacker": int|None, "line": int|None, "label": str|None,
        #:  "cause": str, "read_set": int, "write_set": int,
        #:  "labeled_set": int} — filled by conflict()/nack() and
        #: tx_rollback(), consumed by tx_abort().
        self._pending: Dict[int, dict] = {}

    # --- helpers --------------------------------------------------------------

    def _spec_sizes(self, core: int):
        """Speculative set sizes (lines) — call while the bits are set."""
        reads = writes = labeled = 0
        for entry in self.machine.msys.caches[core].spec_lines():
            if entry.spec_read:
                reads += 1
            if entry.spec_written:
                writes += 1
            if entry.spec_labeled:
                labeled += 1
        return reads, writes, labeled

    def _u_lines(self) -> int:
        """Lines with at least one U-state copy, machine-wide."""
        return sum(1 for ent in self.machine.msys.directory._entries.values()
                   if ent.u_sharers)

    def _sample_counters(self, ts: int) -> None:
        self.recorder.counter(ts, "u_lines", self._u_lines())
        total = self.commits + self.aborts
        if total:
            self.recorder.counter(ts, "abort_rate",
                                  round(self.aborts / total, 4))

    # --- engine hooks (transaction lifecycle) ---------------------------------

    def tx_begin(self, core: int, cycle: int, tx) -> None:
        self._pending.pop(core, None)
        self.lifecycle.begin(core, cycle, tx.ts)
        self.recorder.begin_span(core, cycle, "tx",
                                 args={"ts": tx.ts, "attempt": tx.attempts})

    def tx_retry(self, core: int, cycle: int, tx) -> None:
        self.lifecycle.retry(core, tx.attempts)
        self.recorder.begin_span(core, cycle, "tx",
                                 args={"ts": tx.ts, "attempt": tx.attempts})

    def tx_commit(self, core: int, cycle: int, tx) -> None:
        # Runs BEFORE HtmRuntime.commit: commit_all() clears the spec bits
        # this reads.
        reads, writes, labeled = self._spec_sizes(core)
        self.lifecycle.commit(core, cycle,
                              committed_cycles=tx.cycles_this_attempt,
                              read_set=reads, write_set=writes,
                              labeled_set=labeled)
        self.commits += 1
        self.recorder.end_span(core, cycle, args={
            "outcome": "commit", "attempt": tx.attempts,
            "read_set": reads, "write_set": writes, "labeled_set": labeled,
        })
        self._sample_counters(cycle)

    def tx_abort(self, core: int, cycle: int, tx, stall: int) -> None:
        # Runs on the engine's restart path, after the attempt's wasted
        # cycles are final and the backoff stall is known.
        info = self._pending.pop(core, {})
        cause = info.get("cause")
        if cause is None:
            cause = tx.abort_cause.value if tx.abort_cause else "other"
        record = AbortRecord(
            cycle=cycle, attempt=tx.attempts, cause=cause,
            attacker=info.get("attacker"), line=info.get("line"),
            label=info.get("label"),
            wasted_cycles=tx.cycles_this_attempt, backoff_cycles=stall,
            read_set=info.get("read_set", 0),
            write_set=info.get("write_set", 0),
            labeled_set=info.get("labeled_set", 0),
        )
        self.lifecycle.abort(core, record)
        self.aborts += 1
        self.recorder.end_span(core, cycle, args={
            "outcome": "abort", "attempt": tx.attempts, "cause": cause,
            "attacker": record.attacker, "line": record.line,
            "label": record.label,
        })
        if stall:
            self.recorder.complete(core, cycle, stall, "backoff",
                                   args={"attempt": tx.attempts,
                                         "cause": cause})
        self._sample_counters(cycle)

    # --- conflict-manager hooks -----------------------------------------------

    def conflict(self, victim_core: int, line_no: int, requester,
                 trigger, entry, cause) -> None:
        """A request from ``requester`` is about to abort ``victim_core``."""
        attacker = requester.core if requester.core >= 0 else None
        self._pending[victim_core] = {
            "attacker": attacker, "line": line_no,
            "label": _label_name(entry.label), "cause": cause.value,
        }
        if requester.now is not None:
            self.recorder.instant(victim_core, requester.now, "conflict",
                                  args={"line": line_no,
                                        "attacker": attacker,
                                        "trigger": trigger.name.lower(),
                                        "cause": cause.value})

    def tx_rollback(self, core: int, tx, cause) -> None:
        """Called by ConflictManager.abort before rollback_all clears the
        speculative bits; merges set sizes into the staged attribution."""
        reads, writes, labeled = self._spec_sizes(core)
        info = self._pending.setdefault(core, {})
        info.setdefault("cause", cause.value)
        info["read_set"] = reads
        info["write_set"] = writes
        info["labeled_set"] = labeled

    # --- protocol hooks -------------------------------------------------------

    def touch(self, line_no: int, label=None) -> None:
        self.metrics.touch(line_no, _label_name(label))

    def nack(self, requester, victim: int, line_no: int, entry,
             trigger) -> None:
        """``victim`` NACKed ``requester``'s request: the requester will
        abort, with the NACKing core as the attacker."""
        self.metrics.nack(line_no)
        if requester.core >= 0:
            self._pending[requester.core] = {
                "attacker": victim, "line": line_no,
                "label": _label_name(entry.label),
            }
        if requester.now is not None:
            self.recorder.instant(requester.core, requester.now, "nack",
                                  args={"line": line_no, "by": victim,
                                        "trigger": trigger.name.lower()})

    def reduction(self, core: int, line_no: int, label, forwarded: int,
                  nacked: int, latency: int, ts: Optional[int]) -> None:
        self.metrics.reduction(line_no, _label_name(label),
                               invalidated=forwarded)
        if ts is not None:
            self.recorder.instant(core, ts, "reduction",
                                  args={"line": line_no,
                                        "label": _label_name(label),
                                        "lines": forwarded,
                                        "nacked": nacked,
                                        "latency": latency})
            self._sample_counters(ts)

    def gather(self, core: int, line_no: int, label, sharers: int,
               donations: int, nacked: int, latency: int,
               ts: Optional[int]) -> None:
        self.metrics.gather(line_no, _label_name(label))
        if ts is not None:
            self.recorder.instant(core, ts, "gather",
                                  args={"line": line_no,
                                        "label": _label_name(label),
                                        "sharers": sharers,
                                        "donations": donations,
                                        "nacked": nacked,
                                        "latency": latency})
            self._sample_counters(ts)

    def invalidated(self, line_no: int, count: int = 1) -> None:
        self.metrics.invalidation(line_no, count)

    # --- vector-engine hooks --------------------------------------------------
    # The vector backend executes fused transactions closed form, so their
    # begin/commit never pass the engine hooks above. These two synthesize
    # the same emissions from the closed-form timestamps: ``fused_tx_begin``
    # at the strict begin cycle, ``fused_tx_commit`` at the strict commit
    # cycle (the engine defers it to that exact point so the counter
    # samples and the event order match the interpreted run byte for byte).

    def fused_tx_begin(self, core: int, cycle: int, ts) -> None:
        self._pending.pop(core, None)
        self.lifecycle.begin(core, cycle, ts)
        self.recorder.begin_span(core, cycle, "tx",
                                 args={"ts": ts, "attempt": 1})

    def fused_tx_commit(self, core: int, cycle: int, committed_cycles: int,
                        reads: int, writes: int, labeled: int,
                        attempt: int = 1) -> None:
        self.lifecycle.commit(core, cycle,
                              committed_cycles=committed_cycles,
                              read_set=reads, write_set=writes,
                              labeled_set=labeled)
        self.commits += 1
        self.recorder.end_span(core, cycle, args={
            "outcome": "commit", "attempt": attempt,
            "read_set": reads, "write_set": writes, "labeled_set": labeled,
        })
        self._sample_counters(cycle)

    # Engine-lane events: the epoch/gate machinery is host-side (it never
    # changes simulated results), so its telemetry goes to the dedicated
    # vector lane rather than the per-core lanes the parity oracle compares.

    def vector_epoch(self, t0: int, dur: int, ops: int, fences: int,
                     causes: dict) -> None:
        self.vector_recorder.complete(0, t0, max(dur, 1), "epoch", args={
            "ops": ops, "fences": fences,
            "causes": dict(sorted(causes.items())),
        })

    def vector_mispredict(self, core: int, cycle: int, line: int,
                          predicted: int, actual: int) -> None:
        self.vector_recorder.instant(0, cycle, "mispredict", args={
            "core": core, "line": line,
            "predicted": predicted, "actual": actual,
        })

    def vector_gate_rebind(self, cycle: int, attempts: int,
                           share: float) -> None:
        self.vector_recorder.instant(0, cycle, "gate_rebind", args={
            "attempts": attempts, "epoch_cycle_share": round(share, 4),
        })

    def vector_drain(self, t0: int, t1: int) -> None:
        self.vector_recorder.complete(0, t0, max(t1 - t0, 1),
                                      "strict_drain")

    # --- exports --------------------------------------------------------------

    def hot_lines(self, k: int = 16):
        return self.metrics.top(k)

    def trace(self, pid: int = 0, point: Optional[str] = None) -> dict:
        from .perfetto import chrome_trace
        return chrome_trace(self, pid=pid, point=point)

    def payload(self, max_transactions: int = 5000) -> dict:
        """Plain-dict snapshot attached to ``ExperimentResult.info`` — must
        stay picklable (it crosses the sweep worker pool)."""
        self.recorder.close_open_spans()
        records = self.lifecycle.records
        return {
            "trace": {
                "events": list(self.recorder.events),
                "dropped": self.recorder.dropped,
                "counts": self.recorder.counts(),
                # Host-side lanes (empty under the interpreted engine).
                # Consumers strip these before cross-backend payload
                # comparisons: the core-lane payload above is the part
                # that must match the interpreted run byte for byte.
                "vector_events": list(self.vector_recorder.events),
                "host_events": self.hostprof.trace_events(),
            },
            "hostprof": self.hostprof.report(),
            "lifecycle": {
                "summary": self.lifecycle.summary(),
                "abort_attribution": self.lifecycle.attribution(),
                "transactions": [r.as_dict()
                                 for r in records[:max_transactions]],
                "transactions_truncated": max(
                    0, len(records) - max_transactions),
            },
            "metrics": {
                "hot_lines": self.metrics.top(),
                "per_label": self.metrics.per_label(),
            },
        }


__all__ = ["OBS_ENV", "Observer", "obs_enabled"]
