"""Per-line / per-label hot-line metrics registry.

Knowing *which* addresses are coalescing-hot is what justifies labeling
them (CommUpdates makes the same argument for per-object attribution): a
line with many touches, frequent reductions and a wide invalidation fan-out
is exactly the line a commutative label pays off on. The registry counts,
per line: protocol-level touches (split into labeled and unlabeled),
reductions and gathers triggered at the line, invalidations and NACKs it
caused, and the labels it was accessed under. ``top(k)`` surfaces the
hottest lines, and the Machine publishes that via ``Stats.host_hot_lines``
(a ``host_*`` field: simulator-side, excluded from equivalence
comparisons).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(slots=True)
class LineMetrics:
    """Counters for one cache line."""

    line: int
    touches: int = 0          # protocol ops addressed to the line
    labeled_touches: int = 0  # of which labeled (labeled ld/st, gathers)
    reductions: int = 0       # reductions collapsing this line's U copies
    gathers: int = 0          # gather requests issued on the line
    invalidations: int = 0    # copies invalidated by requests to the line
    nacks: int = 0            # NACKs sent over the line
    by_label: Counter = field(default_factory=Counter)

    def as_dict(self) -> dict:
        return {
            "line": self.line, "touches": self.touches,
            "labeled_touches": self.labeled_touches,
            "reductions": self.reductions, "gathers": self.gathers,
            "invalidations": self.invalidations, "nacks": self.nacks,
            "by_label": dict(sorted(self.by_label.items())),
        }


class MetricsRegistry:
    """Hot-line counters for one machine, keyed by line number."""

    def __init__(self):
        self.lines: Dict[int, LineMetrics] = {}

    def _line(self, line_no: int) -> LineMetrics:
        m = self.lines.get(line_no)
        if m is None:
            m = self.lines[line_no] = LineMetrics(line=line_no)
        return m

    # --- recording -----------------------------------------------------------

    def touch(self, line_no: int, label: Optional[str] = None) -> None:
        m = self._line(line_no)
        m.touches += 1
        if label is not None:
            m.labeled_touches += 1
            m.by_label[label] += 1

    def reduction(self, line_no: int, label: Optional[str],
                  invalidated: int = 0) -> None:
        m = self._line(line_no)
        m.reductions += 1
        m.invalidations += invalidated
        if label is not None:
            m.by_label[label] += 0  # ensure the label appears

    def gather(self, line_no: int, label: Optional[str]) -> None:
        self._line(line_no).gathers += 1

    def invalidation(self, line_no: int, count: int = 1) -> None:
        self._line(line_no).invalidations += count

    def nack(self, line_no: int) -> None:
        self._line(line_no).nacks += 1

    # --- queries --------------------------------------------------------------

    def top(self, k: int = 16) -> List[dict]:
        """The ``k`` hottest lines (by touches, ties by line number)."""
        ranked = sorted(self.lines.values(),
                        key=lambda m: (-m.touches, m.line))
        return [m.as_dict() for m in ranked[:k]]

    def per_label(self) -> Dict[str, int]:
        """Labeled touches per label name, across all lines."""
        out: Counter = Counter()
        for m in self.lines.values():
            out.update(m.by_label)
        return {name: out[name] for name in sorted(out)}


__all__ = ["LineMetrics", "MetricsRegistry"]
