"""The CommTM memory system: MESI + U-state request handling.

This module implements Sec. III-B of the paper: how conventional loads and
stores, labeled loads and stores, gather requests, and evictions move lines
between M/E/S/U/I, when reductions fire, and how conflicts are raised to the
HTM layer.

Every public operation is logically atomic (the engine interleaves cores at
operation granularity) and returns an :class:`AccessResult` whose ``cycles``
field carges the issuing core with Table I latencies:

* L1 hit: L1 latency.
* Private (L2) hit: L1 + L2.
* Directory transaction: + NoC round trip to the line's L3 bank + L3 bank
  latency (+ main-memory latency on an L3 miss).
* Invalidation fan-out: + the worst-case round trip to a victim (parallel).
* Forwarded data (downgrades, reductions, gathers): + the forward hop, and
  reductions additionally charge the user handler's cost serially (the
  shadow thread merges one line at a time).

Conflicts are delegated to a *conflict manager* (the HTM layer) through a
narrow interface: :meth:`ConflictManagerBase.resolve` decides, per victim,
whether the victim's transaction aborts (and rolls it back synchronously) or
NACKs the request (in which case the requester's transaction must abort).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set

from ..errors import ProtocolError, ReductionError
from ..mem.address import line_of, word_index, check_word_aligned
from ..mem.memory import MainMemory
from ..params import LINE_BYTES, SystemConfig, WORD_BYTES
from ..sim.stats import Stats, WastedCause
from ..core.labels import HandlerContext, Label, LabelRegistry
from .cache import PrivateCache
from .directory import Directory, DirEntry
from .line import CacheLine
from .messages import AccessKind, AccessResult, Requester, SYSTEM
from .noc import Mesh
from .states import State

# Hot-path aliases: the per-access handlers below compare states with `is`
# against these module locals instead of looking up enum attributes, and
# inline the line/word arithmetic of mem.address.
_M, _E, _S, _U = State.M, State.E, State.S, State.U


class Trigger(enum.Enum):
    """What kind of action is hitting a victim's speculative line.

    Used by the conflict manager to attribute wasted cycles (Fig. 18).
    """

    READ = "read"            # GETS downgrade / read invalidation
    WRITE = "write"          # GETX invalidation
    LABELED = "labeled"      # GETU invalidation of S sharers or M owner
    REDUCTION_READ = "reduction_read"    # reduction triggered by a load
    REDUCTION_WRITE = "reduction_write"  # reduction triggered by a store
    GATHER = "gather"        # split request
    EVICTION = "eviction"    # capacity / inclusion invalidation


class Resolution(enum.Enum):
    ABORT_VICTIM = "abort_victim"
    NACK = "nack"


class ConflictManagerBase:
    """Interface the HTM layer implements (see ``repro.htm.conflict``).

    The default implementation here lets the memory system run stand-alone
    (no transactions): every conflict aborts the victim, which trivially
    succeeds because there are no victims without transactions.
    """

    def resolve(self, victim_core: int, line_no: int, requester: Requester,
                trigger: Trigger, victim_entry: CacheLine) -> Resolution:
        raise NotImplementedError

    def abort_requester(self, core: int, cause: WastedCause,
                        disable_labels: bool = False) -> None:
        """Abort (roll back) the requesting core's transaction immediately.
        Used for the unlabeled-access-to-own-speculative-U case (which also
        disables labeled accesses for the retry, per Sec. III-B4) and for
        capacity evictions of speculative lines."""
        raise NotImplementedError


class NoTransactions(ConflictManagerBase):
    """Conflict manager for non-transactional use of the memory system."""

    def resolve(self, victim_core, line_no, requester, trigger, victim_entry):
        raise ProtocolError(
            "speculative line encountered but no HTM layer is attached"
        )

    def abort_requester(self, core, cause, disable_labels=False):
        raise ProtocolError("no HTM layer attached")


class MemorySystem:
    """Private caches + directory + protocol logic for one machine."""

    def __init__(self, config: SystemConfig, memory: MainMemory,
                 labels: LabelRegistry, stats: Stats, rng):
        self.config = config
        self.memory = memory
        self.labels = labels
        self.stats = stats
        self.rng = rng
        self.mesh = Mesh(config.noc)
        self.caches: List[PrivateCache] = []
        for core in range(config.num_cores):
            cache = PrivateCache(core, config.l1, config.l2)
            cache.eviction_hook = self._make_eviction_hook(core)
            self.caches.append(cache)
        self.directory = Directory(
            memory, num_lines=config.l3.num_lines, stats=stats
        )
        self.directory.eviction_hook = self._on_l3_eviction
        self.conflicts: ConflictManagerBase = NoTransactions()
        #: Optional Tracer (set by the Machine facade).
        self.tracer = None
        #: Optional CoherenceSanitizer (set by the Machine facade when
        #: sanitizing; see repro.analysis.sanitizer). None keeps every
        #: operation on its original path.
        self.sanitizer = None
        #: Optional Observer (set by the Machine facade; see repro.obs).
        #: When installed, the engine routes every memory operation through
        #: the full handlers below, so these hooks see all protocol events.
        self.obs = None
        #: Optional batched reduction kernel, ``kernel(label, rows) ->
        #: merged words | None``. Set by the vector backend; when present
        #: and the label is word-wise, reductions/gather merges collect the
        #: sharer lines and fold them in one call instead of the sequential
        #: per-line loop. The kernel may decline (None) and must then be
        #: bit-identical to the sequential fold when it accepts; charged
        #: cycles are independent of which path ran.
        self.reduction_kernel = None
        self._in_handler = False
        #: Per-line end-of-service time at the home directory bank: a
        #: directory transaction reserves its line, so contended lines
        #: serialize (the effect that makes conventional HTMs flat-line on
        #: contended counters, and that U-state local hits bypass).
        self._line_busy: Dict[int, int] = {}
        # Precomputed latency tables: directory round-trip latency and hop
        # count depend only on (core tile, home bank), so the per-access
        # mesh geometry walk collapses to two list lookups.
        self._l3_banks = config.l3_banks
        self._dir_rt = [
            [self.mesh.round_trip(self._core_tile(core),
                                  bank % config.noc.num_tiles)
             for bank in range(config.l3_banks)]
            for core in range(config.num_cores)
        ]
        self._dir_hops2 = [
            [self.mesh.hops(self._core_tile(core),
                            bank % config.noc.num_tiles) * 2
             for bank in range(config.l3_banks)]
            for core in range(config.num_cores)
        ]
        self._l1_latency = config.l1.latency
        self._l12_latency = config.l1.latency + config.l2.latency

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach_conflict_manager(self, manager: ConflictManagerBase) -> None:
        self.conflicts = manager
        for cache in self.caches:
            cache.spec_eviction_hook = (
                lambda core, reason: self.conflicts.abort_requester(
                    core, WastedCause.OTHER
                )
            )

    def _make_eviction_hook(self, core: int):
        return lambda victim: self._on_private_eviction(core, victim)

    # ------------------------------------------------------------------
    # Latency helpers
    # ------------------------------------------------------------------

    def _bank_tile(self, line_no: int) -> int:
        bank = line_no % self.config.l3_banks
        return bank % self.config.noc.num_tiles

    def _core_tile(self, core: int) -> int:
        return self.config.tile_of_core(core)

    def _dir_round_trip(self, core: int, line_no: int) -> int:
        return self._dir_rt[core][line_no % self._l3_banks]

    def _private_lookup_cycles(self, l1_hit: bool) -> int:
        if l1_hit:
            return self._l1_latency
        return self._l12_latency

    def _charge_dir_access(self, core: int, line_no: int,
                           res: AccessResult) -> DirEntry:
        """Charge a directory transaction and return the entry."""
        was_miss = self.directory.was_miss(line_no)
        ent = self.directory.entry(line_no)
        bank = line_no % self._l3_banks
        res.cycles += self._dir_rt[core][bank] + self.config.l3.latency
        self.stats.noc_hops += self._dir_hops2[core][bank]
        if was_miss:
            res.cycles += self.config.mem_latency
        res.dir_line = line_no
        return ent

    def _apply_occupancy(self, requester: Requester,
                         res: AccessResult) -> AccessResult:
        """Serialize directory transactions on the same line.

        If the op transacted with a line's home directory, it stalls until
        the line's previous transaction finishes, and holds the line for
        its own duration. Private-cache hits never stall — the heart of
        CommTM's concurrency benefit.
        """
        if res.dir_line is None or requester.now is None:
            # Private-cache hits (the common case) never transact with a
            # directory and never stall.
            return res
        start = requester.now
        busy_until = self._line_busy.get(res.dir_line, 0)
        stall = busy_until - start
        if stall > 0:
            res.cycles += stall
        occupying = res.cycles - res.overlap_cycles
        self._line_busy[res.dir_line] = max(busy_until, start + occupying)
        return res

    def _charge_inval_fanout(self, line_no: int, victims, res: AccessResult) -> None:
        """Invalidations fan out in parallel from the line's bank."""
        bank = self._bank_tile(line_no)
        tiles = [self._core_tile(v) for v in victims]
        if tiles:
            res.cycles += self.mesh.max_latency_from(bank, tiles) * 2

    def _charge_forward(self, src_core: int, dst_core: int,
                        res: AccessResult) -> None:
        res.cycles += self._forward_latency(src_core, dst_core)

    def _forward_latency(self, src_core: int, dst_core: int) -> int:
        """Latency of one cache-to-cache data forward; records traffic."""
        self.stats.forwards += 1
        self.stats.noc_hops += self.mesh.hops(self._core_tile(src_core),
                                              self._core_tile(dst_core))
        return self.mesh.latency(self._core_tile(src_core),
                                 self._core_tile(dst_core))

    # ------------------------------------------------------------------
    # Handler context (reduction / splitter memory access)
    # ------------------------------------------------------------------

    def handler_context(self, core: int, res: AccessResult) -> HandlerContext:
        """Build the restricted memory interface for user handlers.

        Handler accesses are non-speculative, charged to the shadow thread
        (and to the blocked request's latency), and must not touch lines in
        U state (Sec. III-B4's no-nested-reductions rule).
        """

        def check_not_reducible(addr: int) -> None:
            line_no = line_of(addr)
            own = self.caches[core].lookup(line_no)
            if own is not None and own.state is State.U:
                raise ReductionError(
                    f"handler accessed local U-state line {line_no}"
                )
            ent = self.directory.peek(line_no)
            if ent is not None and ent.u_sharers:
                raise ReductionError(
                    f"handler access to line {line_no} would trigger a "
                    f"nested reduction"
                )

        def read(addr: int) -> object:
            check_not_reducible(addr)
            inner = self._load(core, addr, SYSTEM)
            res.cycles += inner.cycles
            self.stats.shadow_thread_cycles += inner.cycles
            return inner.value

        def write(addr: int, value: object) -> None:
            check_not_reducible(addr)
            inner = self._store(core, addr, value, SYSTEM)
            res.cycles += inner.cycles
            self.stats.shadow_thread_cycles += inner.cycles

        return HandlerContext(read, write)

    def _handler_cost(self, label: Label) -> int:
        """Fixed shadow-thread cost of merging/splitting one line."""
        from ..params import WORDS_PER_LINE
        return self.config.reduction_cycles_per_word * WORDS_PER_LINE

    # ------------------------------------------------------------------
    # Conflict helpers
    # ------------------------------------------------------------------

    def _resolve_victims(self, line_no: int, victims, requester: Requester,
                         trigger: Trigger, res: AccessResult) -> Set[int]:
        """Run conflict resolution against each speculative victim.

        Returns the set of victims that NACKed (and therefore keep their
        copies). Victims that abort are rolled back synchronously by the
        conflict manager, leaving their lines non-speculative.
        """
        nackers: Set[int] = set()
        for victim in victims:
            entry = self.caches[victim].lookup(line_no)
            if entry is None or not entry.speculative:
                continue
            if victim == requester.core:
                continue
            outcome = self.conflicts.resolve(
                victim, line_no, requester, trigger, entry
            )
            if outcome is Resolution.NACK:
                self.stats.nacks_sent += 1
                nackers.add(victim)
                if self.obs is not None:
                    self.obs.nack(requester, victim, line_no, entry, trigger)
            else:
                res.aborted_victims.append(victim)
        return nackers

    @staticmethod
    def _requester_cause(kind: AccessKind) -> WastedCause:
        """Fig. 18 attribution for a requester aborted by a NACK."""
        if kind is AccessKind.GATHER:
            return WastedCause.GATHER_AFTER_LABELED
        if kind in (AccessKind.LOAD, AccessKind.LABELED_LOAD):
            return WastedCause.READ_AFTER_WRITE
        return WastedCause.WRITE_AFTER_READ

    # ------------------------------------------------------------------
    # Private-hit fast path
    #
    # The overwhelming majority of simulated accesses are private-cache
    # hits in a stable state: a load on a readable (M/E/S) line, a store
    # on an exclusive (M/E) line, a labeled access on M/E or on U with a
    # matching label. Those accesses never transact with the directory,
    # never scan sharers, never stall on line occupancy, and can never
    # abort the requester through the protocol — so the full
    # AccessResult/Requester machinery is pure overhead for them. The
    # ``fast_*`` handlers below service exactly those accesses with plain
    # tuples and the precomputed L1/L1+L2 latencies, and return ``None``
    # for anything else (miss, U mismatch, misaligned address), in which
    # case the caller retries through the full path. They are
    # bit-identical to the slow path by construction: every state
    # mutation (LRU touch, speculative bits, write versioning, silent
    # E->M upgrade) is the same code the slow path would run, in the same
    # order. ``REPRO_NO_FASTPATH=1`` makes the engine skip them entirely
    # (differential testing).
    # ------------------------------------------------------------------

    def fast_load(self, core: int, addr: int, speculative: bool):
        """Stable private read hit: ``(value, cycles)``, else ``None``."""
        if addr % WORD_BYTES:
            return None  # slow path raises the alignment error
        cache = self.caches[core]
        entry = cache.peek_line(addr // LINE_BYTES)
        if entry is None:
            return None
        st = entry.state
        if st is not _M and st is not _E and st is not _S:
            return None
        cycles = (self._l1_latency if cache.touch(entry.line)
                  else self._l12_latency)
        if speculative:
            entry.spec_read = True
        self.stats.host_fastpath_hits += 1
        return entry.words[addr % LINE_BYTES // WORD_BYTES], cycles

    def fast_store(self, core: int, addr: int, value: object,
                   speculative: bool):
        """Stable private write hit (M, or E with the silent upgrade):
        latency in cycles, else ``None``."""
        if addr % WORD_BYTES:
            return None
        cache = self.caches[core]
        entry = cache.peek_line(addr // LINE_BYTES)
        if entry is None:
            return None
        st = entry.state
        if st is not _M and st is not _E:
            return None
        cycles = (self._l1_latency if cache.touch(entry.line)
                  else self._l12_latency)
        if speculative:
            if entry.clean_words is None:
                entry.clean_words = list(entry.words)
            entry.spec_written = True
        entry.words = words = list(entry.words)
        words[addr % LINE_BYTES // WORD_BYTES] = value
        entry.dirty = True
        if st is _E:
            entry.state = _M
        self.stats.host_fastpath_hits += 1
        return cycles

    def fast_labeled_load(self, core: int, addr: int, label: Label,
                          speculative: bool):
        """Labeled read hit on M/E or on U with a matching label:
        ``(value, cycles)``, else ``None``."""
        if addr % WORD_BYTES:
            return None
        cache = self.caches[core]
        entry = cache.peek_line(addr // LINE_BYTES)
        if entry is None:
            return None
        st = entry.state
        if not (st is _M or st is _E
                or (st is _U and entry.label is label)):
            return None
        cycles = (self._l1_latency if cache.touch(entry.line)
                  else self._l12_latency)
        if speculative:
            entry.spec_labeled = True
        self.stats.host_fastpath_hits += 1
        return entry.words[addr % LINE_BYTES // WORD_BYTES], cycles

    def fast_labeled_store(self, core: int, addr: int, label: Label,
                           value: object, speculative: bool):
        """Labeled write hit (the commutative hit on U): latency in
        cycles, else ``None``."""
        if addr % WORD_BYTES:
            return None
        cache = self.caches[core]
        entry = cache.peek_line(addr // LINE_BYTES)
        if entry is None:
            return None
        st = entry.state
        if not (st is _M or st is _E
                or (st is _U and entry.label is label)):
            return None
        cycles = (self._l1_latency if cache.touch(entry.line)
                  else self._l12_latency)
        if speculative:
            if entry.clean_words is None:
                entry.clean_words = list(entry.words)
            entry.spec_labeled = True
        entry.words = words = list(entry.words)
        words[addr % LINE_BYTES // WORD_BYTES] = value
        entry.dirty = True
        if st is _E:
            entry.state = _M
        self.stats.host_fastpath_hits += 1
        return cycles

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def _finish(self, requester: Requester, res: AccessResult) -> AccessResult:
        """Occupancy postlude + sanitizer checkpoint for one public op."""
        res = self._apply_occupancy(requester, res)
        if self.sanitizer is not None:
            self.sanitizer.check()
        return res

    def _touch_metrics(self, addr: int, requester: Requester,
                       label: Optional[Label] = None) -> None:
        """Hot-line touch accounting for the obs layer. ``requester.now``
        is None only for flush/verification accesses, which are not part
        of the simulated run and must not skew the metrics."""
        if requester.now is not None:
            self.obs.touch(line_of(addr), label)

    def load(self, core: int, addr: int, requester: Requester) -> AccessResult:
        check_word_aligned(addr)
        if self.obs is not None:
            self._touch_metrics(addr, requester)
        return self._finish(requester, self._load(core, addr, requester))

    def store(self, core: int, addr: int, value: object,
              requester: Requester) -> AccessResult:
        check_word_aligned(addr)
        if self.obs is not None:
            self._touch_metrics(addr, requester)
        return self._finish(
            requester, self._store(core, addr, value, requester))

    def labeled_load(self, core: int, addr: int, label: Label,
                     requester: Requester) -> AccessResult:
        check_word_aligned(addr)
        if self.obs is not None:
            self._touch_metrics(addr, requester, label)
        return self._finish(
            requester,
            self._labeled_access(core, addr, label, requester,
                                 value=None, is_store=False))

    def labeled_store(self, core: int, addr: int, label: Label,
                      value: object, requester: Requester) -> AccessResult:
        check_word_aligned(addr)
        if self.obs is not None:
            self._touch_metrics(addr, requester, label)
        return self._finish(
            requester,
            self._labeled_access(core, addr, label, requester,
                                 value=value, is_store=True))

    def load_gather(self, core: int, addr: int, label: Label,
                    requester: Requester) -> AccessResult:
        check_word_aligned(addr)
        if self.obs is not None:
            self._touch_metrics(addr, requester, label)
        return self._finish(
            requester, self._gather(core, addr, label, requester))

    # ------------------------------------------------------------------
    # Lazy conflict detection (Sec. III-D generalization)
    # ------------------------------------------------------------------

    def lazy_store(self, core: int, addr: int, value: object,
                   requester: Requester) -> AccessResult:
        """Buffer a speculative store without acquiring ownership.

        TCC/Bulk-style lazy mode: the line is fetched with read permission
        (no invalidations, no conflicts) and the store lands only in the
        local speculative copy. :meth:`publish_line` makes it visible at
        commit. Exclusive (M/E) hits behave as in eager mode — there is
        nothing to defer when no other copy exists.
        """
        check_word_aligned(addr)
        if not requester.speculative:
            raise ProtocolError("lazy_store outside a transaction")
        if self.obs is not None:
            self._touch_metrics(addr, requester)
        line_no = line_of(addr)
        cache = self.caches[core]
        entry = cache.lookup(line_no)
        if entry is not None and entry.state is State.U:
            # Same rules as eager mode for reducible data.
            return self._finish(
                requester, self._store(core, addr, value, requester))
        if entry is None or not entry.state.can_read:
            res = self._apply_occupancy(
                requester, self._load(core, addr, requester))
            if res.abort_requester:
                return res
            entry = cache.lookup(line_no)
        else:
            res = AccessResult()
            res.cycles += self._private_lookup_cycles(cache.touch(line_no))
        self._write_word(entry, addr, value, requester, labeled=False)
        if entry.state is State.M and entry.clean_words is not None:
            pass  # already exclusive: the publish will be free
        if self.sanitizer is not None:
            self.sanitizer.check()
        return res

    def publish_line(self, core: int, line_no: int,
                     requester: Requester) -> AccessResult:
        """Commit-time publication of one speculatively-written line.

        Acquires ownership, invalidating every other copy; transactions
        holding the line in their read/write sets are aborted (commits
        always win in lazy mode — there is no NACK at commit)."""
        res = AccessResult()
        cache = self.caches[core]
        entry = cache.lookup(line_no)
        if entry is None:
            raise ProtocolError(
                f"publish of line {line_no} not present at core {core}"
            )
        if entry.state in (State.M, State.E):
            res.cycles += self._private_lookup_cycles(cache.touch(line_no))
            return res
        if entry.state is not State.S:
            raise ProtocolError(
                f"publish of line {line_no} in state {entry.state}"
            )
        ent = self._charge_dir_access(core, line_no, res)
        self.stats.getx += 1
        committer = Requester(core=core, ts=None, now=requester.now)
        victims = [s for s in ent.sharers if s != core]
        spec_victims = [
            v for v in victims
            if (e := self.caches[v].lookup(line_no)) is not None
            and e.speculative
        ]
        self._resolve_victims(line_no, spec_victims, committer,
                              Trigger.WRITE, res)
        self._charge_inval_fanout(line_no, victims, res)
        for victim in victims:
            self.caches[victim].drop(line_no)
            self.directory.drop_sharer(ent, victim)
            self.stats.invalidations += 1
        if self.obs is not None and victims:
            self.obs.invalidated(line_no, len(victims))
        ent.sharers.discard(core)
        ent.owner = core
        ent.check()
        entry.state = State.M
        entry.dirty = True
        return self._finish(requester, res)

    # ------------------------------------------------------------------
    # Conventional load
    # ------------------------------------------------------------------

    def _load(self, core: int, addr: int, requester: Requester) -> AccessResult:
        res = AccessResult()
        line_no = addr // LINE_BYTES
        cache = self.caches[core]
        entry = cache.lookup(line_no)

        if entry is not None and (
                (st := entry.state) is _M or st is _E or st is _S):
            res.cycles += (self._l1_latency if cache.touch(line_no)
                           else self._l12_latency)
            if requester.ts is not None:
                entry.spec_read = True
            res.value = entry.words[addr % LINE_BYTES // WORD_BYTES]
            return res

        if entry is not None and entry.state is State.U:
            return self._noncommutative_own_u(core, addr, entry, requester,
                                              is_store=False, value=None)

        # Miss: GETS.
        res.cycles += self._private_lookup_cycles(False)
        ent = self._charge_dir_access(core, line_no, res)
        self.stats.gets += 1

        if ent.owner is not None and ent.owner != core:
            done = self._downgrade_owner_for_read(core, line_no, ent,
                                                  requester, res)
            if not done:
                return res  # NACKed; requester aborts
            entry = cache.lookup(line_no)
            res.value = entry.words[word_index(addr)]
            return res
        elif ent.u_sharers:
            ok = self._reduce_at(core, line_no, ent, requester, res,
                                 trigger=Trigger.REDUCTION_READ,
                                 kind=AccessKind.LOAD)
            if not ok:
                return res
            entry = self.caches[core].lookup(line_no)
            cache.touch(line_no)
            if requester.speculative:
                entry.spec_read = True
            res.value = entry.words[word_index(addr)]
            return res

        state = State.E if ent.unshared else State.S
        new = CacheLine(line=line_no, state=state, words=list(ent.words))
        cache.install(new)
        if state is State.E:
            ent.owner = core
        else:
            ent.sharers.add(core)
        ent.check()
        if requester.speculative:
            new.spec_read = True
        res.value = new.words[word_index(addr)]
        if state is State.S:
            # Read sharing pipelines at the directory: a GETS served from
            # the L3 stalls behind pending ownership changes but does not
            # reserve the line itself.
            res.overlap_cycles = res.cycles
        return res

    def _downgrade_owner_for_read(self, core: int, line_no: int,
                                  ent: DirEntry, requester: Requester,
                                  res: AccessResult) -> bool:
        """Downgrade the M/E owner to S and forward its data. Returns False
        if the owner NACKed (requester must abort)."""
        owner = ent.owner
        owner_entry = self.caches[owner].lookup(line_no)
        if owner_entry is None:
            raise ProtocolError(f"directory owner {owner} lost line {line_no}")
        if owner_entry.spec_written or owner_entry.spec_labeled:
            nackers = self._resolve_victims(line_no, [owner], requester,
                                            Trigger.READ, res)
            if nackers:
                res.abort_requester = True
                res.abort_cause = self._requester_cause(AccessKind.LOAD)
                return False
        self._charge_inval_fanout(line_no, [owner], res)
        self._charge_forward(owner, core, res)
        self.stats.downgrades += 1
        data = list(owner_entry.words)
        owner_entry.state = State.S
        if owner_entry.dirty:
            ent.words = list(data)
            ent.dirty = True
            owner_entry.dirty = False
            self.stats.writebacks += 1
        ent.owner = None
        ent.sharers.update({owner, core})
        ent.check()
        new = CacheLine(line=line_no, state=State.S, words=data)
        self.caches[core].install(new)
        if requester.speculative:
            new.spec_read = True
        return True

    # ------------------------------------------------------------------
    # Conventional store
    # ------------------------------------------------------------------

    def _store(self, core: int, addr: int, value: object,
               requester: Requester) -> AccessResult:
        res = AccessResult()
        line_no = addr // LINE_BYTES
        cache = self.caches[core]
        entry = cache.lookup(line_no)

        if entry is not None and ((st := entry.state) is _M or st is _E):
            res.cycles += (self._l1_latency if cache.touch(line_no)
                           else self._l12_latency)
            self._write_word(entry, addr, value, requester, labeled=False)
            if entry.state is State.E:
                entry.state = State.M  # silent upgrade
            return res

        if entry is not None and entry.state is State.U:
            return self._noncommutative_own_u(core, addr, entry, requester,
                                              is_store=True, value=value)

        # Miss or S-upgrade: GETX.
        res.cycles += self._private_lookup_cycles(False)
        ent = self._charge_dir_access(core, line_no, res)
        self.stats.getx += 1

        if ent.u_sharers:
            ok = self._reduce_at(core, line_no, ent, requester, res,
                                 trigger=Trigger.REDUCTION_WRITE,
                                 kind=AccessKind.STORE)
            if not ok:
                return res
            merged = self.caches[core].lookup(line_no)
            cache.touch(line_no)
            self._write_word(merged, addr, value, requester, labeled=False)
            return res

        # Invalidate the owner and/or S sharers.
        data: Optional[List[object]] = None
        victims = []
        if ent.owner is not None and ent.owner != core:
            victims.append(ent.owner)
        victims.extend(s for s in ent.sharers if s != core)
        spec_victims = [
            v for v in victims
            if (e := self.caches[v].lookup(line_no)) is not None
            and e.speculative
        ]
        nackers = self._resolve_victims(line_no, spec_victims, requester,
                                        Trigger.WRITE, res)
        if nackers:
            res.abort_requester = True
            res.abort_cause = self._requester_cause(AccessKind.STORE)
            return res
        self._charge_inval_fanout(line_no, victims, res)
        for victim in victims:
            ventry = self.caches[victim].lookup(line_no)
            if ventry is None:
                raise ProtocolError(
                    f"directory sharer {victim} lost line {line_no}"
                )
            if ventry.state in (State.M, State.E):
                self._charge_forward(victim, core, res)
                data = list(ventry.words)
                if ventry.dirty:
                    ent.words = list(data)
                    ent.dirty = True
                    self.stats.writebacks += 1
            self.caches[victim].drop(line_no)
            self.directory.drop_sharer(ent, victim)
            self.stats.invalidations += 1
        if self.obs is not None and victims:
            self.obs.invalidated(line_no, len(victims))

        if entry is not None and entry.state is State.S:
            # Upgrade in place.
            data = entry.words
            new = entry
            new.state = State.M
            cache.touch(line_no)
        else:
            if data is None:
                data = list(ent.words)
            new = CacheLine(line=line_no, state=State.M, words=list(data))
            cache.install(new)
        ent.sharers.discard(core)
        ent.owner = core
        ent.check()
        self._write_word(new, addr, value, requester, labeled=False)
        return res

    def _write_word(self, entry: CacheLine, addr: int, value: object,
                    requester: Requester, labeled: bool) -> None:
        if requester.ts is not None:
            entry.snapshot_before_write()
            if labeled:
                entry.spec_labeled = True
            else:
                entry.spec_written = True
        entry.words = words = list(entry.words)
        words[addr % LINE_BYTES // WORD_BYTES] = value
        entry.dirty = True
        if entry.state is State.E:
            entry.state = State.M

    # ------------------------------------------------------------------
    # Labeled accesses (GETU; Sec. III-B3 cases 1-5)
    # ------------------------------------------------------------------

    def _labeled_access(self, core: int, addr: int, label: Label,
                        requester: Requester, value: object,
                        is_store: bool) -> AccessResult:
        res = AccessResult()
        line_no = addr // LINE_BYTES
        cache = self.caches[core]
        entry = cache.lookup(line_no)

        if entry is not None:
            st = entry.state
            if (st is _M or st is _E
                    or (st is _U and entry.label is label)):
                # M/E satisfy all requests (Fig. 3): the core holds the full
                # value, which is a valid sole partial value. U with a
                # matching label is the commutative hit.
                res.cycles += (self._l1_latency if cache.touch(line_no)
                               else self._l12_latency)
                if is_store:
                    self._write_word(entry, addr, value, requester,
                                     labeled=True)
                else:
                    if requester.ts is not None:
                        entry.spec_labeled = True
                    res.value = entry.words[addr % LINE_BYTES // WORD_BYTES]
                return res
            if st is _U:
                # Different label: non-commutative; reduce then re-enter U
                # with the new label (GETU case 3 with own stale copy).
                return self._noncommutative_own_u(
                    core, addr, entry, requester,
                    is_store=is_store, value=value, into_label=label)

        # Miss (I or S): GETU.
        res.cycles += self._private_lookup_cycles(False)
        ent = self._charge_dir_access(core, line_no, res)
        self.stats.getu += 1
        trigger = Trigger.LABELED

        if ent.u_sharers and ent.u_label is label:
            # Case 4: same label -> grant U, no data, identity init.
            new = CacheLine(line=line_no, state=State.U, label=label,
                            words=label.identity_line())
            cache.install(new)
            ent.u_sharers.add(core)
            ent.check()
        elif ent.u_sharers:
            # Case 3: different label -> reduce at requester, enter U with
            # the new label holding the full value.
            ok = self._reduce_at(core, line_no, ent, requester, res,
                                 trigger=Trigger.REDUCTION_WRITE if is_store
                                 else Trigger.REDUCTION_READ,
                                 kind=AccessKind.LABELED_STORE if is_store
                                 else AccessKind.LABELED_LOAD,
                                 into_label=label)
            if not ok:
                return res
        elif ent.owner is not None and ent.owner != core:
            # Case 5: downgrade owner M -> U (it keeps its data); requester
            # initializes with identity.
            owner = ent.owner
            owner_entry = self.caches[owner].lookup(line_no)
            if owner_entry is None:
                raise ProtocolError(
                    f"directory owner {owner} lost line {line_no}"
                )
            if owner_entry.speculative:
                nackers = self._resolve_victims(line_no, [owner], requester,
                                                trigger, res)
                if nackers:
                    res.abort_requester = True
                    res.abort_cause = self._requester_cause(
                        AccessKind.LABELED_STORE if is_store
                        else AccessKind.LABELED_LOAD)
                    return res
            self._charge_inval_fanout(line_no, [owner], res)
            self.stats.downgrades += 1
            owner_entry.state = State.U
            owner_entry.label = label
            ent.owner = None
            ent.u_sharers.update({owner, core})
            ent.u_label = label
            ent.check()
            new = CacheLine(line=line_no, state=State.U, label=label,
                            words=label.identity_line())
            cache.install(new)
        else:
            # Cases 1-2: no private copies (after invalidating S sharers):
            # the requester receives the actual data.
            victims = [s for s in ent.sharers if s != core]
            spec_victims = [
                v for v in victims
                if (e := self.caches[v].lookup(line_no)) is not None
                and e.speculative
            ]
            nackers = self._resolve_victims(line_no, spec_victims, requester,
                                            trigger, res)
            if nackers:
                res.abort_requester = True
                res.abort_cause = self._requester_cause(
                    AccessKind.LABELED_STORE if is_store
                    else AccessKind.LABELED_LOAD)
                return res
            self._charge_inval_fanout(line_no, victims, res)
            for victim in victims:
                self.caches[victim].drop(line_no)
                self.directory.drop_sharer(ent, victim)
                self.stats.invalidations += 1
            if self.obs is not None and victims:
                self.obs.invalidated(line_no, len(victims))
            if entry is not None and entry.state is State.S:
                cache.drop(line_no)
                self.directory.drop_sharer(ent, core)
            new = CacheLine(line=line_no, state=State.U, label=label,
                            words=list(ent.words))
            cache.install(new)
            ent.u_sharers.add(core)
            ent.u_label = label
            ent.check()

        final = cache.lookup(line_no)
        if final is None:
            raise ProtocolError(f"labeled access lost line {line_no}")
        if is_store:
            self._write_word(final, addr, value, requester, labeled=True)
        else:
            if requester.speculative:
                final.spec_labeled = True
            res.value = final.words[word_index(addr)]
        return res

    # ------------------------------------------------------------------
    # Non-commutative access to a line this core holds in U
    # ------------------------------------------------------------------

    def _noncommutative_own_u(self, core: int, addr: int, entry: CacheLine,
                              requester: Requester, is_store: bool,
                              value: object,
                              into_label: Optional[Label] = None) -> AccessResult:
        """Handle an unlabeled (or differently-labeled) access to a line the
        issuing core itself holds in U (Sec. III-B4 last paragraph).

        If our own transaction speculatively modified the U line, we abort
        it and perform the reduction on non-speculative state; on restart
        the transaction's labeled accesses execute as conventional ones.
        """
        res = AccessResult()
        line_no = line_of(addr)
        cache = self.caches[core]
        res.cycles += self._private_lookup_cycles(cache.touch(line_no))

        if requester.speculative and entry.spec_modified:
            # Abort self; the conflict manager rolls the cache back, which
            # restores this entry's non-speculative value. The retry runs
            # labeled accesses as conventional ones (Sec. III-B4).
            self.conflicts.abort_requester(core, WastedCause.OTHER,
                                           disable_labels=True)
            res.abort_requester = True
            res.abort_cause = WastedCause.OTHER
            requester = SYSTEM  # the rest of the reduction is non-speculative

        ent = self._charge_dir_access(core, line_no, res)
        if core not in ent.u_sharers:
            raise ProtocolError(
                f"core {core} holds U line {line_no} unknown to directory"
            )

        if len(ent.u_sharers) == 1:
            # Sole sharer: our copy is the full value; convert in place.
            ent.u_sharers.clear()
            ent.u_label = None
            if into_label is not None:
                entry.state = State.U
                entry.label = into_label
                ent.u_sharers.add(core)
                ent.u_label = into_label
            else:
                entry.state = State.M
                entry.label = None
                ent.owner = core
            ent.check()
            self.stats.getx += 1  # upgrade request between L2 and L3
        else:
            kind = AccessKind.STORE if is_store else AccessKind.LOAD
            trigger = (Trigger.REDUCTION_WRITE if is_store
                       else Trigger.REDUCTION_READ)
            if is_store:
                self.stats.getx += 1
            else:
                self.stats.gets += 1
            ok = self._reduce_at(core, line_no, ent, requester, res,
                                 trigger=trigger, kind=kind,
                                 into_label=into_label)
            if not ok:
                return res

        final = cache.lookup(line_no)
        if res.abort_requester:
            return res
        if is_store:
            self._write_word(final, addr, value, requester,
                             labeled=into_label is not None)
        else:
            if requester.speculative:
                if into_label is not None:
                    final.spec_labeled = True
                else:
                    final.spec_read = True
            res.value = final.words[word_index(addr)]
        return res

    # ------------------------------------------------------------------
    # Reductions (Sec. III-B4, Fig. 7)
    # ------------------------------------------------------------------

    def _reduce_at(self, core: int, line_no: int, ent: DirEntry,
                   requester: Requester, res: AccessResult, trigger: Trigger,
                   kind: AccessKind,
                   into_label: Optional[Label] = None) -> bool:
        """Collapse all U-state copies of ``line_no`` at ``core``.

        On success the requester holds the merged line in M (or in U with
        ``into_label``) and the directory reflects it; returns True.

        If any sharer NACKs (its transaction is older), the requester still
        merges the data it received, retains it in U, and must abort
        (returns False with ``res.abort_requester`` set) — the NACKed
        reduction of Fig. 6b.
        """
        if self._in_handler:
            raise ReductionError("nested reduction triggered by a handler")
        label = ent.u_label
        if label is None:
            raise ProtocolError(f"reduction on line {line_no} with no label")
        cache = self.caches[core]
        own = cache.lookup(line_no)
        hctx = self.handler_context(core, res)
        cycles_before = res.cycles
        lines_before = self.stats.reduction_lines

        sharers = sorted(ent.u_sharers - {core})
        spec_victims = [
            v for v in sharers
            if (e := self.caches[v].lookup(line_no)) is not None
            and e.speculative
        ]
        nackers = self._resolve_victims(line_no, spec_victims, requester,
                                        trigger, res)
        self._charge_inval_fanout(line_no, sharers, res)

        merged: Optional[List[object]] = None
        if own is not None:
            merged = list(own.words)
        self.stats.reductions += 1
        self.stats.reductions_by_label[label.name] += 1
        if self.tracer is not None and requester.now is not None:
            from ..sim.trace import EventKind
            self.tracer.record(requester.now, core, EventKind.REDUCTION,
                               detail=label.name)

        # Sharers forward their lines in parallel (the dedicated virtual
        # network); the shadow thread merges them one at a time. When a
        # batched kernel is installed and the label is word-wise (the fold
        # never consults the HandlerContext), the forwarded lines are
        # collected and folded in one pass instead — same merge count, same
        # charge, bit-identical merged words.
        batch: Optional[List[List[object]]] = None
        if self.reduction_kernel is not None and label._reduce_word is not None:
            batch = [] if merged is None else [merged]
        max_forward = 0
        self._in_handler = True
        try:
            for sharer in sharers:
                if sharer in nackers:
                    continue
                ventry = self.caches[sharer].lookup(line_no)
                if ventry is None:
                    raise ProtocolError(
                        f"U sharer {sharer} lost line {line_no}"
                    )
                max_forward = max(max_forward,
                                  self._forward_latency(sharer, core))
                self.stats.reduction_lines += 1
                data = list(ventry.words)
                if batch is not None:
                    batch.append(data)
                elif merged is None:
                    merged = data
                else:
                    merged = label.reduce(hctx, merged, data)
                    res.cycles += self._handler_cost(label)
                    self.stats.shadow_thread_cycles += self._handler_cost(label)
                self.caches[sharer].drop(line_no)
                self.directory.drop_sharer(ent, sharer)
                self.stats.invalidations += 1
        finally:
            self._in_handler = False
        if batch:
            merged = self._fold_rows(label, batch, hctx, res)
        res.cycles += max_forward
        if self.obs is not None:
            # Forwarded lines were also invalidated at their sharers
            # (NACKers kept theirs and are excluded from both counts).
            self.obs.reduction(core, line_no, label,
                               forwarded=self.stats.reduction_lines
                               - lines_before,
                               nacked=len(nackers),
                               latency=res.cycles - cycles_before,
                               ts=requester.now)

        if merged is None:
            if nackers:
                # Every sharer NACKed and we held no copy: nothing was
                # forwarded; just abort and retry.
                res.abort_requester = True
                res.abort_cause = self._requester_cause(kind)
                return False
            raise ProtocolError(f"reduction of line {line_no} had no data")

        if nackers:
            # NACKed reduction: keep the partial merge in U and abort.
            self._install_reduced(core, line_no, ent, merged, own,
                                  as_state=State.U, label=label)
            res.abort_requester = True
            res.abort_cause = self._requester_cause(kind)
            return False

        if into_label is not None:
            self._install_reduced(core, line_no, ent, merged, own,
                                  as_state=State.U, label=into_label)
        else:
            self._install_reduced(core, line_no, ent, merged, own,
                                  as_state=State.M, label=None)
        return True

    def _install_reduced(self, core: int, line_no: int, ent: DirEntry,
                         merged: List[object], own: Optional[CacheLine],
                         as_state: State, label: Optional[Label]) -> None:
        """Install the merged value at the requester and fix the directory.

        Merged data is non-speculative by construction (reductions operate
        on non-speculative values), so it must survive a later abort of the
        requester's transaction: we update both the speculative words and
        the clean snapshot. If the requester's own line was speculatively
        modified, its speculative delta is preserved on top.
        """
        cache = self.caches[core]
        if own is not None and own.clean_words is not None:
            # own.words (speculative) already participated in the merge; the
            # clean copy must absorb the same forwarded data. Recompute:
            # merged = reduce(own.spec, forwards); clean' = reduce(own.clean,
            # forwards). We reconstruct forwards-merge by re-reducing clean
            # with (merged "minus" own.spec) — not expressible for general
            # labels, so instead we merged forwards separately below.
            raise ProtocolError(
                "speculatively-modified own U line reached _install_reduced; "
                "the caller must abort the requester first"
            )
        entry = CacheLine(line=line_no, state=as_state, label=label,
                          words=list(merged), dirty=True)
        cache.install(entry)
        ent.u_sharers.discard(core)
        if as_state is State.M:
            ent.owner = core
            if not ent.u_sharers:
                ent.u_label = None
        else:
            ent.u_sharers.add(core)
            ent.u_label = label
        ent.check()

    # ------------------------------------------------------------------
    # Gather requests (Sec. IV, Fig. 8)
    # ------------------------------------------------------------------

    def _gather(self, core: int, addr: int, label: Label,
                requester: Requester) -> AccessResult:
        """load_gather: redistribute partial updates without leaving U."""
        if not self.config.gather_enabled:
            # Ablation: gathers behave as plain labeled loads.
            return self._labeled_access(core, addr, label, requester,
                                        value=None, is_store=False)
        res = AccessResult()
        line_no = line_of(addr)
        cache = self.caches[core]
        entry = cache.lookup(line_no)

        if entry is None or entry.state is not State.U or entry.label is not label:
            # The paper issues gathers from U; acquire U first.
            inner = self._labeled_access(core, addr, label, requester,
                                         value=None, is_store=False)
            res.cycles += inner.cycles
            if inner.abort_requester:
                inner.cycles = res.cycles
                return inner
            entry = cache.lookup(line_no)
            if entry is None or entry.state is not State.U:
                # Landed in M/E: the core already sees the full value.
                res.value = inner.value
                return res

        ent = self._charge_dir_access(core, line_no, res)
        others = sorted(ent.u_sharers - {core})
        if not others:
            res.cycles += self._private_lookup_cycles(cache.touch(line_no))
            if requester.speculative:
                entry.spec_labeled = True
            res.value = entry.words[word_index(addr)]
            return res

        self.stats.gathers += 1
        self.stats.gathers_by_label[label.name] += 1
        if self.tracer is not None and requester.now is not None:
            from ..sim.trace import EventKind
            self.tracer.record(requester.now, core, EventKind.GATHER,
                               detail=label.name)
        cycles_before = res.cycles
        num_sharers = len(ent.u_sharers)
        nackers = self._resolve_victims(
            line_no,
            [v for v in others
             if (e := self.caches[v].lookup(line_no)) is not None
             and e.speculative],
            requester, Trigger.GATHER, res)
        self._charge_inval_fanout(line_no, others, res)
        # The directory's involvement ends here: it forwarded the gather to
        # the sharers (the line stays in U at everyone). Splits, donations
        # and merges flow core-to-core and do not occupy the home line.
        cycles_at_dir_release = res.cycles

        hctx = self.handler_context(core, res)
        donations: List[List[object]] = []
        # Splitters run concurrently on each sharer's shadow thread and the
        # donations are forwarded in parallel; the requester's serial work
        # is merging them (charged by _merge_nonspec).
        max_split_path = 0
        self._in_handler = True
        try:
            for sharer in others:
                if sharer in nackers:
                    continue
                ventry = self.caches[sharer].lookup(line_no)
                if ventry is None:
                    raise ProtocolError(
                        f"U sharer {sharer} lost line {line_no}"
                    )
                # The splitter runs on the *sharer's* shadow thread.
                sharer_ctx = self.handler_context(sharer, res)
                kept, donated = label.split(sharer_ctx, list(ventry.words),
                                            num_sharers)
                cost = self._handler_cost(label)
                self.stats.shadow_thread_cycles += cost
                self.stats.splits += 1
                # The split is non-speculative: it rewrites the sharer's
                # clean value. Aborted victims were already rolled back;
                # surviving sharers must not have speculative state here.
                if ventry.spec_modified:
                    raise ProtocolError(
                        f"split on speculatively-modified line at {sharer}"
                    )
                ventry.words = list(kept)
                ventry.dirty = True
                path = cost + self._forward_latency(sharer, core)
                max_split_path = max(max_split_path, path)
                if not label.is_identity_line(donated):
                    donations.append(donated)
        finally:
            self._in_handler = False
        res.cycles += max_split_path

        # Merge donations into the requester's line non-speculatively: they
        # must survive an abort of the requester's transaction.
        self._merge_nonspec(core, entry, label, donations, hctx, res)
        if self.obs is not None:
            self.obs.gather(core, line_no, label, sharers=len(others),
                            donations=len(donations), nacked=len(nackers),
                            latency=res.cycles - cycles_before,
                            ts=requester.now)

        if nackers:
            res.abort_requester = True
            res.abort_cause = WastedCause.GATHER_AFTER_LABELED
            res.overlap_cycles = res.cycles - cycles_at_dir_release
            return res

        res.cycles += self._private_lookup_cycles(cache.touch(line_no))
        if requester.speculative:
            entry.spec_labeled = True
        res.value = entry.words[word_index(addr)]
        res.overlap_cycles = res.cycles - cycles_at_dir_release
        return res

    def _fold_rows(self, label: Label, rows: List[List[object]],
                   hctx: HandlerContext, res: AccessResult) -> List[object]:
        """Fold collected word-wise partial lines, preferring the batched
        kernel; falls back to the sequential left fold (identical result by
        the kernel's contract) when it declines. Charges one handler cost
        per merge — exactly what the in-loop sequential path charges."""
        if len(rows) == 1:
            return rows[0]
        cost = self._handler_cost(label) * (len(rows) - 1)
        res.cycles += cost
        self.stats.shadow_thread_cycles += cost
        kernel = self.reduction_kernel
        out = kernel(label, rows) if kernel is not None else None
        if out is None:
            out = rows[0]
            self._in_handler = True
            try:
                for row in rows[1:]:
                    out = label.reduce(hctx, out, row)
            finally:
                self._in_handler = False
        return out

    def _merge_nonspec(self, core: int, entry: CacheLine, label: Label,
                       donations: List[List[object]], hctx: HandlerContext,
                       res: AccessResult) -> None:
        """Reduce forwarded partial lines into both the speculative and the
        non-speculative copy of ``entry`` (donated data is non-speculative
        and must survive a rollback)."""
        if not donations:
            return
        kernel = self.reduction_kernel
        if kernel is not None and label._reduce_word is not None:
            # Batched: fold all donations into the speculative copy (and
            # the clean snapshot, when present) in one kernel pass each.
            # Only taken when *every* fold the sequential loop would do is
            # kernel-exact; otherwise fall through unchanged.
            merged = kernel(label, [list(entry.words), *donations])
            clean = None
            if merged is not None and entry.clean_words is not None:
                clean = kernel(label, [list(entry.clean_words), *donations])
            if merged is not None and (entry.clean_words is None
                                       or clean is not None):
                cost = self._handler_cost(label) * len(donations)
                res.cycles += cost
                self.stats.shadow_thread_cycles += cost
                entry.words = merged
                if clean is not None:
                    entry.clean_words = clean
                entry.dirty = True
                return
        self._in_handler = True
        try:
            for donated in donations:
                cost = self._handler_cost(label)
                res.cycles += cost
                self.stats.shadow_thread_cycles += cost
                entry.words = label.reduce(hctx, list(entry.words), donated)
                if entry.clean_words is not None:
                    entry.clean_words = label.reduce(
                        hctx, list(entry.clean_words), donated
                    )
                entry.dirty = True
        finally:
            self._in_handler = False

    # ------------------------------------------------------------------
    # Evictions (Sec. III-B5)
    # ------------------------------------------------------------------

    def _on_private_eviction(self, core: int, victim: CacheLine) -> None:
        """A private cache evicted ``victim`` for capacity. Runs off the
        critical path (no cycles charged to the core)."""
        line_no = victim.line
        ent = self.directory.peek(line_no)
        if ent is None:
            # Inclusion guarantees an L3 entry for every private copy.
            raise ProtocolError(
                f"private eviction of line {line_no} absent from the L3"
            )
        if victim.state in (State.M, State.E):
            if ent.owner != core:
                raise ProtocolError(
                    f"evicting owner line {line_no} not owned by {core}"
                )
            ent.owner = None
            if victim.dirty:
                ent.words = victim.nonspec_words()
                ent.dirty = True
                self.stats.writebacks += 1
        elif victim.state is State.S:
            self.directory.drop_sharer(ent, core)  # no silent drops
        elif victim.state is State.U:
            self._evict_u_line(core, victim, ent)
        ent.check()

    def _evict_u_line(self, core: int, victim: CacheLine,
                      ent: DirEntry) -> None:
        """U-state eviction: sole sharer -> dirty writeback; otherwise the
        directory forwards the data to a random sharer, which reduces it
        locally (aborting that sharer's transaction if it touched the
        line)."""
        line_no = victim.line
        self.stats.u_evictions += 1
        self.directory.drop_sharer(ent, core)
        others = sorted(ent.u_sharers)
        if not others:
            ent.words = victim.nonspec_words()
            ent.dirty = True
            self.stats.writebacks += 1
            return
        label = ent.u_label
        target = others[self.rng.eviction().randrange(len(others))]
        tentry = self.caches[target].lookup(line_no)
        if tentry is None:
            raise ProtocolError(f"U sharer {target} lost line {line_no}")
        if tentry.speculative:
            # "If the chosen core is performing a transaction that touches
            # this data, for simplicity, the transaction is aborted."
            self.conflicts.resolve(target, line_no, SYSTEM,
                                   Trigger.EVICTION, tentry)
        dummy = AccessResult()
        hctx = self.handler_context(target, dummy)
        self._in_handler = True
        try:
            tentry.words = label.reduce(hctx, list(tentry.words),
                                        victim.nonspec_words())
        finally:
            self._in_handler = False
        tentry.dirty = True
        self.stats.forwards += 1
        self.stats.reduction_lines += 1

    def _on_l3_eviction(self, ent: DirEntry) -> None:
        """Inclusive L3 eviction: invalidate every private copy; U lines are
        reduced at one sharing core first. Aborts every transaction that
        accessed the line."""
        line_no = ent.line
        if ent.u_sharers:
            label = ent.u_label
            sharers = sorted(ent.u_sharers)
            home = sharers[0]
            merged: Optional[List[object]] = None
            for sharer in sharers:
                sentry = self.caches[sharer].lookup(line_no)
                if sentry is None:
                    raise ProtocolError(
                        f"U sharer {sharer} lost line {line_no}"
                    )
                if sentry.speculative:
                    self.conflicts.resolve(sharer, line_no, SYSTEM,
                                           Trigger.EVICTION, sentry)
                data = sentry.nonspec_words()
                if merged is None:
                    merged = data
                else:
                    dummy = AccessResult()
                    hctx = self.handler_context(home, dummy)
                    self._in_handler = True
                    try:
                        merged = label.reduce(hctx, merged, data)
                    finally:
                        self._in_handler = False
                self.caches[sharer].drop(line_no)
                self.directory.drop_sharer(ent, sharer)
            ent.words = merged
            ent.dirty = True
            self.stats.reductions += 1
            return
        if ent.owner is not None:
            owner = ent.owner
            oentry = self.caches[owner].lookup(line_no)
            if oentry is not None:
                if oentry.speculative:
                    self.conflicts.resolve(owner, line_no, SYSTEM,
                                           Trigger.EVICTION, oentry)
                if oentry.dirty:
                    ent.words = oentry.nonspec_words()
                    ent.dirty = True
                self.caches[owner].drop(line_no)
            ent.owner = None
        for sharer in list(ent.sharers):
            sentry = self.caches[sharer].lookup(line_no)
            if sentry is not None and sentry.speculative:
                self.conflicts.resolve(sharer, line_no, SYSTEM,
                                       Trigger.EVICTION, sentry)
            self.caches[sharer].drop(line_no)
            ent.sharers.discard(sharer)
        ent.check()

    # ------------------------------------------------------------------
    # Debug / test helpers
    # ------------------------------------------------------------------

    def peek_word(self, addr: int) -> object:
        """The globally-reduced (true) value at ``addr``, computed without
        protocol actions. For assertions and tests only."""
        line_no = line_of(addr)
        idx = word_index(addr)
        ent = self.directory.peek(line_no)
        if ent is None:
            return self.memory.read_word(addr)
        if ent.owner is not None:
            oentry = self.caches[ent.owner].lookup(line_no)
            if oentry is not None:
                return oentry.nonspec_words()[idx]
        if ent.u_sharers:
            label = ent.u_label
            merged = None
            dummy = HandlerContext(lambda a: 0, lambda a, v: None)
            for sharer in sorted(ent.u_sharers):
                sentry = self.caches[sharer].lookup(line_no)
                data = sentry.nonspec_words()
                merged = data if merged is None else label.reduce(
                    dummy, merged, data
                )
            return merged[idx]
        return ent.words[idx]

    def state_of(self, core: int, addr: int) -> State:
        entry = self.caches[core].lookup(line_of(addr))
        return entry.state if entry is not None else State.I

    # ------------------------------------------------------------------
    # Snapshot/restore (model-checker hooks)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        """Capture the complete coherence state — every private cache,
        the L3/directory, line occupancy, and memory.  Stats, hooks
        (sanitizer/tracer/obs/conflicts), and the label registry are
        deliberately excluded: they are run infrastructure, not protocol
        state, and the model checker compares snapshots for equality.

        The returned value is immutable from the caller's perspective and
        can be passed to :meth:`restore_state` any number of times."""
        return (tuple(cache.snapshot() for cache in self.caches),
                self.directory.snapshot(),
                tuple(sorted(self._line_busy.items())),
                self.memory.snapshot())

    def restore_state(self, snap) -> None:
        """Reset caches, directory, occupancy, and memory to a
        :meth:`snapshot_state` capture."""
        cache_snaps, dir_snap, busy, mem_snap = snap
        for cache, csnap in zip(self.caches, cache_snaps):
            cache.restore(csnap)
        self.directory.restore(dir_snap)
        self._line_busy.clear()
        self._line_busy.update(busy)
        self.memory.restore(mem_snap)
