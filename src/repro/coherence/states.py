"""Coherence states: MESI plus the user-defined reducible state U.

Fig. 3 of the paper shows the CommTM-MSI state machine; our implementation
extends MESI (as the paper's evaluation does, Sec. III-D):

* ``M`` — modified, exclusive, dirty; satisfies all requests.
* ``E`` — exclusive clean; silently upgrades to M on a store.
* ``S`` — shared read-only; satisfies conventional loads only.
* ``U`` — user-defined reducible, tagged with a label; satisfies labeled
  loads/stores with a matching label only. Multiple caches may hold U
  copies of the same line with the same label.
* ``I`` — invalid (absent lines are implicitly I).
"""

from __future__ import annotations

import enum


class State(enum.Enum):
    M = "M"
    E = "E"
    S = "S"
    U = "U"
    I = "I"  # noqa: E741 - standard MESI naming

    @property
    def can_read(self) -> bool:
        """Can this state satisfy a conventional load locally?"""
        return self.readable

    @property
    def can_write(self) -> bool:
        """Can this state satisfy a conventional store locally?
        (E upgrades silently, so it counts.)"""
        return self.writable

    @property
    def is_exclusive(self) -> bool:
        return self.writable

    def can_satisfy_labeled(self, line_label: object, req_label: object) -> bool:
        """Can a line in this state satisfy a labeled access with
        ``req_label``? M/E satisfy everything; U only matching labels."""
        if self.writable:
            return True
        if self is State.U:
            return line_label == req_label
        return False


# Per-member membership flags, precomputed once: the protocol's per-access
# handlers (and its private-hit fast path) read these as plain attribute
# loads instead of constructing membership tuples per call.
for _st in State:
    _st.readable = _st in (State.M, State.E, State.S)
    _st.writable = _st in (State.M, State.E)
del _st
