"""Private cache model (per-core L1 + L2).

Data lives in one unified structure sized to the (inclusive) private L2;
a separate LRU *L1 tracker* decides whether an access hits at L1 latency
and models the paper's rule that evicting speculatively-accessed data from
the L1 aborts the transaction. This keeps the protocol single-copy while
preserving both the latency split and the capacity-abort behaviour.

Capacity is modelled as a global LRU over lines (associativity conflicts are
negligible for the evaluated footprints; the geometry's total line count is
respected exactly).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional

from ..errors import ProtocolError
from ..params import CacheGeometry
from .line import CacheLine
from .states import State

_I = State.I  # hot-path alias (lookup runs once per memory operation)


class PrivateCache:
    """One core's private cache hierarchy."""

    __slots__ = ("core", "l1_geom", "l2_geom", "_lines", "_l1",
                 "_l1_capacity", "_l2_capacity", "peek_line",
                 "eviction_hook", "spec_eviction_hook")

    def __init__(self, core: int, l1_geom: CacheGeometry,
                 l2_geom: CacheGeometry):
        self.core = core
        self.l1_geom = l1_geom
        self.l2_geom = l2_geom
        # num_lines is a derived property; snapshot it so the per-access
        # capacity checks don't recompute the division.
        self._l1_capacity = l1_geom.num_lines
        self._l2_capacity = l2_geom.num_lines
        self._lines: "OrderedDict[int, CacheLine]" = OrderedDict()
        self._l1: "OrderedDict[int, None]" = OrderedDict()
        #: Bound raw accessor for the protocol's private-hit fast path:
        #: returns the entry or None *without* filtering state I (the fast
        #: path's own state checks exclude I) and without touching LRU.
        self.peek_line = self._lines.get
        #: Set by the memory system: called with the victim CacheLine when
        #: capacity forces an eviction.
        self.eviction_hook: Optional[Callable[[CacheLine], None]] = None
        #: Called with (core, reason) when evicting a speculatively-accessed
        #: line forces the current transaction to abort.
        self.spec_eviction_hook: Optional[Callable[[int, str], None]] = None

    # --- lookup -------------------------------------------------------------

    def lookup(self, line: int) -> Optional[CacheLine]:
        """Return the line if present (any state but I), else None.
        Does not touch LRU order."""
        entry = self._lines.get(line)
        if entry is not None and entry.state is _I:
            return None
        return entry

    def touch(self, line: int) -> bool:
        """Record an access for LRU purposes. Returns True if the access
        hits in the L1 (latency modelling)."""
        lines = self._lines
        if line in lines:
            lines.move_to_end(line)
        l1 = self._l1
        if line in l1:
            l1.move_to_end(line)
            return True
        # New keys are appended in MRU position; capacity can only be
        # exceeded on insertion, so the common hit path above skips the
        # capacity check entirely.
        l1[line] = None
        if 0 < self._l1_capacity < len(l1):
            self._enforce_l1_capacity()
        return False

    def _enforce_l1_capacity(self) -> None:
        capacity = self._l1_capacity
        if capacity <= 0:
            return
        while len(self._l1) > capacity:
            victim, _ = self._l1.popitem(last=False)
            entry = self._lines.get(victim)
            if entry is not None and entry.speculative:
                # Evicting speculatively-accessed data from the L1 aborts
                # the transaction (Sec. III-B1). Data itself stays in the
                # private L2 (our unified store).
                if self.spec_eviction_hook is not None:
                    self.spec_eviction_hook(self.core, "l1-capacity")

    # --- installation & eviction ---------------------------------------------

    def install(self, entry: CacheLine) -> None:
        """Insert or replace a line, evicting LRU victims if over capacity."""
        self._lines[entry.line] = entry
        self._lines.move_to_end(entry.line)
        self.touch(entry.line)
        self._enforce_l2_capacity()

    def _enforce_l2_capacity(self) -> None:
        capacity = self._l2_capacity
        if capacity <= 0:
            return
        while len(self._lines) > capacity:
            victim_no = next(iter(self._lines))
            victim = self._lines[victim_no]
            if victim.speculative and self.spec_eviction_hook is not None:
                self.spec_eviction_hook(self.core, "l2-capacity")
                # The abort's rollback cleared spec bits; fall through.
            self.drop(victim_no)
            if self.eviction_hook is not None and victim.state is not State.I:
                self.eviction_hook(victim)

    def drop(self, line: int) -> None:
        """Remove a line without protocol actions (invalidation)."""
        self._lines.pop(line, None)
        self._l1.pop(line, None)

    # --- speculative set management -------------------------------------------

    def spec_lines(self) -> List[CacheLine]:
        return [e for e in self._lines.values() if e.speculative]

    def rollback_all(self) -> None:
        """Abort path: restore non-speculative values everywhere."""
        for entry in list(self._lines.values()):
            if entry.speculative:
                entry.rollback()

    def commit_all(self) -> None:
        """Commit path: mark all speculative lines non-speculative."""
        for entry in self._lines.values():
            if entry.speculative:
                entry.commit()

    # --- snapshot/restore (model-checker hooks) ----------------------------

    def snapshot(self):
        """Capture lines (cloned, LRU order preserved) and the L1 tracker."""
        return (tuple((no, cl.clone()) for no, cl in self._lines.items()),
                tuple(self._l1))

    def restore(self, snap) -> None:
        """Reset to a :meth:`snapshot` capture.  Lines are re-cloned so
        the same snapshot can be restored from repeatedly."""
        lines, l1 = snap
        self._lines.clear()
        for no, cl in lines:
            self._lines[no] = cl.clone()
        self._l1.clear()
        for no in l1:
            self._l1[no] = None

    # --- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._lines)

    def states(self) -> dict:
        return {no: e.state for no, e in self._lines.items()}

    def assert_invariants(self) -> None:
        for no, entry in self._lines.items():
            if entry.line != no:
                raise ProtocolError(f"line number mismatch at {no}")
            if entry.state is State.U and entry.label is None:
                raise ProtocolError(f"unlabeled U line {no}")
