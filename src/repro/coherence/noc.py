"""On-chip network timing model.

Table I: 4x4 mesh, 2-cycle routers, 1-cycle 256-bit links. We model
latency as hops * (router + link) with one extra router at the destination,
which is the standard first-order model for wormhole meshes. The extra
virtual network CommTM dedicates to forwarded U-state data (Sec. III-B4)
avoids protocol deadlock; in our atomic-operation simulation deadlock cannot
arise, so the virtual network's only observable effect is that forwards are
counted as traffic, which we do in the stats.
"""

from __future__ import annotations

from ..params import NocConfig


class Mesh:
    """2-D mesh distance/latency between tiles."""

    def __init__(self, config: NocConfig):
        self.config = config

    def coords(self, tile: int):
        return tile % self.config.mesh_width, tile // self.config.mesh_width

    def hops(self, src_tile: int, dst_tile: int) -> int:
        """Manhattan hop count between two tiles."""
        sx, sy = self.coords(src_tile)
        dx, dy = self.coords(dst_tile)
        return abs(sx - dx) + abs(sy - dy)

    def latency(self, src_tile: int, dst_tile: int) -> int:
        """One-way message latency in cycles."""
        h = self.hops(src_tile, dst_tile)
        c = self.config
        # h links + (h+1) routers, including injection/ejection.
        return h * c.link_cycles + (h + 1) * c.router_cycles

    def round_trip(self, src_tile: int, dst_tile: int) -> int:
        return 2 * self.latency(src_tile, dst_tile)

    def max_latency_from(self, src_tile: int, dst_tiles) -> int:
        """Latency of a broadcast that completes when the farthest
        destination answers (invalidation fan-out)."""
        worst = 0
        for dst in dst_tiles:
            worst = max(worst, self.latency(src_tile, dst))
        return worst
