"""Request descriptors and access results exchanged between the runtime,
the HTM layer, and the memory system."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional


class AccessKind(enum.Enum):
    """The protocol-level operation a core issues."""

    LOAD = "load"
    STORE = "store"
    LABELED_LOAD = "labeled_load"
    LABELED_STORE = "labeled_store"
    GATHER = "gather"

    @property
    def is_labeled(self) -> bool:
        return self in (AccessKind.LABELED_LOAD, AccessKind.LABELED_STORE,
                        AccessKind.GATHER)

    @property
    def is_write(self) -> bool:
        return self in (AccessKind.STORE, AccessKind.LABELED_STORE)


class Requester:
    """Identity of a memory request's issuer.

    ``ts`` is the issuing transaction's timestamp, or ``None`` for
    non-speculative requests — which, per Sec. III-B4, carry no timestamp
    and cannot be NACKed (they always win conflicts).

    ``now`` is the issuer's local cycle count at issue, used to model
    queueing at the line's home directory bank (contended lines serialize
    their directory transactions). ``None`` (verification/flush accesses)
    skips occupancy modelling.

    A plain slotted class rather than a (frozen) dataclass: one is built
    per memory operation, and the dataclass ``object.__setattr__`` path
    shows up in profiles. Treat instances as immutable.
    """

    __slots__ = ("core", "ts", "now")

    def __init__(self, core: int, ts: Optional[int] = None,
                 now: Optional[int] = None):
        self.core = core
        self.ts = ts
        self.now = now

    @property
    def speculative(self) -> bool:
        return self.ts is not None

    def __repr__(self) -> str:
        return f"Requester(core={self.core}, ts={self.ts}, now={self.now})"


#: Sentinel requester for actions initiated by the memory system itself
#: (evictions, handler accesses). Non-speculative, wins all conflicts.
SYSTEM = Requester(core=-1, ts=None)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one memory operation.

    ``value`` is meaningful for loads/gathers. ``cycles`` is the operation's
    total latency, charged to the issuing core. ``abort_requester`` is set
    when the issuing transaction must abort (it was NACKed, or it performed
    an unlabeled access to its own speculatively-modified labeled data);
    ``abort_cause`` carries the Fig. 18 attribution.
    """

    value: object = None
    cycles: int = 0
    abort_requester: bool = False
    abort_cause: Optional[object] = None  # sim.stats.WastedCause
    #: Victim cores whose transactions were aborted by this access
    #: (already rolled back by the conflict manager; informational).
    aborted_victims: List[int] = field(default_factory=list)
    #: Line whose home directory this access transacted with (None for
    #: pure private-cache hits); drives occupancy/queueing modelling.
    dir_line: Optional[int] = None
    #: Portion of ``cycles`` that does NOT occupy the home directory (e.g.
    #: gather donations and merges, which flow core-to-core after the
    #: directory has forwarded the request; the line stays in U meanwhile).
    overlap_cycles: int = 0
