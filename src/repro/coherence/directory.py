"""Shared L3 with in-cache, full-map directory.

The L3 is inclusive: every line cached privately has an L3 entry whose
directory state tracks the private copies. For a line with U-state sharers
the L3 data may be stale — the protocol invariant (Sec. III-B3) is that
reducing the private U copies yields the true value; the L3 copy only
becomes current again after a reduction or the last sharer's writeback.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set

from ..errors import ProtocolError
from ..mem.memory import MainMemory
from .states import State


@dataclass(slots=True)
class DirEntry:
    """Directory state for one line."""

    line: int
    words: List[object] = field(default_factory=list)
    owner: Optional[int] = None          # core with M/E, or None
    sharers: Set[int] = field(default_factory=set)   # cores with S
    u_sharers: Set[int] = field(default_factory=set)  # cores with U
    u_label: Optional[object] = None     # Label of the U sharers
    dirty: bool = False                  # L3 words differ from memory

    def check(self) -> None:
        populated = sum(
            1 for flag in (self.owner is not None, bool(self.sharers),
                           bool(self.u_sharers)) if flag
        )
        if populated > 1:
            raise ProtocolError(
                f"line {self.line}: incompatible sharer sets "
                f"(owner={self.owner}, S={self.sharers}, U={self.u_sharers})"
            )
        if self.u_sharers and self.u_label is None:
            raise ProtocolError(f"line {self.line}: U sharers without label")
        if not self.u_sharers:
            # Label is meaningless with no U sharers.
            self.u_label = None

    def clone(self) -> "DirEntry":
        """Copy for snapshot/restore; the label is shared by reference."""
        return DirEntry(line=self.line, words=list(self.words),
                        owner=self.owner, sharers=set(self.sharers),
                        u_sharers=set(self.u_sharers),
                        u_label=self.u_label, dirty=self.dirty)

    @property
    def unshared(self) -> bool:
        return self.owner is None and not self.sharers and not self.u_sharers

    def private_state_of(self, core: int) -> State:
        if core == self.owner:
            return State.M  # directory view: exclusive (E or M at the core)
        if core in self.sharers:
            return State.S
        if core in self.u_sharers:
            return State.U
        return State.I


class Directory:
    """The shared L3 cache + full-map directory."""

    def __init__(self, memory: MainMemory, num_lines: int, stats=None):
        self.memory = memory
        self.num_lines = num_lines  # 0 disables capacity modelling
        self.stats = stats
        self._entries: "OrderedDict[int, DirEntry]" = OrderedDict()
        #: Set by the memory system: called with the victim DirEntry when L3
        #: capacity forces an eviction (must invalidate private copies).
        self.eviction_hook: Optional[Callable[[DirEntry], None]] = None

    def entry(self, line: int) -> DirEntry:
        """Return the entry for ``line``, filling from memory on L3 miss.
        Records the miss in stats."""
        ent = self._entries.get(line)
        if ent is not None:
            self._entries.move_to_end(line)
            return ent
        if self.stats is not None:
            self.stats.l3_misses += 1
        ent = DirEntry(line=line, words=self.memory.read_line(line))
        self._entries[line] = ent
        self._enforce_capacity()
        return ent

    def peek(self, line: int) -> Optional[DirEntry]:
        """Entry if cached in L3, without allocation or LRU update."""
        return self._entries.get(line)

    def was_miss(self, line: int) -> bool:
        """Would accessing ``line`` miss in the L3 right now?"""
        return line not in self._entries

    def _enforce_capacity(self) -> None:
        if self.num_lines <= 0:
            return
        while len(self._entries) > self.num_lines:
            victim_no = next(iter(self._entries))
            victim = self._entries[victim_no]
            if self.eviction_hook is not None:
                # The hook invalidates/reduces private copies and writes the
                # final data into victim.words.
                self.eviction_hook(victim)
            if not victim.unshared:
                raise ProtocolError(
                    f"L3 evicting line {victim_no} with live private copies"
                )
            self._entries.pop(victim_no, None)
            if victim.dirty:
                self.memory.write_line(victim_no, victim.words)
                if self.stats is not None:
                    self.stats.writebacks += 1

    def drop_sharer(self, ent: DirEntry, core: int) -> None:
        """Remove ``core`` from every sharer set of ``ent``."""
        if ent.owner == core:
            ent.owner = None
        ent.sharers.discard(core)
        ent.u_sharers.discard(core)
        ent.check()

    def cached_lines(self) -> int:
        return len(self._entries)

    # --- snapshot/restore (model-checker hooks) ----------------------------

    def snapshot(self):
        """Immutable-enough capture of the L3 + directory state.  Entry
        order is preserved so a restored directory makes the same LRU
        eviction decisions."""
        return tuple((no, ent.clone()) for no, ent in self._entries.items())

    def restore(self, snap) -> None:
        """Reset to a state captured by :meth:`snapshot`.  The snapshot
        is not consumed — entries are re-cloned so it can be restored
        from any number of times."""
        self._entries.clear()
        for no, ent in snap:
            self._entries[no] = ent.clone()
