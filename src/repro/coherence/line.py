"""Per-line private-cache metadata.

Value management follows Fig. 5: the current (possibly speculative) words
model the L1 copy; ``clean_words`` models the non-speculative L2 copy that
rollback restores. Speculation status bits record whether the current
transaction read, wrote, or labeled-accessed the line — together these form
the transaction's read, write, and labeled sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ProtocolError
from .states import State


@dataclass(slots=True)
class CacheLine:
    """One line in a private cache."""

    line: int                      # line number
    state: State = State.I
    label: Optional[object] = None  # Label instance when state is U
    words: List[object] = field(default_factory=list)
    #: Non-speculative copy (the L2 value). ``None`` means the current
    #: words are non-speculative.
    clean_words: Optional[List[object]] = None
    dirty: bool = False            # differs from the L3 copy
    spec_read: bool = False
    spec_written: bool = False
    spec_labeled: bool = False

    def __post_init__(self) -> None:
        if self.state is State.U and self.label is None:
            raise ProtocolError(f"U-state line {self.line} without a label")

    # --- speculation -------------------------------------------------------

    @property
    def speculative(self) -> bool:
        return self.spec_read or self.spec_written or self.spec_labeled

    @property
    def spec_modified(self) -> bool:
        """Was the line's data speculatively changed (vs merely read)?"""
        return self.clean_words is not None

    def snapshot_before_write(self) -> None:
        """Save the non-speculative value before the first speculative
        write by the current transaction (lazy versioning: forward the old
        value to the L2)."""
        if self.clean_words is None:
            self.clean_words = list(self.words)

    def rollback(self) -> None:
        """Discard speculative updates and status bits (abort)."""
        if self.clean_words is not None:
            self.words = self.clean_words
            self.clean_words = None
        self.clear_spec_bits()

    def commit(self) -> None:
        """Make speculative updates non-speculative (commit)."""
        self.clean_words = None
        self.clear_spec_bits()

    def clear_spec_bits(self) -> None:
        self.spec_read = False
        self.spec_written = False
        self.spec_labeled = False

    def nonspec_words(self) -> List[object]:
        """The line's non-speculative value (what rollback would leave)."""
        if self.clean_words is not None:
            return list(self.clean_words)
        return list(self.words)

    def clone(self) -> "CacheLine":
        """Deep-enough copy for snapshot/restore: word lists are copied,
        the label is shared by reference (labels are immutable and the
        invariant sweep compares them by identity)."""
        return CacheLine(
            line=self.line, state=self.state, label=self.label,
            words=list(self.words),
            clean_words=None if self.clean_words is None
            else list(self.clean_words),
            dirty=self.dirty, spec_read=self.spec_read,
            spec_written=self.spec_written, spec_labeled=self.spec_labeled)
