"""Coherence substrate: MESI + the CommTM user-defined reducible (U) state.

The package implements the protocol of Sec. III-B: private caches with
speculative (L1) and non-speculative (L2) copies, a full-map in-cache
directory in the shared L3, the mesh NoC timing model, and the request
handling for GETS/GETX/GETU including reductions and gather requests.
"""

from .states import State
from .noc import Mesh
from .messages import Requester, AccessResult
from .cache import PrivateCache
from .directory import Directory
from .protocol import MemorySystem

__all__ = [
    "State",
    "Mesh",
    "Requester",
    "AccessResult",
    "PrivateCache",
    "Directory",
    "MemorySystem",
]
