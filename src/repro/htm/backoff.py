"""Randomized exponential backoff for aborted transactions.

The baseline HTM resolves conflicts by timestamp (older wins), and aborted
transactions "use randomized backoff to avoid livelock" (Sec. III-B1).
"""

from __future__ import annotations

import random


def backoff_cycles(rng: random.Random, attempts: int, base: int,
                   maximum: int) -> int:
    """Cycles to stall before retrying after the ``attempts``-th attempt
    aborted. Uniform over an exponentially-growing, capped window."""
    if base <= 0:
        return 0
    exponent = min(max(attempts - 1, 0), 20)
    window = min(base << exponent, maximum)
    return rng.randrange(window) + 1
