"""Eager-lazy HTM baseline (Sec. III-B1) plus CommTM conflict extensions.

Eager conflict detection through the coherence protocol, lazy (buffer-based)
version management in the private caches, timestamp-based conflict
resolution with NACKs, and randomized backoff — the LTM/TSX-style design
the paper builds CommTM on.
"""

from .transaction import Transaction
from .conflict import ConflictManager
from .htm import HtmRuntime
from .backoff import backoff_cycles

__all__ = ["Transaction", "ConflictManager", "HtmRuntime", "backoff_cycles"]
