"""Conflict detection and resolution (Sec. III-B3, Figs. 6 and 18).

The coherence protocol notifies this manager whenever a request hits a line
that some other core's transaction has speculatively read, written, or
labeled-accessed. The manager applies the configured resolution policy:

* ``timestamp`` (paper default): the earlier transaction wins. If the
  requester is older (or non-speculative — those carry no timestamp and
  cannot be NACKed), the victim aborts; otherwise the victim NACKs and the
  requester will abort.
* ``requester_wins``: the victim always aborts (an ablation; exhibits the
  classic friendly-fire pathologies the paper's baseline avoids).

Aborting a victim rolls its private cache back synchronously, so the
triggering request observes only non-speculative data. Wasted cycles are
attributed to a Fig. 18 category at abort time.
"""

from __future__ import annotations

from typing import List, Optional

from ..coherence.line import CacheLine
from ..coherence.messages import Requester
from ..coherence.protocol import ConflictManagerBase, Resolution, Trigger
from ..errors import ProtocolError
from ..sim.stats import Stats, WastedCause
from .transaction import Transaction


def victim_cause(trigger: Trigger, entry: CacheLine) -> WastedCause:
    """Fig. 18 attribution for a victim aborted by ``trigger``.

    The dominant baseline category is "Read after Write": the victim read
    (or labeled-updated) data that an incoming write-like request now
    invalidates. A downgrade by a reader that hits the victim's write set is
    "Write after Read"; split requests to speculatively-accessed lines are
    "Gather after Labeled access"; evictions and everything else are
    "Others".
    """
    if trigger is Trigger.GATHER:
        return WastedCause.GATHER_AFTER_LABELED
    if trigger is Trigger.EVICTION:
        return WastedCause.OTHER
    if trigger in (Trigger.WRITE, Trigger.LABELED, Trigger.REDUCTION_WRITE):
        return WastedCause.READ_AFTER_WRITE
    if trigger in (Trigger.READ, Trigger.REDUCTION_READ):
        if entry.spec_written or entry.spec_labeled:
            return WastedCause.WRITE_AFTER_READ
        return WastedCause.OTHER
    return WastedCause.OTHER


class ConflictManager(ConflictManagerBase):
    """Timestamp-based conflict resolution bound to a machine's HTM state."""

    def __init__(self, caches, stats: Stats, policy: str = "timestamp"):
        self.caches = caches
        self.stats = stats
        self.policy = policy
        self.active: List[Optional[Transaction]] = [None] * len(caches)
        #: Optional Observer (set by the Machine facade; see repro.obs).
        self.obs = None

    # --- transaction registry (maintained by HtmRuntime) -------------------

    def set_active(self, core: int, tx: Optional[Transaction]) -> None:
        self.active[core] = tx

    def active_tx(self, core: int) -> Optional[Transaction]:
        return self.active[core]

    # --- ConflictManagerBase -------------------------------------------------

    def resolve(self, victim_core: int, line_no: int, requester: Requester,
                trigger: Trigger, victim_entry: CacheLine) -> Resolution:
        tx = self.active[victim_core]
        if tx is None:
            raise ProtocolError(
                f"core {victim_core} has speculative line {line_no} but no "
                f"active transaction"
            )
        must_abort = (
            requester.ts is None
            or self.policy == "requester_wins"
            or requester.ts < tx.ts
        )
        if must_abort:
            cause = victim_cause(trigger, victim_entry)
            if self.obs is not None:
                # Stage the attacker/line/label before the rollback below
                # wipes the victim's speculative state.
                self.obs.conflict(victim_core, line_no, requester, trigger,
                                  victim_entry, cause)
            self.abort(victim_core, cause)
            return Resolution.ABORT_VICTIM
        return Resolution.NACK

    def abort_requester(self, core: int, cause: WastedCause,
                        disable_labels: bool = False) -> None:
        tx = self.active[core]
        if tx is None:
            raise ProtocolError(f"abort_requester on core {core} with no tx")
        if disable_labels:
            tx.labels_disabled = True
        self.abort(core, cause)

    # --- abort machinery ------------------------------------------------------

    def abort(self, core: int, cause: WastedCause) -> None:
        """Roll back ``core``'s transaction and account the wasted work.
        Idempotent within one attempt."""
        tx = self.active[core]
        if tx is None:
            raise ProtocolError(f"abort on core {core} with no tx")
        if tx.aborted:
            return
        if self.obs is not None:
            # Speculative set sizes must be read before rollback clears them.
            self.obs.tx_rollback(core, tx, cause)
        self.caches[core].rollback_all()
        self.stats.reclassify_aborted(core, tx.cycles_this_attempt, cause)
        self.stats.aborts += 1
        tx.mark_aborted(cause)
