"""Transaction state.

Each transaction carries a unique timestamp used for conflict resolution
(Sec. III-B3): on a conflict the earlier (lower-timestamp) transaction wins.
A transaction keeps its timestamp across retries, which guarantees it
eventually becomes the oldest in the system and commits — the livelock-
freedom argument of LogTM-style conflict resolution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set

from ..sim.stats import WastedCause


@dataclass(slots=True)
class Transaction:
    core: int
    ts: int
    attempts: int = 1
    aborted: bool = False
    abort_cause: Optional[WastedCause] = None
    #: Lines written through lazy_store (lazy conflict detection only);
    #: published at commit. Allocated on first write — eager-mode
    #: transactions (the common case) never pay for the set.
    lazy_written: Optional[Set[int]] = None
    #: Set when an unlabeled access hit the transaction's own speculatively-
    #: modified U-state data: on restart, labeled accesses execute as
    #: conventional ones (Sec. III-B4).
    labels_disabled: bool = False
    #: Cycles charged to the core during the current attempt; reclassified
    #: as wasted on abort (Fig. 17/18 accounting).
    cycles_this_attempt: int = 0

    def mark_aborted(self, cause: WastedCause) -> None:
        self.aborted = True
        self.abort_cause = cause

    def reset_for_retry(self) -> None:
        self.attempts += 1
        self.aborted = False
        self.abort_cause = None
        self.cycles_this_attempt = 0
        if self.lazy_written:
            self.lazy_written.clear()
