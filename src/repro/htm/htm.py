"""HTM runtime: transaction begin/commit/abort bookkeeping.

The engine drives this; the coherence layer talks to the paired
:class:`~repro.htm.conflict.ConflictManager`. Timestamps are allocated from
a global counter at a transaction's *first* begin and kept across retries,
so older transactions eventually win every conflict (livelock freedom).
"""

from __future__ import annotations

from typing import Optional

from ..errors import TransactionError
from ..sim.stats import Stats
from .conflict import ConflictManager
from .transaction import Transaction


class HtmRuntime:
    def __init__(self, num_cores: int, conflicts: ConflictManager,
                 caches, stats: Stats):
        self.num_cores = num_cores
        self.conflicts = conflicts
        self.caches = caches
        self.stats = stats
        self._next_ts = 0
        # Direct alias of the conflict manager's active-transaction slots:
        # begin/commit sit on the engine's per-transaction hot path, and
        # the registry is a plain list either way.
        self._active = conflicts.active

    def active(self, core: int) -> Optional[Transaction]:
        return self._active[core]

    def begin(self, core: int, ts: Optional[int] = None) -> Transaction:
        """Start a fresh transaction on ``core``.

        ``ts`` overrides the allocated timestamp — used by ordered
        speculation (``repro.runtime.ordered``), where program order *is*
        the conflict priority. Explicit timestamps must be negative so they
        never collide with (and always win against) allocated ones.
        """
        if self._active[core] is not None:
            raise TransactionError(
                f"core {core} already has an active transaction"
            )
        if ts is None:
            ts = self._next_ts
            self._next_ts += 1
        elif ts >= 0:
            raise TransactionError("explicit timestamps must be negative")
        tx = Transaction(core=core, ts=ts)
        self._active[core] = tx
        return tx

    def begin_retry(self, core: int, tx: Transaction) -> Transaction:
        """Restart an aborted transaction, keeping its timestamp."""
        if not tx.aborted:
            raise TransactionError(f"retrying a live transaction on {core}")
        tx.reset_for_retry()
        self.conflicts.set_active(core, tx)
        return tx

    def commit(self, core: int) -> None:
        tx = self._active[core]
        if tx is None:
            raise TransactionError(f"commit on core {core} with no tx")
        if tx.aborted:
            raise TransactionError(
                f"commit of an aborted transaction on core {core}"
            )
        self.caches[core].commit_all()
        self.stats.commits += 1
        self._active[core] = None

    def finish_abort(self, core: int) -> Transaction:
        """Acknowledge an abort: detach the transaction (already rolled back
        by the conflict manager) so the engine can back off and retry."""
        tx = self.conflicts.active_tx(core)
        if tx is None or not tx.aborted:
            raise TransactionError(f"finish_abort with no aborted tx on {core}")
        self.conflicts.set_active(core, None)
        return tx
