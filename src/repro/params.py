"""System configuration (the paper's Table I).

The defaults reproduce the simulated 16-tile, 128-core chip of Sec. V:

========== ==========================================================
Cores      128 cores, x86-64, 2.4 GHz, IPC-1 except on L1 misses
L1 caches  32 KB private, 8-way, split D/I (we model the D side)
L2 caches  128 KB private, 8-way, inclusive, 6-cycle latency
L3 cache   64 MB shared, 16 banks x 4 MB, 16-way, inclusive,
           15-cycle bank latency, in-cache directory
Coherence  MESI / CommTM, 64 B lines, no silent drops
NoC        4x4 mesh, 2-cycle routers, 1-cycle 256-bit links
Main mem   4 controllers, 136-cycle latency
========== ==========================================================

All knobs are plain dataclass fields so experiments can sweep them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from .errors import ConfigError

#: Bytes per cache line (fixed by the paper; changing it is supported but
#: every benchmark assumes 64-byte lines / 8 words).
LINE_BYTES = 64

#: Bytes per word. The paper's examples use 8-byte (64-bit) values.
WORD_BYTES = 8

#: Words per cache line.
WORDS_PER_LINE = LINE_BYTES // WORD_BYTES


@dataclass
class CacheGeometry:
    """Size/associativity of one cache level.

    ``size_bytes`` of 0 disables capacity modelling for that level (infinite
    cache); the default geometries are finite, per Table I.
    """

    size_bytes: int
    ways: int
    latency: int  # access latency in cycles

    @property
    def num_lines(self) -> int:
        return self.size_bytes // LINE_BYTES

    @property
    def num_sets(self) -> int:
        if self.size_bytes == 0:
            return 0
        return max(1, self.num_lines // self.ways)

    def validate(self) -> None:
        if self.size_bytes < 0 or self.ways <= 0 or self.latency < 0:
            raise ConfigError(f"invalid cache geometry: {self}")
        if self.size_bytes and self.num_lines < self.ways:
            raise ConfigError(f"cache smaller than one set: {self}")


@dataclass
class NocConfig:
    """4x4 mesh with 2-cycle routers and 1-cycle links (Table I)."""

    mesh_width: int = 4
    mesh_height: int = 4
    router_cycles: int = 2
    link_cycles: int = 1

    @property
    def num_tiles(self) -> int:
        return self.mesh_width * self.mesh_height

    def validate(self) -> None:
        if self.mesh_width <= 0 or self.mesh_height <= 0:
            raise ConfigError(f"invalid mesh: {self}")


@dataclass
class SystemConfig:
    """Full simulated-system configuration (Table I defaults)."""

    num_cores: int = 128
    freq_ghz: float = 2.4

    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=32 * 1024, ways=8, latency=1)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=128 * 1024, ways=8, latency=6)
    )
    l3: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=64 * 1024 * 1024, ways=16, latency=15
        )
    )
    l3_banks: int = 16

    noc: NocConfig = field(default_factory=NocConfig)
    mem_latency: int = 136
    mem_controllers: int = 4

    #: Number of hardware labels CommTM supports (Sec. III-A suggests 8).
    num_labels: int = 8

    #: When False, labeled operations execute as conventional loads/stores
    #: and gathers as conventional loads: this *is* the baseline eager-lazy
    #: HTM the paper compares against (same workload code, no U state).
    commtm_enabled: bool = True

    #: When False, ``load_gather`` behaves as a plain labeled load (no
    #: redistribution) — the "CommTM w/o gather" configuration of Fig. 10.
    gather_enabled: bool = True

    #: HTM begin/commit fixed overheads (cycles), in the ballpark of
    #: TSX-style implementations.
    tx_begin_cycles: int = 8
    tx_commit_cycles: int = 12

    #: Cycles charged per word merged by a reduction handler, on top of the
    #: handler's own simulated memory accesses (models the shadow thread's
    #: arithmetic).
    reduction_cycles_per_word: int = 2

    #: Entries in the per-core buffer of lines waiting to be reduced.
    reduction_buffer_entries: int = 2

    #: Conflict resolution policy: "timestamp" (paper default: older wins,
    #: younger aborts / requester NACKed) or "requester_wins".
    conflict_policy: str = "timestamp"

    #: Conflict detection for conventional accesses: "eager" (the paper's
    #: baseline: conflicts detected through coherence as they happen) or
    #: "lazy" (Sec. III-D generalization, TCC/Bulk-style: speculative
    #: stores buffer in S state without coherence actions; commit publishes
    #: the write set and aborts conflicting transactions). Labeled (U-state)
    #: operations behave identically in both modes — commutative updates
    #: never conflict either way.
    conflict_detection: str = "eager"

    #: Randomized-backoff parameters (cycles). Aborted transactions wait
    #: uniform(0, min(base << aborts, max)) before retrying.
    backoff_base: int = 32
    backoff_max: int = 8192

    #: Engine guard: abort the simulation if a single transaction restarts
    #: more than this many times (livelock would otherwise hang the host).
    max_restarts: int = 100_000

    #: RNG seed for the run (backoff jitter, initial clock skew, workloads
    #: draw from derived streams).
    seed: int = 1

    #: Record per-core transaction/reduction/gather events for timeline
    #: rendering (``repro.sim.trace``). Off by default (memory cost).
    #: The structured observability layer (``repro.obs``: Perfetto traces,
    #: lifecycle records, hot-line metrics) is deliberately NOT a config
    #: field — it cannot change simulated results, so enabling it must not
    #: perturb the result cache's config fingerprints. Enable it with
    #: ``Machine(..., observe=True)`` or ``REPRO_OBS=1`` instead.
    trace_enabled: bool = False

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("num_cores must be positive")
        if self.num_labels <= 0:
            raise ConfigError("num_labels must be positive")
        if self.conflict_policy not in ("timestamp", "requester_wins"):
            raise ConfigError(f"unknown conflict policy {self.conflict_policy!r}")
        if self.conflict_detection not in ("eager", "lazy"):
            raise ConfigError(
                f"unknown conflict detection {self.conflict_detection!r}"
            )
        for geom in (self.l1, self.l2, self.l3):
            geom.validate()
        self.noc.validate()
        if self.num_cores % self.noc.num_tiles != 0:
            raise ConfigError(
                f"num_cores ({self.num_cores}) must be a multiple of the tile "
                f"count ({self.noc.num_tiles})"
            )

    @property
    def cores_per_tile(self) -> int:
        return self.num_cores // self.noc.num_tiles

    def tile_of_core(self, core_id: int) -> int:
        if not 0 <= core_id < self.num_cores:
            raise ConfigError(f"core id {core_id} out of range")
        return core_id // self.cores_per_tile

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given fields replaced (validated)."""
        return dataclasses.replace(self, **kwargs)

    def describe(self) -> str:
        """Render the configuration as a Table I-style block."""
        rows = [
            ("Cores", f"{self.num_cores} cores, IPC-1 except on L1 misses, "
                      f"{self.freq_ghz} GHz"),
            ("L1 caches", f"{self.l1.size_bytes // 1024} KB private, "
                          f"{self.l1.ways}-way, {self.l1.latency}-cycle"),
            ("L2 caches", f"{self.l2.size_bytes // 1024} KB private, "
                          f"{self.l2.ways}-way, inclusive, "
                          f"{self.l2.latency}-cycle"),
            ("L3 cache", f"{self.l3.size_bytes // (1024 * 1024)} MB shared, "
                         f"{self.l3_banks} banks, {self.l3.ways}-way, "
                         f"inclusive, {self.l3.latency}-cycle bank latency, "
                         f"in-cache directory"),
            ("Coherence", f"MESI/CommTM, {LINE_BYTES} B lines, "
                          f"{self.num_labels} labels, no silent drops"),
            ("NoC", f"{self.noc.mesh_width}x{self.noc.mesh_height} mesh, "
                    f"{self.noc.router_cycles}-cycle routers, "
                    f"{self.noc.link_cycles}-cycle links"),
            ("Main mem", f"{self.mem_controllers} controllers, "
                         f"{self.mem_latency}-cycle latency"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {desc}" for name, desc in rows)


def small_config(num_cores: int = 8, seed: int = 1, **kwargs) -> SystemConfig:
    """A scaled-down configuration for tests: 2x2 mesh, small caches.

    Keeps Table I latencies so timing behaviour matches the full system.
    """
    defaults = dict(
        num_cores=num_cores,
        noc=NocConfig(mesh_width=2, mesh_height=2),
        l3_banks=4,
        seed=seed,
    )
    defaults.update(kwargs)
    return SystemConfig(**defaults)
