"""Commutative MIN/MAX cells (Table II: boruvka's component union uses
64-bit MIN, edge marking uses 64-bit MAX)."""

from __future__ import annotations

from ..core.labels import Label, max_label, min_label


class SharedMin:
    """Keeps the minimum of all values written to it."""

    def __init__(self, machine, label: Label = None):
        if label is None:
            if "MIN" in machine.labels:
                label = machine.labels.get("MIN")
            else:
                label = machine.register_label(min_label())
        self.label = label
        self.addr = machine.alloc.alloc_line()
        machine.seed_word(self.addr, None)

    def update(self, ctx, value):
        current = yield ctx.labeled_load(self.addr, self.label)
        if current is None or value < current:
            yield ctx.labeled_store(self.addr, self.label, value)
            return True
        return False

    def read(self, ctx):
        value = yield ctx.load(self.addr)
        return value


def law_suites():
    """Contract suites: MIN and MAX over ints mixed with the None identity."""
    from .contracts import LawSuite, wordwise_gen

    def gen_word(rng):
        return None if rng.random() < 0.25 else rng.randint(-100, 100)

    return [
        LawSuite(name="minmax/MIN", make_label=min_label,
                 gen=wordwise_gen(gen_word)),
        LawSuite(name="minmax/MAX", make_label=max_label,
                 gen=wordwise_gen(gen_word)),
    ]


class SharedMax:
    """Keeps the maximum of all values written to it."""

    def __init__(self, machine, label: Label = None):
        if label is None:
            if "MAX" in machine.labels:
                label = machine.labels.get("MAX")
            else:
                label = machine.register_label(max_label())
        self.label = label
        self.addr = machine.alloc.alloc_line()
        machine.seed_word(self.addr, None)

    def update(self, ctx, value):
        current = yield ctx.labeled_load(self.addr, self.label)
        if current is None or value > current:
            yield ctx.labeled_store(self.addr, self.label, value)
            return True
        return False

    def read(self, ctx):
        value = yield ctx.load(self.addr)
        return value
