"""Top-K sets (Sec. VI, Figs. 14-15).

A top-K set retains the K highest elements inserted into it. Insertions are
semantically commutative: any insertion order yields the same final top-K.
In the paper a descriptor points to a per-thread heap; only descriptor
accesses are labeled, so threads build local top-K heaps and a read merges
them (Fig. 15).

Simulation note (documented in DESIGN.md): we collapse the heap indirection
into the descriptor word, which holds the local heap as an immutable sorted
tuple (ascending, so ``heap[0]`` is the eviction candidate). The protocol
behaviour is identical — labeled descriptor accesses, identity = empty
heap, K-way merge on reduction — and the heap's O(log K) update cost is
charged explicitly with a ``Work`` operation, since node accesses in the
paper hit thread-private data and cause no coherence traffic.
"""

from __future__ import annotations

from ..core.labels import Label

EMPTY = ()


def _merge_topk(a, b, k):
    """Merge two ascending tuples, keeping the K largest."""
    merged = sorted(a + b)
    if len(merged) > k:
        merged = merged[len(merged) - k:]
    return tuple(merged)


def topk_label(k: int, name: str = "TOPK") -> Label:
    def reduce_line(hctx, dst, src):
        return [
            _merge_topk(a if a != 0 else EMPTY, b if b != 0 else EMPTY, k)
            for a, b in zip(dst, src)
        ]

    # Untouched memory words read as 0; the reducer above already treats
    # 0 as an empty heap, and the identity test must agree.
    return Label(name, identity=EMPTY, reduce_line=reduce_line,
                 is_identity_word=lambda w: w == 0 or w == EMPTY)


class TopKSet:
    """Retains the K highest inserted elements."""

    def __init__(self, machine, k: int, label: Label = None):
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        if label is None:
            name = "TOPK"
            if name in machine.labels:
                label = machine.labels.get(name)
            else:
                label = machine.register_label(topk_label(k, name))
        self.label = label
        self.addr = machine.alloc.alloc_line()
        self._log2k = max(1, (k - 1).bit_length())

    def insert(self, ctx, value):
        """Insert into this thread's local top-K heap."""
        heap = yield ctx.labeled_load(self.addr, self.label)
        if heap == 0:
            heap = EMPTY
        if len(heap) < self.k:
            yield ctx.work(self._log2k)  # heap push
            new_heap = _insert_sorted(heap, value)
            yield ctx.labeled_store(self.addr, self.label, new_heap)
            return True
        if value > heap[0]:
            yield ctx.work(self._log2k)  # heap pop + push
            new_heap = _insert_sorted(heap[1:], value)
            yield ctx.labeled_store(self.addr, self.label, new_heap)
            return True
        return False

    def read(self, ctx):
        """Non-commutative read: merges all local heaps (Fig. 15)."""
        heap = yield ctx.load(self.addr)
        return EMPTY if heap == 0 else heap


def _insert_sorted(heap, value):
    import bisect

    lst = list(heap)
    bisect.insort(lst, value)
    return tuple(lst)


def law_suites():
    """Contract suite: TOPK (K=4) over partial heaps and empty encodings.

    Merging is commutative only because every partial heap is kept sorted
    and the merge re-sorts — the observation canonicalizes the 0 and ``()``
    encodings of "empty" but compares heap contents exactly.
    """
    from .contracts import LawSuite, wordwise_gen

    K = 4

    def gen_word(rng):
        if rng.random() < 0.2:
            return 0 if rng.random() < 0.5 else EMPTY
        return tuple(sorted(rng.randint(0, 100)
                            for _ in range(rng.randint(1, K))))

    def observe(mem, words):
        return [EMPTY if w == 0 else w for w in words]

    return [LawSuite(name="topk/TOPK", make_label=lambda: topk_label(K),
                     gen=wordwise_gen(gen_word), observe=observe)]
