"""Histogram: many packed commutative counters (the paper's
multiple-objects-per-line convention, Sec. III-A).

Each 64-byte line holds eight bins under the ADD label; updates to any bin
of any line commute, so threads increment bins concurrently with zero
conflicts, and identity padding makes whole-line reductions safe even for
partially-used lines. This is the pattern kmeans' centroid accumulators
use, packaged as a reusable data type.
"""

from __future__ import annotations

from ..core.labels import Label, add_label
from ..params import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE


class Histogram:
    """A fixed number of integer bins, incremented commutatively."""

    def __init__(self, machine, num_bins: int, label: Label = None):
        if num_bins <= 0:
            raise ValueError("need at least one bin")
        if label is None:
            if "ADD" in machine.labels:
                label = machine.labels.get("ADD")
            else:
                label = machine.register_label(add_label())
        self.label = label
        self.num_bins = num_bins
        num_lines = -(-num_bins // WORDS_PER_LINE)
        # Line-aligned so bins pack exactly eight per line.
        self._base = machine.alloc.alloc(num_lines * LINE_BYTES,
                                         align=LINE_BYTES)

    def bin_addr(self, index: int) -> int:
        if not 0 <= index < self.num_bins:
            raise IndexError(f"bin {index} out of range")
        return self._base + index * WORD_BYTES

    # --- transactional operations -------------------------------------------

    def add(self, ctx, index: int, delta: int = 1):
        addr = self.bin_addr(index)
        value = yield ctx.labeled_load(addr, self.label)
        yield ctx.labeled_store(addr, self.label, value + delta)

    def read_bin(self, ctx, index: int):
        value = yield ctx.load(self.bin_addr(index))
        return value

    # --- host-side helpers -----------------------------------------------------

    def snapshot(self, machine) -> list:
        """All bin values (run flush_reducible() first)."""
        return [machine.read_word(self.bin_addr(i))
                for i in range(self.num_bins)]


def law_suites():
    """Contract suite: ADD over packed bins, heavy in identity padding.

    Histograms rely on identity padding making whole-line reductions safe
    for partially-used lines, so this generator leans on zeros.
    """
    from .contracts import LawSuite, wordwise_gen

    def gen_word(rng):
        return 0 if rng.random() < 0.5 else rng.randint(1, 16)

    return [LawSuite(name="histogram/ADD", make_label=add_label,
                     gen=wordwise_gen(gen_word))]
