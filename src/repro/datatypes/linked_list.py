"""Concurrent singly-linked list with commutative enqueue/dequeue (Sec. VI).

When element order is unimportant (sets, hash-table buckets, work-sharing
queues), enqueues and dequeues are semantically — but not strictly —
commutative. Only the list *descriptor* (head and tail pointer, one word,
held as a ``(head_addr, tail_addr)`` tuple; 0 when empty) is accessed with
labeled operations; element nodes use conventional loads and stores.

Each U-state copy of the descriptor represents a *partial* linked list
(Fig. 11). The reduction handler concatenates two partial lists by writing
the first list's tail ``next`` pointer (a real, non-speculative memory
write through the handler context). The splitter donates the head element,
which lets dequeues proceed via gather requests when the local partial list
is empty.

Node layout: two words, ``[value, next_addr]`` (``next_addr`` 0 = null).
"""

from __future__ import annotations

from ..core.labels import Label
from ..errors import LabelError
from ..params import WORD_BYTES

EMPTY = 0  # identity descriptor


def _list_label(name: str = "LIST") -> Label:
    """Line-level label for linked-list descriptors."""

    def reduce_line(hctx, dst, src):
        out = []
        for a, b in zip(dst, src):
            out.append(_merge_descriptors(hctx, a, b))
        return out

    def split_line(hctx, words, num_sharers):
        kept, donated = [], []
        for desc in words:
            k, d = _split_descriptor(hctx, desc)
            kept.append(k)
            donated.append(d)
        return kept, donated

    return Label(name, identity=EMPTY, reduce_line=reduce_line,
                 split_line=split_line)


def _merge_descriptors(hctx, a, b):
    """Concatenate partial lists ``a`` then ``b`` (Fig. 11a)."""
    if a == EMPTY:
        return b
    if b == EMPTY:
        return a
    a_head, a_tail = a
    b_head, b_tail = b
    hctx.write(a_tail + WORD_BYTES, b_head)  # a.tail.next = b.head
    return (a_head, b_tail)


def _split_descriptor(hctx, desc):
    """Donate the head element (Fig. 11b): returns (kept, donated)."""
    if desc == EMPTY:
        return EMPTY, EMPTY
    head, tail = desc
    nxt = hctx.read(head + WORD_BYTES)
    hctx.write(head + WORD_BYTES, 0)  # detach the donated node
    kept = EMPTY if nxt == 0 else (nxt, tail)
    return kept, (head, head)


def law_suites():
    """Contract suite: LIST descriptors over real node chains.

    The reducer and splitter dereference node pointers, so the generator
    materializes chains in the stub memory and the observation walks them:
    two descriptors are equivalent iff they reach the same multiset of
    element values (concatenation order is exactly what semantic
    commutativity abstracts away, Fig. 11).
    """
    from .contracts import LawSuite

    def gen(rng, mem):
        def make_chain():
            length = rng.randint(0, 3)
            if length == 0:
                return EMPTY
            nodes = []
            for _ in range(length):
                addr = mem.alloc_words(2)
                mem.write(addr, rng.randint(0, 99))
                nodes.append(addr)
            for prev, nxt in zip(nodes, nodes[1:]):
                mem.write(prev + WORD_BYTES, nxt)
            mem.write(nodes[-1] + WORD_BYTES, 0)
            return (nodes[0], nodes[-1])

        from ..params import WORDS_PER_LINE
        return [make_chain() for _ in range(WORDS_PER_LINE)]

    def observe(mem, words):
        out = []
        for desc in words:
            if desc == EMPTY:
                out.append(())
                continue
            values, cur = [], desc[0]
            while cur:
                values.append(mem.read(cur))
                cur = mem.read(cur + WORD_BYTES)
                if len(values) > 1_000:
                    raise AssertionError("linked-list chain cycle")
            out.append(tuple(sorted(values)))
        return out

    return [LawSuite(name="linked_list/LIST", make_label=_list_label,
                     gen=gen, observe=observe)]


class ConcurrentLinkedList:
    """A linked list used as an unordered set / work-sharing queue."""

    def __init__(self, machine, label: Label = None, use_gather: bool = True):
        if label is None:
            if "LIST" in machine.labels:
                label = machine.labels.get("LIST")
            else:
                label = machine.register_label(_list_label())
        if label.identity != EMPTY:
            raise LabelError("linked list label must have identity 0")
        self.label = label
        self.use_gather = use_gather
        self.desc_addr = machine.alloc.alloc_line()

    # --- transactional operations -------------------------------------------

    def enqueue(self, ctx, value):
        """Append ``value`` to this thread's partial list."""
        node = ctx.thread_alloc_words(2)
        yield ctx.store(node, value)
        yield ctx.store(node + WORD_BYTES, 0)
        desc = yield ctx.labeled_load(self.desc_addr, self.label)
        if desc == EMPTY:
            yield ctx.labeled_store(self.desc_addr, self.label, (node, node))
        else:
            head, tail = desc
            yield ctx.store(tail + WORD_BYTES, node)
            yield ctx.labeled_store(self.desc_addr, self.label, (head, node))

    def dequeue(self, ctx):
        """Pop one element; returns ``None`` when the list is empty.

        An empty local partial list first gathers (a splitter donates its
        head element), then falls back to a full reduction.
        """
        desc = yield ctx.labeled_load(self.desc_addr, self.label)
        if desc == EMPTY and self.use_gather:
            desc = yield ctx.load_gather(self.desc_addr, self.label)
        if desc == EMPTY:
            desc = yield ctx.load(self.desc_addr)  # full reduction
            if desc == EMPTY:
                return None
        head, tail = desc
        value = yield ctx.load(head)
        nxt = yield ctx.load(head + WORD_BYTES)
        new_desc = EMPTY if nxt == 0 else (nxt, tail)
        yield ctx.labeled_store(self.desc_addr, self.label, new_desc)
        return value

    def drain(self, ctx):
        """Read-only: pop everything (non-transactional helper pattern)."""
        items = []
        while True:
            value = yield from self.dequeue(ctx)
            if value is None:
                return items
            items.append(value)
