"""Shared counters with commutative addition (Sec. III-A).

The simplest CommTM use case: threads buffer deltas in U-state lines under
the ADD label; a conventional read triggers an additive reduction.
"""

from __future__ import annotations

from ..core.labels import Label, add_label


class SharedCounter:
    """One shared integer counter.

    ``label`` may be shared among many counters (they all commute under
    addition); by default each machine gets a single ADD label.
    """

    def __init__(self, machine, label: Label = None, initial: int = 0):
        if label is None:
            if "ADD" in machine.labels:
                label = machine.labels.get("ADD")
            else:
                label = machine.register_label(add_label())
        self.label = label
        self.addr = machine.alloc.alloc_line()
        if initial:
            machine.seed_word(self.addr, initial)

    def add(self, ctx, delta: int = 1):
        """Transactional commutative add (use inside/as an Atomic)."""
        value = yield ctx.labeled_load(self.addr, self.label)
        yield ctx.labeled_store(self.addr, self.label, value + delta)

    def read(self, ctx):
        """Non-commutative read: triggers a reduction."""
        value = yield ctx.load(self.addr)
        return value


def law_suites():
    """Contract suite: ADD over signed deltas (counters go both ways)."""
    from .contracts import LawSuite, wordwise_gen

    return [LawSuite(
        name="counter/ADD",
        make_label=add_label,
        gen=wordwise_gen(lambda rng: rng.randint(-1_000, 1_000)),
    )]
