"""Ordered puts / priority updates (Sec. VI, Fig. 13).

An ordered put replaces a key-value pair with a new pair if the new pair
has a *lower* key — frequent in databases and central to priority-update
parallel algorithms. Reordered puts are semantically commutative: the
result is always the minimum-key pair. The cell word holds a
``(key, value)`` tuple (or ``None``, the identity); the OPUT reduction
keeps the lower-keyed pair.
"""

from __future__ import annotations

from ..core.labels import Label, oput_label


class OrderedPutCell:
    """One key-value cell supporting priority updates."""

    def __init__(self, machine, label: Label = None):
        if label is None:
            if "OPUT" in machine.labels:
                label = machine.labels.get("OPUT")
            else:
                label = machine.register_label(oput_label())
        self.label = label
        self.addr = machine.alloc.alloc_line()
        machine.seed_word(self.addr, None)

    def put(self, ctx, key, value):
        """Install (key, value) if ``key`` beats the current key."""
        current = yield ctx.labeled_load(self.addr, self.label)
        if current is None or current == 0 or key < current[0]:
            yield ctx.labeled_store(self.addr, self.label, (key, value))
            return True
        return False

    def read(self, ctx):
        """Non-commutative read of the winning pair (reduces)."""
        pair = yield ctx.load(self.addr)
        return pair


def law_suites():
    """Contract suite: OPUT over (key, value) pairs and empty encodings.

    Two subtleties the generator and observer encode:

    * the value is derived from the key — ordered puts commute only when
      equal keys carry equal values (ties between different values would
      resolve by arrival order, which is exactly what the contract rules
      out);
    * both ``None`` and ``0`` encode "no pair yet" (untouched memory reads
      as 0), so the observation canonicalizes them before comparing.
    """
    from .contracts import LawSuite, wordwise_gen

    def gen_word(rng):
        r = rng.random()
        if r < 0.15:
            return None
        if r < 0.30:
            return 0
        key = rng.randint(0, 50)
        return (key, f"v{key}")

    def observe(mem, words):
        return [None if w is None or w == 0 else w for w in words]

    return [LawSuite(name="ordered_put/OPUT", make_label=oput_label,
                     gen=wordwise_gen(gen_word), observe=observe)]
