"""Commutative data types built on the CommTM API.

Each type packages a label (identity + reduction handler + optional
splitter) with transactional operations written as generator functions, so
workloads use them as ``yield Atomic(obj.op, args...)``.

These are the structures the paper evaluates (Secs. VI-VII): shared
counters, bounded non-negative counters (reference counting), concurrent
linked lists (sets / work queues), ordered puts (priority updates), top-K
sets, min/max cells, and resizable hash tables whose remaining-space
counter is a bounded counter.
"""

from .contracts import LawSuite, StubMemory, builtin_suites, wordwise_gen
from .counter import SharedCounter
from .bounded_counter import BoundedCounter
from .linked_list import ConcurrentLinkedList
from .ordered_put import OrderedPutCell
from .minmax import SharedMin, SharedMax
from .topk import TopKSet
from .hash_table import ResizableHashTable
from .histogram import Histogram
from .bloom_filter import BloomFilter

__all__ = [
    "LawSuite",
    "StubMemory",
    "builtin_suites",
    "wordwise_gen",
    "BloomFilter",
    "SharedCounter",
    "BoundedCounter",
    "ConcurrentLinkedList",
    "OrderedPutCell",
    "SharedMin",
    "SharedMax",
    "TopKSet",
    "ResizableHashTable",
    "Histogram",
]
