"""Resizable hash table with a conditionally-commutative space counter.

genome and vacation (Table II) are compiled with resizable hash tables, per
Blundell et al. [8]: every insertion decrements a *remaining-space* bounded
counter, and when it hits zero the table is resized. The decrement is the
conditionally-commutative hot spot — with a conventional HTM it serializes
every insertion; with CommTM + gather requests insertions scale.

Layout:

* ``meta_addr`` word: ``(buckets_base, num_buckets, capacity)`` tuple.
* bucket words: each holds an immutable tuple of ``(key, value)`` pairs
  (a collapsed chain; conflicts on a bucket are conflicts on its word,
  which matches the contention behaviour of per-bucket list heads).
* ``remaining``: a :class:`~repro.datatypes.bounded_counter.BoundedCounter`.
"""

from __future__ import annotations

from ..core.labels import Label
from ..params import WORD_BYTES
from .bounded_counter import BoundedCounter

#: Free slots granted per bucket; the table resizes when load factor
#: reaches this bound.
SLOTS_PER_BUCKET = 4


def stable_hash(key) -> int:
    """Deterministic hash (Python's str hash is salted per process)."""
    if isinstance(key, int):
        return (key * 2654435761) & 0xFFFFFFFF
    h = 2166136261
    for ch in str(key):
        h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h


class ResizableHashTable:
    """An open-chaining hash table that doubles when full."""

    def __init__(self, machine, num_buckets: int = 16,
                 label: Label = None, use_gather: bool = True):
        if num_buckets <= 0:
            raise ValueError("need at least one bucket")
        self._machine = machine
        capacity = num_buckets * SLOTS_PER_BUCKET
        self.remaining = BoundedCounter(machine, label=label,
                                        initial=capacity,
                                        use_gather=use_gather)
        self.meta_addr = machine.alloc.alloc_line()
        base = self._alloc_buckets(num_buckets)
        machine.seed_word(self.meta_addr, (base, num_buckets, capacity))

    def _alloc_buckets(self, num_buckets: int) -> int:
        base = self._machine.alloc.alloc_words(num_buckets)
        return base

    @staticmethod
    def _bucket_addr(base: int, num_buckets: int, key) -> int:
        return base + (stable_hash(key) % num_buckets) * WORD_BYTES

    # --- transactional operations -------------------------------------------

    def insert(self, ctx, key, value):
        """Insert (key, value); resizes the table when full."""
        ok = yield from self.remaining.decrement(ctx)
        if not ok:
            yield from self._resize(ctx)
            ok = yield from self.remaining.decrement(ctx)
            if not ok:
                raise RuntimeError("hash table still full after resize")
        base, num_buckets, _capacity = yield ctx.load(self.meta_addr)
        bucket = self._bucket_addr(base, num_buckets, key)
        chain = yield ctx.load(bucket)
        chain = chain if chain != 0 else ()
        yield ctx.work(1 + len(chain))  # chain walk
        yield ctx.store(bucket, chain + ((key, value),))

    def lookup(self, ctx, key):
        """Return the first value stored under ``key``, or None."""
        base, num_buckets, _capacity = yield ctx.load(self.meta_addr)
        bucket = self._bucket_addr(base, num_buckets, key)
        chain = yield ctx.load(bucket)
        chain = chain if chain != 0 else ()
        yield ctx.work(1 + len(chain))
        for k, v in chain:
            if k == key:
                return v
        return None

    def remove(self, ctx, key):
        """Remove one entry under ``key``; returns True if found."""
        base, num_buckets, _capacity = yield ctx.load(self.meta_addr)
        bucket = self._bucket_addr(base, num_buckets, key)
        chain = yield ctx.load(bucket)
        chain = chain if chain != 0 else ()
        yield ctx.work(1 + len(chain))
        for i, (k, _v) in enumerate(chain):
            if k == key:
                yield ctx.store(bucket, chain[:i] + chain[i + 1:])
                yield from self.remaining.increment(ctx)
                return True
        return False

    # --- resize ------------------------------------------------------------

    def _resize(self, ctx):
        """Double the table within the current transaction.

        Non-commutative by nature: reads every bucket and rewrites the
        metadata, conflicting with all concurrent operations — which is why
        it must be rare, and why the remaining-space counter exists.
        """
        base, num_buckets, capacity = yield ctx.load(self.meta_addr)
        new_num = num_buckets * 2
        new_base = self._alloc_buckets(new_num)
        for i in range(new_num):
            yield ctx.store(new_base + i * WORD_BYTES, ())
        for i in range(num_buckets):
            chain = yield ctx.load(base + i * WORD_BYTES)
            chain = chain if chain != 0 else ()
            for k, v in chain:
                dst = self._bucket_addr(new_base, new_num, k)
                old = yield ctx.load(dst)
                old = old if old != 0 else ()
                yield ctx.store(dst, old + ((k, v),))
        new_capacity = new_num * SLOTS_PER_BUCKET
        yield ctx.store(self.meta_addr, (new_base, new_num, new_capacity))
        # The new table has (new_capacity - capacity) additional free slots.
        yield from self.remaining.increment(ctx, new_capacity - capacity)

    # --- setup helpers --------------------------------------------------------

    def distribute_remaining(self, num_threads: int) -> None:
        """Pre-distribute the remaining-space counter across running cores.

        Steady-state start for scaled-down runs (see
        ``Machine.seed_reducible``): long runs spread the counter mass over
        the threads' U-state lines through gathers; short runs must not
        start with the whole mass concentrated at one core.
        """
        machine = self._machine
        if not machine.config.commtm_enabled or num_threads <= 1:
            return
        total = machine.memory.read_word(self.remaining.addr)
        share, extra = divmod(total, num_threads)
        machine.seed_reducible(
            self.remaining.addr, self.remaining.label,
            {core: share + (1 if core < extra else 0)
             for core in range(num_threads)},
        )

    # --- host-side verification helpers ---------------------------------------

    def snapshot(self) -> dict:
        """Read the table contents directly (post-run verification)."""
        machine = self._machine
        base, num_buckets, _capacity = machine.read_word(self.meta_addr)
        out = {}
        for i in range(num_buckets):
            chain = machine.read_word(base + i * WORD_BYTES)
            if chain == 0:
                continue
            for k, v in chain:
                out.setdefault(k, v)
        return out


def law_suites():
    """Contract suite: ADD over remaining-space counter mass.

    The resizable table's hot spot is the remaining-space bounded counter;
    its gathers split capacities in the hundreds across up to 128 sharers,
    a larger domain than the generic counter suite exercises.
    """
    from ..core.labels import add_label
    from .contracts import LawSuite, wordwise_gen

    return [LawSuite(
        name="hash_table/ADD",
        make_label=add_label,
        gen=wordwise_gen(lambda rng: rng.randint(0, 4096)),
    )]
