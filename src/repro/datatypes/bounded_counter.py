"""Bounded non-negative counter (Sec. IV).

``increment`` always commutes; ``decrement`` commutes only while the value
is positive — a *conditionally commutative* operation. Three decrement
strategies, exactly the paper's progression:

1. Plain CommTM (no gather): if the local U-state value is zero, fall back
   to a conventional read (full reduction) to check the true value. Under
   frequent decrements the reductions serialize execution.
2. With gather requests: a zero local value first tries ``load_gather``,
   which redistributes the counter mass across sharers via the ADD
   splitter (donate ``ceil(value / numSharers)``), staying in U.
3. Baseline HTM: the same code, with labeled operations demoted to
   conventional ones by ``commtm_enabled=False``.

Use cases per the paper: reference counting, and the remaining-space
counter of resizable data structures (genome/vacation, Table II).
"""

from __future__ import annotations

from ..core.labels import Label, add_label


class BoundedCounter:
    """A non-negative counter supporting increment/decrement."""

    def __init__(self, machine, label: Label = None, initial: int = 0,
                 use_gather: bool = True):
        if initial < 0:
            raise ValueError("bounded counter cannot start negative")
        if label is None:
            if "ADD" in machine.labels:
                label = machine.labels.get("ADD")
            else:
                label = machine.register_label(add_label())
        self.label = label
        self.use_gather = use_gather
        self.addr = machine.alloc.alloc_line()
        if initial:
            machine.seed_word(self.addr, initial)

    def increment(self, ctx, delta: int = 1):
        """Always-commutative increment."""
        value = yield ctx.labeled_load(self.addr, self.label)
        yield ctx.labeled_store(self.addr, self.label, value + delta)
        return True

    def decrement(self, ctx):
        """Decrement unless the counter is zero; returns False on failure.

        Mirrors the paper's two-stage (or three-stage, with gathers)
        decrement: local check, then gather, then full reduction.
        """
        value = yield ctx.labeled_load(self.addr, self.label)
        if value == 0 and self.use_gather:
            value = yield ctx.load_gather(self.addr, self.label)
        if value == 0:
            # Trigger a full reduction to observe the true value.
            value = yield ctx.load(self.addr)
            if value == 0:
                return False
        yield ctx.labeled_store(self.addr, self.label, value - 1)
        return True

    def read(self, ctx):
        value = yield ctx.load(self.addr)
        return value


def law_suites():
    """Contract suite: ADD over non-negative counter mass.

    The bounded counter's gathers redistribute strictly positive values,
    so this domain is where the ADD splitter's ceil-share donation and its
    conservation law (``kept + donated == value``) actually run.
    """
    from .contracts import LawSuite, wordwise_gen

    return [LawSuite(
        name="bounded_counter/ADD",
        make_label=add_label,
        gen=wordwise_gen(lambda rng: rng.randint(0, 64)),
    )]
