"""Concurrent Bloom filter: commutative bitwise-OR inserts.

Set-union via OR is strictly commutative (Coup's motivating class of
updates) and the transactional wrapper lets a membership test and its
dependent logic stay atomic — e.g. insert-if-absent patterns. Inserts use
labeled OR updates and never conflict; membership tests are conventional
reads that trigger OR-reductions.

False positives behave exactly as in any Bloom filter; there are no false
negatives (asserted by the tests).
"""

from __future__ import annotations

from ..core.labels import Label, wordwise_label
from ..params import LINE_BYTES, WORD_BYTES, WORDS_PER_LINE

BITS_PER_WORD = 64


def or_label(name: str = "OR") -> Label:
    """Bitwise OR: identity 0, merge a | b."""
    label = wordwise_label(name, identity=0,
                           reduce_word=lambda a, b: a | b)
    # OR is associative/commutative and int64 OR of in-bound ints is
    # bit-identical to Python's, so the batched column kernel applies.
    label.vector_reduce = "or"
    return label


class BloomFilter:
    """A fixed-size Bloom filter with ``num_hashes`` probes per key."""

    def __init__(self, machine, num_bits: int = 1024, num_hashes: int = 3,
                 label: Label = None):
        if num_bits <= 0 or num_bits % BITS_PER_WORD:
            raise ValueError("num_bits must be a positive multiple of 64")
        if num_hashes <= 0:
            raise ValueError("need at least one hash")
        if label is None:
            if "OR" in machine.labels:
                label = machine.labels.get("OR")
            else:
                label = machine.register_label(or_label())
        self.label = label
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        num_words = num_bits // BITS_PER_WORD
        num_lines = -(-num_words // WORDS_PER_LINE)
        self._base = machine.alloc.alloc(num_lines * LINE_BYTES,
                                         align=LINE_BYTES)

    def _probes(self, key):
        from .hash_table import stable_hash

        h1 = stable_hash(key)
        h2 = stable_hash((key, "salt")) | 1
        for i in range(self.num_hashes):
            bit = (h1 + i * h2) % self.num_bits
            yield (self._base + (bit // BITS_PER_WORD) * WORD_BYTES,
                   1 << (bit % BITS_PER_WORD))

    # --- transactional operations -------------------------------------------

    def insert(self, ctx, key):
        """Set the key's bits (commutative OR updates)."""
        for addr, mask in self._probes(key):
            value = yield ctx.labeled_load(addr, self.label)
            if not value & mask:
                yield ctx.labeled_store(addr, self.label, value | mask)

    def contains(self, ctx, key):
        """Membership test (conventional reads; reduces OR partials).
        May return a false positive, never a false negative."""
        for addr, mask in self._probes(key):
            value = yield ctx.load(addr)
            if not value & mask:
                return False
        return True

    # --- host-side helpers -----------------------------------------------------

    def popcount(self, machine) -> int:
        """Total bits set (run flush_reducible() first)."""
        total = 0
        for w in range(self.num_bits // BITS_PER_WORD):
            total += bin(machine.read_word(
                self._base + w * WORD_BYTES)).count("1")
        return total


def law_suites():
    """Contract suite: OR over sparse 64-bit masks (strictly commutative)."""
    from .contracts import LawSuite, wordwise_gen

    def gen_word(rng):
        mask = 0
        for _ in range(rng.randint(0, 4)):
            mask |= 1 << rng.randrange(BITS_PER_WORD)
        return mask

    return [LawSuite(name="bloom_filter/OR", make_label=or_label,
                     gen=wordwise_gen(gen_word))]
