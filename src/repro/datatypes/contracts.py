"""Algebraic-contract declarations for the built-in labels.

CommTM's correctness rests on contracts the hardware never checks
(Secs. III-A, III-B4, IV of the paper): all operations under one label
must commute, ``reduce(x, identity) == x`` must hold, and splitters must
conserve state. This module is where each datatype *declares* its
contract as a checkable artifact — a :class:`LawSuite` pairing the
datatype's label with a seeded value generator (and, for labels that are
only *semantically* commutative, an observation function defining which
differences are meaningless).

The law checker (:mod:`repro.analysis.laws`) runs the algebraic laws
against these suites; each datatype module contributes its generator via
a ``law_suite()`` function collected by :func:`builtin_suites`.

Semantic commutativity and observation functions
------------------------------------------------

Strictly commutative labels (ADD, OR) produce bit-identical lines in any
reduction order, so the default observation — the words themselves — is
the right equality. Descriptor-based labels are commutative only up to an
abstraction function: concatenating two partial linked lists in either
order yields different pointer chains that represent the same *set* of
elements (Fig. 11). Their suites supply ``observe``, mapping a line (plus
the stub memory its descriptors point into) to the canonical value the
laws are stated over.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from ..core.labels import HandlerContext, Label
from ..params import WORD_BYTES, WORDS_PER_LINE


class StubMemory:
    """Flat word-addressed memory for running handlers outside a machine.

    Line-level reduction handlers and splitters perform real memory
    accesses through a :class:`~repro.core.labels.HandlerContext`; the law
    checker runs them against this stub instead of a simulated machine.
    Reads of untouched words return 0, matching
    :class:`~repro.mem.memory.MainMemory`. ``clone()`` snapshots the
    contents so both sides of a law can be evaluated from the same initial
    state even when the handlers mutate memory.
    """

    def __init__(self, words: Optional[dict] = None, next_addr: int = 0x1000):
        self._words = dict(words) if words else {}
        self._next = next_addr

    def read(self, addr: int) -> object:
        return self._words.get(addr, 0)

    def write(self, addr: int, value: object) -> None:
        self._words[addr] = value

    def alloc_words(self, count: int) -> int:
        """Reserve ``count`` word-aligned slots; returns the base address."""
        base = self._next
        self._next += count * WORD_BYTES
        return base

    def clone(self) -> "StubMemory":
        return StubMemory(self._words, self._next)

    def context(self) -> HandlerContext:
        return HandlerContext(self.read, self.write)


#: Generates one line (``WORDS_PER_LINE`` words) of representative values,
#: allocating any out-of-line state (e.g. list nodes) in the stub memory.
ValueGen = Callable[[random.Random, StubMemory], List[object]]

#: Maps (memory, line) to the canonical value equality is checked over.
ObserveFn = Callable[[StubMemory, List[object]], object]


@dataclass(frozen=True)
class LawSuite:
    """One datatype's checkable contract: a label plus its value domain."""

    name: str                      # suite name, e.g. "counter/ADD"
    make_label: Callable[[], Label]
    gen: ValueGen
    observe: Optional[ObserveFn] = None  # None: compare words directly

    def observed(self, mem: StubMemory, words: List[object]) -> object:
        if self.observe is None:
            return list(words)
        return self.observe(mem, words)


def wordwise_gen(gen_word: Callable[[random.Random], object]) -> ValueGen:
    """Lift a per-word value generator to a whole-line generator."""

    def gen(rng: random.Random, mem: StubMemory) -> List[object]:
        return [gen_word(rng) for _ in range(WORDS_PER_LINE)]

    return gen


def builtin_suites() -> List[LawSuite]:
    """All contract suites contributed by the built-in datatypes."""
    from . import (bloom_filter, bounded_counter, counter, hash_table,
                   histogram, linked_list, minmax, ordered_put, topk)

    suites: List[LawSuite] = []
    for module in (counter, bounded_counter, histogram, hash_table,
                   minmax, ordered_put, topk, linked_list, bloom_filter):
        contributed = module.law_suites()
        if not contributed:
            raise ValueError(f"{module.__name__} contributed no law suites")
        suites.extend(contributed)
    return suites
