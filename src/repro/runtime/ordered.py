"""Ordered speculation: loop parallelization on top of the HTM.

The paper notes (Sec. III-D, "Other contexts") that CommTM's techniques
apply "beyond TM, to contexts that require speculative execution of atomic
regions, such as architectural support for implicit parallelism". This
module demonstrates that: loop iterations execute as *ordered*
transactions — speculatively in parallel, committing in program order —
the thread-level-speculation model of Multiscalar-style architectures.

Mechanism (the classic TM commit-token construction):

* each iteration's transaction ends by reading a shared *commit token* and
  spinning until the token equals its iteration index, then advancing it;
* the token read joins the transaction's read set, so a predecessor's
  token advance aborts any successor that read the token too early — the
  successor replays and passes on a later attempt;
* conflict priority must equal program order for this to be livelock-free
  (a successor spinning on the token must never win a data conflict
  against its predecessor), so ordered transactions carry explicit
  timestamps derived from the iteration index, older than every unordered
  transaction.

Commutative (labeled) operations inside iterations remain conflict-free
across iterations, exactly as in unordered transactions — which is how
CommTM accelerates speculative parallelization: cross-iteration counter
updates or set inserts no longer serialize the speculation.
"""

from __future__ import annotations

from typing import Callable

from .ops import Atomic

#: Base for order-derived timestamps: far below every allocated timestamp,
#: so ordered transactions always win conflicts against unordered ones and
#: among themselves strictly by program order.
ORDERED_TS_BASE = -(1 << 40)

#: Spin-wait granularity while waiting for the commit token.
SPIN_CYCLES = 16


class OrderedAtomic(Atomic):
    """An ``Atomic`` carrying a program-order index."""

    __slots__ = ("order",)

    def __init__(self, fn: Callable, order: int, *args):
        super().__init__(fn, *args)
        if order < 0:
            raise ValueError("order must be non-negative")
        self.order = order

    @property
    def ts(self) -> int:
        return ORDERED_TS_BASE + self.order

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"OrderedAtomic({name}, order={self.order})"


class OrderedRegion:
    """One ordered-commit domain (e.g. one speculatively-parallel loop).

    Usage::

        region = OrderedRegion(machine)

        def iteration(ctx, i):
            ...  yield Load/Store/Labeled*  ...

        def body(ctx):             # SPMD: thread t runs iterations t, t+T, ...
            for i in range(ctx.tid, N, num_threads):
                yield region.atomic(iteration, i)

    Iterations may execute and even finish out of order; their memory
    effects become visible strictly in iteration order.
    """

    def __init__(self, machine):
        self.token_addr = machine.alloc.alloc_line()

    def atomic(self, fn: Callable, order: int, *args) -> OrderedAtomic:
        """Wrap ``fn(ctx, order, *args)`` as the transaction for iteration
        ``order`` (the iteration body receives its index)."""

        def wrapped(ctx, *inner_args):
            result = yield from fn(ctx, order, *inner_args)
            # Commit gate: wait for program order. The token load joins the
            # read set; a predecessor's advance conflicts us out (we are
            # younger by construction) and we replay.
            while True:
                token = yield ctx.load(self.token_addr)
                if token == order:
                    break
                yield ctx.work(SPIN_CYCLES)
            yield ctx.store(self.token_addr, order + 1)
            return result

        wrapped.__name__ = getattr(fn, "__name__", "iteration")
        return OrderedAtomic(wrapped, order, *args)


def parallel_for(machine, num_threads: int, count: int,
                 iteration: Callable):
    """Build SPMD bodies that run ``iteration(ctx, i)`` for i in
    range(count) as ordered transactions, cyclically distributed."""
    region = OrderedRegion(machine)

    def make_body(tid: int):
        def body(ctx):
            for i in range(tid, count, num_threads):
                yield region.atomic(iteration, i)
        return body

    return [make_body(t) for t in range(num_threads)], region
