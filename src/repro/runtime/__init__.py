"""Workload runtime: the operation vocabulary threads yield, and the
per-thread context object."""

from .ops import (
    BARRIER,
    Atomic,
    Barrier,
    LabeledLoad,
    LabeledStore,
    Load,
    LoadGather,
    Store,
    Work,
    work,
)
from .thread_api import ThreadCtx

__all__ = [
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "LoadGather",
    "Work",
    "Barrier",
    "Atomic",
    "ThreadCtx",
    "BARRIER",
    "work",
]
