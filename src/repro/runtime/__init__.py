"""Workload runtime: the operation vocabulary threads yield, and the
per-thread context object."""

from .ops import (
    Load,
    Store,
    LabeledLoad,
    LabeledStore,
    LoadGather,
    Work,
    Atomic,
)
from .thread_api import ThreadCtx

__all__ = [
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "LoadGather",
    "Work",
    "Atomic",
    "ThreadCtx",
]
