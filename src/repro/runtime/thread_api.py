"""Per-thread context handed to workload generator functions.

Provides thread identity, label lookup, memory allocation, and a private
RNG stream. Allocation is host-side bookkeeping (it models a per-thread
allocator and costs no simulated cycles by itself — initializing stores do).
"""

from __future__ import annotations

import random


class ThreadCtx:
    """What a workload body sees. One per thread (= per core)."""

    def __init__(self, tid: int, machine):
        self.tid = tid
        self._machine = machine

    # --- labels -------------------------------------------------------------

    def label(self, name: str):
        return self._machine.labels.get(name)

    # --- allocation ----------------------------------------------------------

    def alloc_words(self, nwords: int) -> int:
        """Allocate in the shared arena (object-size aligned)."""
        return self._machine.alloc.alloc_words(nwords)

    def alloc_line(self) -> int:
        return self._machine.alloc.alloc_line()

    def thread_alloc_words(self, nwords: int) -> int:
        """Allocate in this thread's private arena (nodes, buffers)."""
        return self._machine.alloc.thread_alloc_words(self.tid, nwords)

    # --- randomness ------------------------------------------------------------

    @property
    def rng(self) -> random.Random:
        """Deterministic per-thread stream."""
        return self._machine.rng.stream(f"thread-{self.tid}")

    # --- config ------------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return self._machine.config.num_cores
