"""Per-thread context handed to workload generator functions.

Provides thread identity, label lookup, memory allocation, a private RNG
stream, and the *op shuttles* — zero-allocation constructors for the ops a
body yields. Allocation is host-side bookkeeping (it models a per-thread
allocator and costs no simulated cycles by itself — initializing stores do).

Op shuttles
-----------
``ctx.load(addr)``, ``ctx.store(addr, v)``, ``ctx.labeled_load(addr, L)``,
``ctx.labeled_store(addr, L, v)``, ``ctx.load_gather(addr, L)`` and
``ctx.work(n)`` each mutate and return one cached op instance owned by this
context, instead of allocating a fresh dataclass per simulated operation.
This is safe under the engine's consume-before-resume contract (see
:mod:`repro.runtime.ops`): the engine fully services a yielded op before the
generator resumes, so by the time the body can call the shuttle again the
previous payload has been read. The contract's obligation on workload code
is to ``yield`` the shuttle call directly and never store its result — the
label-discipline lint (:mod:`repro.analysis.lint`) flags held shuttles.
"""

from __future__ import annotations

import random

from .ops import BARRIER, Barrier, LabeledLoad, LabeledStore, Load, LoadGather, Store, Work


class ThreadCtx:
    """What a workload body sees. One per thread (= per core)."""

    __slots__ = (
        "tid",
        "_machine",
        "_load",
        "_store",
        "_labeled_load",
        "_labeled_store",
        "_load_gather",
        "_work",
    )

    def __init__(self, tid: int, machine):
        self.tid = tid
        self._machine = machine
        # One shuttle per op kind; see the module docstring. Mutating these
        # is cheaper than allocating, and the engine never retains them.
        self._load = Load(0)
        self._store = Store(0, None)
        self._labeled_load = LabeledLoad(0, None)
        self._labeled_store = LabeledStore(0, None, None)
        self._load_gather = LoadGather(0, None)
        self._work = Work(0)

    # --- op shuttles --------------------------------------------------------

    def load(self, addr: int) -> Load:
        op = self._load
        op.addr = addr
        return op

    def store(self, addr: int, value) -> Store:
        op = self._store
        op.addr = addr
        op.value = value
        return op

    def labeled_load(self, addr: int, label) -> LabeledLoad:
        op = self._labeled_load
        op.addr = addr
        op.label = label
        return op

    def labeled_store(self, addr: int, label, value) -> LabeledStore:
        op = self._labeled_store
        op.addr = addr
        op.label = label
        op.value = value
        return op

    def load_gather(self, addr: int, label) -> LoadGather:
        op = self._load_gather
        op.addr = addr
        op.label = label
        return op

    def work(self, cycles: int) -> Work:
        op = self._work
        op.cycles = cycles
        return op

    def barrier(self) -> Barrier:
        return BARRIER

    # --- labels -------------------------------------------------------------

    def label(self, name: str):
        return self._machine.labels.get(name)

    # --- allocation ----------------------------------------------------------

    def alloc_words(self, nwords: int) -> int:
        """Allocate in the shared arena (object-size aligned)."""
        return self._machine.alloc.alloc_words(nwords)

    def alloc_line(self) -> int:
        return self._machine.alloc.alloc_line()

    def thread_alloc_words(self, nwords: int) -> int:
        """Allocate in this thread's private arena (nodes, buffers)."""
        return self._machine.alloc.thread_alloc_words(self.tid, nwords)

    # --- randomness ------------------------------------------------------------

    @property
    def rng(self) -> random.Random:
        """Deterministic per-thread stream."""
        return self._machine.rng.stream(f"thread-{self.tid}")

    # --- config ------------------------------------------------------------------

    @property
    def num_threads(self) -> int:
        return self._machine.config.num_cores
