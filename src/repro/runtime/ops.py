"""Operations a workload coroutine can yield.

Workloads are generator functions over a :class:`~repro.runtime.ThreadCtx`.
Each ``yield``ed operation executes atomically at the protocol level and
resumes the generator with its result:

=================================== =======================================
``value = yield Load(addr)``        conventional load
``yield Store(addr, value)``        conventional store
``value = yield LabeledLoad(a, L)`` labeled load (CommTM ISA, Sec. III-A)
``yield LabeledStore(a, L, v)``     labeled store
``value = yield LoadGather(a, L)``  gather request (Sec. IV)
``yield Work(n)``                   n cycles of local computation
``ret = yield Atomic(fn, *args)``   run ``fn(ctx, *args)`` as a transaction
=================================== =======================================

``Atomic`` is the transaction boundary: the engine begins a transaction,
drives ``fn``'s generator, and commits at its return. On abort the generator
is discarded and re-created after randomized backoff — exactly the replay
semantics of hardware restart. A nested ``Atomic`` is flattened into its
parent (closed nesting via subsumption, as in the paper's baseline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..core.labels import Label


# The op classes are allocated once per simulated memory operation — the
# hottest allocation site in the simulator — so they are slotted.

@dataclass(frozen=True, slots=True)
class Load:
    addr: int


@dataclass(frozen=True, slots=True)
class Store:
    addr: int
    value: object


@dataclass(frozen=True, slots=True)
class LabeledLoad:
    addr: int
    label: Label


@dataclass(frozen=True, slots=True)
class LabeledStore:
    addr: int
    label: Label
    value: object


@dataclass(frozen=True, slots=True)
class LoadGather:
    addr: int
    label: Label


@dataclass(frozen=True, slots=True)
class Work:
    cycles: int


@dataclass(frozen=True, slots=True)
class Barrier:
    """SPMD barrier: blocks until every live thread reaches one.

    Not allowed inside a transaction (a blocked transaction could deadlock
    conflict resolution). Used by round-synchronous applications (boruvka's
    rounds, kmeans iterations).
    """


class Atomic:
    """Transaction boundary: run ``fn(ctx, *args)`` atomically."""

    __slots__ = ("fn", "args")

    #: Explicit conflict-priority timestamp; ``None`` means allocate one at
    #: begin. Overridden by OrderedAtomic (order == priority).
    ts = None

    def __init__(self, fn: Callable, *args):
        self.fn = fn
        self.args: Tuple = args

    def make_generator(self, ctx):
        return self.fn(ctx, *self.args)

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Atomic({name}, args={self.args!r})"


MEMORY_OPS = (Load, Store, LabeledLoad, LabeledStore, LoadGather)

__all__ = [
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "LoadGather",
    "Work",
    "Barrier",
    "Atomic",
    "MEMORY_OPS",
]
