"""Operations a workload coroutine can yield.

Workloads are generator functions over a :class:`~repro.runtime.ThreadCtx`.
Each ``yield``ed operation executes atomically at the protocol level and
resumes the generator with its result:

=================================== =======================================
``value = yield Load(addr)``        conventional load
``yield Store(addr, value)``        conventional store
``value = yield LabeledLoad(a, L)`` labeled load (CommTM ISA, Sec. III-A)
``yield LabeledStore(a, L, v)``     labeled store
``value = yield LoadGather(a, L)``  gather request (Sec. IV)
``yield Work(n)``                   n cycles of local computation
``ret = yield Atomic(fn, *args)``   run ``fn(ctx, *args)`` as a transaction
=================================== =======================================

``Atomic`` is the transaction boundary: the engine begins a transaction,
drives ``fn``'s generator, and commits at its return. On abort the generator
is discarded and re-created after randomized backoff — exactly the replay
semantics of hardware restart. A nested ``Atomic`` is flattened into its
parent (closed nesting via subsumption, as in the paper's baseline).

Consume-before-resume contract
------------------------------
The engine fully consumes every yielded op — reads its fields, performs the
access, charges cycles — *before* resuming the generator that yielded it.
Nothing on the engine side retains a memory/``Work``/``Barrier`` op past the
handler call (``Atomic`` is the one exception: it is held for abort replay).
Workload code may therefore reuse op objects across yields instead of
allocating a fresh one per operation: the :class:`~repro.runtime.ThreadCtx`
shuttle methods (``ctx.load`` / ``ctx.store`` / labeled variants /
``ctx.work``) mutate-and-return one cached instance per context, and
:data:`BARRIER` / :func:`work` intern the payload-free ops. The flip side of
the contract is that a yielded op must not be *held* by the workload either
— yield the shuttle call directly, never store its result (the
label-discipline lint flags held shuttles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..core.labels import Label


# The op classes are allocated once per simulated memory operation — the
# hottest allocation site in the simulator — so they are slotted, and they
# are deliberately *not* frozen: the ThreadCtx shuttles mutate one cached
# instance per op kind (see the consume-before-resume contract above).

@dataclass(slots=True)
class Load:
    addr: int


@dataclass(slots=True)
class Store:
    addr: int
    value: object


@dataclass(slots=True)
class LabeledLoad:
    addr: int
    label: Label


@dataclass(slots=True)
class LabeledStore:
    addr: int
    label: Label
    value: object


@dataclass(slots=True)
class LoadGather:
    addr: int
    label: Label


@dataclass(slots=True)
class Work:
    cycles: int


@dataclass(slots=True)
class Barrier:
    """SPMD barrier: blocks until every live thread reaches one.

    Not allowed inside a transaction (a blocked transaction could deadlock
    conflict resolution). Used by round-synchronous applications (boruvka's
    rounds, kmeans iterations).
    """


class Atomic:
    """Transaction boundary: run ``fn(ctx, *args)`` atomically."""

    __slots__ = ("fn", "args")

    #: Explicit conflict-priority timestamp; ``None`` means allocate one at
    #: begin. Overridden by OrderedAtomic (order == priority).
    ts = None

    def __init__(self, fn: Callable, *args):
        self.fn = fn
        self.args: Tuple = args

    def make_generator(self, ctx):
        return self.fn(ctx, *self.args)

    def __repr__(self) -> str:
        name = getattr(self.fn, "__name__", repr(self.fn))
        return f"Atomic({name}, args={self.args!r})"


MEMORY_OPS = (Load, Store, LabeledLoad, LabeledStore, LoadGather)


#: Interned barrier. ``Barrier`` carries no payload and the engine never
#: retains one, so a single module-level instance serves every yield site.
BARRIER = Barrier()

#: ``Work`` ops keyed by cycle count. Workloads draw from a small set of
#: think-time constants, so interning removes the per-op allocation without
#: unbounded growth (the cache is capped; rare cycle counts still allocate).
_WORK_CACHE: Dict[int, Work] = {}
_WORK_CACHE_MAX = 1024


def work(cycles: int) -> Work:
    """Interned ``Work(cycles)`` — safe to share because the engine only
    reads ``.cycles`` and never retains the op."""
    op = _WORK_CACHE.get(cycles)
    if op is None:
        op = Work(cycles)
        if len(_WORK_CACHE) < _WORK_CACHE_MAX:
            _WORK_CACHE[cycles] = op
    return op


__all__ = [
    "Load",
    "Store",
    "LabeledLoad",
    "LabeledStore",
    "LoadGather",
    "Work",
    "Barrier",
    "Atomic",
    "MEMORY_OPS",
    "BARRIER",
    "work",
]
