"""CLI: regenerate any of the paper's experiments by name.

Usage::

    python -m repro.harness --list
    python -m repro.harness fig09
    python -m repro.harness fig16-kmeans --threads 1,8,32 --scale 0.5
    python -m repro.harness fig09 --jobs 4          # parallel sweep
    python -m repro.harness fig09 --no-cache        # force re-simulation

Sweeps fan out over ``--jobs`` worker processes (default: ``REPRO_JOBS``,
else the machine's CPU count) and reuse previously simulated points from
the on-disk cache (``--cache-dir``, default ``~/.cache/repro-commtm``;
disable with ``--no-cache``). Parallel and cached runs produce output
identical to ``--jobs 1 --no-cache``.
"""

from __future__ import annotations

import argparse
import sys

from ..errors import SimulationError
from .cache import ResultCache
from .experiments import list_experiments, run_experiment
from .parallel import resolve_jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--threads", default="1,8,32,128",
                        help="comma-separated thread ladder")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="operation-count multiplier")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for sweeps "
                             "(default: $REPRO_JOBS, else CPU count)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR, else "
                             "~/.cache/repro-commtm)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("\n".join(list_experiments()))
        return 0

    threads = [int(x) for x in args.threads.split(",") if x]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        jobs = resolve_jobs(args.jobs)
    except SimulationError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        report = run_experiment(args.experiment, threads=threads,
                                scale=args.scale, jobs=jobs, cache=cache)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(report)
    if cache is not None:
        print(f"[cache] {cache.hits} hit(s), {cache.misses} miss(es) "
              f"in {cache.directory}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
