"""CLI: regenerate any of the paper's experiments by name.

Usage::

    python -m repro.harness --list
    python -m repro.harness fig09
    python -m repro.harness fig16-kmeans --threads 1,8,32 --scale 0.5
    python -m repro.harness fig09 --jobs 4          # parallel sweep
    python -m repro.harness fig09 --no-cache        # force re-simulation
    python -m repro.harness fig09 --profile         # where does time go?
    python -m repro.harness fig09 --trace-out t.json \\
        --report-json r.json --metrics-out m.json   # structured artifacts

Sweeps fan out over ``--jobs`` worker processes (default: ``REPRO_JOBS``,
else the machine's CPU count) and reuse previously simulated points from
the on-disk cache (``--cache-dir``, default ``~/.cache/repro-commtm``;
disable with ``--no-cache``). Parallel and cached runs produce output
identical to ``--jobs 1 --no-cache``. Sweeps with fewer uncached points
than ``--serial-threshold`` run serially (pool dispatch would cost more
than it saves); ``--profile`` runs the experiment under :mod:`cProfile`
and prints the top 25 functions by cumulative time to stderr
(``--profile-out FILE`` additionally dumps the raw stats for ``pstats``/
``snakeviz``).

``--trace-out``/``--report-json``/``--metrics-out``/``--hostprof-out``
export structured observability artifacts (Perfetto trace, versioned run
report with address-level abort attribution, hot-line metrics, host
wall-clock phase accounting — see :mod:`repro.obs`); any of them implies
``REPRO_OBS=1`` and ``--no-cache``.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys

from ..errors import SimulationError
from . import artifacts
from .cache import ResultCache
from .experiments import list_experiments, run_experiment
from .parallel import SERIAL_THRESHOLD_ENV, resolve_jobs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--threads", default="1,8,32,128",
                        help="comma-separated thread ladder")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="operation-count multiplier")
    parser.add_argument("--jobs", "-j", type=int, default=None,
                        help="worker processes for sweeps "
                             "(default: $REPRO_JOBS, else CPU count)")
    parser.add_argument("--serial-threshold", type=int, default=None,
                        help="run sweeps with fewer uncached points than "
                             "this serially even when --jobs > 1 "
                             "(default: $REPRO_SERIAL_THRESHOLD, else 10; "
                             "0 always uses the pool)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not read or write the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR, else "
                             "~/.cache/repro-commtm)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a Chrome/Perfetto trace-event JSON of "
                             "every simulated point (open in "
                             "ui.perfetto.dev). Implies REPRO_OBS=1 and "
                             "--no-cache")
    parser.add_argument("--report-json", metavar="FILE", default=None,
                        help="write a machine-readable run report "
                             "(per-point stats, per-label table, abort "
                             "attribution). Implies REPRO_OBS=1 and "
                             "--no-cache")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write per-line/per-label hot-line metrics "
                             "JSON. Implies REPRO_OBS=1 and --no-cache")
    parser.add_argument("--hostprof-out", metavar="FILE", default=None,
                        help="write host wall-clock phase accounting "
                             "JSON (repro-obs-hostprof/1): per-point "
                             "simulate/verify and vector-engine phases, "
                             "plus harness dispatch and cache traffic. "
                             "Implies REPRO_OBS=1 and --no-cache")
    parser.add_argument("--backend", choices=["interp", "vector"],
                        default=None,
                        help="engine backend: the per-op interpreted "
                             "engine (interp, default) or the numpy-backed "
                             "epoch engine (vector; requires the [vector] "
                             "extra). Equivalent to REPRO_BACKEND. Cached "
                             "results are per-backend, so the cache stays "
                             "usable")
    parser.add_argument("--sanitize", action="store_true",
                        help="check MESI+U coherence invariants after "
                             "every memory operation (slow; equivalent "
                             "to REPRO_SANITIZE=1). Implies --no-cache "
                             "so every point is actually simulated")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile; print the top 25 "
                             "functions by cumulative time to stderr")
    parser.add_argument("--profile-out", metavar="FILE", default=None,
                        help="also dump raw cProfile stats to FILE "
                             "(implies --profile)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("\n".join(list_experiments()))
        return 0

    # Make the harness's operational messages (e.g. the small-sweep
    # serial-fallback note) visible without configuring global logging.
    harness_log = logging.getLogger("repro.harness")
    if not harness_log.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("[harness] %(message)s"))
        harness_log.addHandler(handler)
        harness_log.setLevel(logging.INFO)

    if args.backend:
        # Resolved into every PointSpec by make_spec (and therefore into
        # dedupe keys and cache fingerprints), so unlike --sanitize the
        # cache stays valid: vector and interp points are distinct entries.
        # Setting the env var (rather than threading an argument through
        # the experiment registry) also covers any Machine an experiment
        # builds directly.
        from ..sim.vector import BACKEND_ENV

        os.environ[BACKEND_ENV] = args.backend

    if args.sanitize:
        # Worker pools inherit the environment, so the flag reaches every
        # sweep point; cached results were never sanitized, so skip them.
        from ..analysis.sanitizer import SANITIZE_ENV

        os.environ[SANITIZE_ENV] = "1"
        args.no_cache = True

    sink = None
    obs_requested = bool(args.trace_out or args.report_json
                         or args.metrics_out or args.hostprof_out)
    if obs_requested:
        # Same propagation as --sanitize: the env var reaches sweep
        # workers, and cached results carry no obs payload, so skip them.
        from ..obs import OBS_ENV

        os.environ[OBS_ENV] = "1"
        args.no_cache = True
        sink = artifacts.install_sink()

    threads = [int(x) for x in args.threads.split(",") if x]
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        jobs = resolve_jobs(args.jobs)
    except SimulationError as exc:
        print(exc, file=sys.stderr)
        return 2
    if args.serial_threshold is not None:
        # The registry's experiment closures predate the threshold knob;
        # the env var is how run_points picks it up at every sweep.
        os.environ[SERIAL_THRESHOLD_ENV] = str(max(0, args.serial_threshold))

    profiler = None
    if args.profile or args.profile_out:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    from ..obs.hostprof import HARNESS_PROF

    t0 = HARNESS_PROF.start()
    try:
        report = run_experiment(args.experiment, threads=threads,
                                scale=args.scale, jobs=jobs, cache=cache)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    finally:
        HARNESS_PROF.stop("experiment", t0)
        if profiler is not None:
            import pstats

            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
            if args.profile_out:
                stats.dump_stats(args.profile_out)
                print(f"[profile] raw stats written to {args.profile_out}",
                      file=sys.stderr)
    print(report)
    if sink is not None:
        try:
            written = artifacts.write_outputs(
                args.experiment, sink.results, trace_out=args.trace_out,
                report_json=args.report_json, metrics_out=args.metrics_out,
                hostprof_out=args.hostprof_out,
                threads=threads, scale=args.scale)
            for path in written:
                print(f"[obs] wrote {path}", file=sys.stderr)
        finally:
            artifacts.clear_sink()
    if cache is not None:
        print(f"[cache] {cache.hits} hit(s), {cache.misses} miss(es) "
              f"in {cache.directory}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
