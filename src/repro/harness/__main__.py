"""CLI: regenerate any of the paper's experiments by name.

Usage::

    python -m repro.harness --list
    python -m repro.harness fig09
    python -m repro.harness fig16-kmeans --threads 1,8,32 --scale 0.5
"""

from __future__ import annotations

import argparse
import sys

from .experiments import list_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name (see --list)")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--threads", default="1,8,32,128",
                        help="comma-separated thread ladder")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="operation-count multiplier")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        print("\n".join(list_experiments()))
        return 0

    threads = [int(x) for x in args.threads.split(",") if x]
    try:
        report = run_experiment(args.experiment, threads=threads,
                                scale=args.scale)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
