"""Multi-seed aggregation with confidence intervals.

The paper "introduce[s] small amounts of non-determinism, and perform[s]
enough runs to achieve 95% confidence intervals <= 1% on all results"
(Sec. V). This module reproduces that protocol: run a workload across
seeds until the CI shrinks below a target (or a run cap is hit) and report
mean +/- half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

#: Two-sided 97.5% Student-t quantiles for small sample sizes (df 1..30);
#: beyond that the normal quantile is close enough.
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def t_quantile_975(df: int) -> float:
    if df <= 0:
        raise ValueError("need at least two samples")
    if df <= len(_T_975):
        return _T_975[df - 1]
    return 1.96


@dataclass
class CiResult:
    mean: float
    half_width: float
    samples: List[float]

    @property
    def relative(self) -> float:
        """CI half-width as a fraction of the mean."""
        if self.mean == 0:
            return 0.0
        return self.half_width / abs(self.mean)

    def __str__(self) -> str:
        return (f"{self.mean:.1f} ± {self.half_width:.1f} "
                f"({100 * self.relative:.2f}%, n={len(self.samples)})")


def confidence_interval(samples: List[float]) -> CiResult:
    """95% CI of the mean (Student's t)."""
    n = len(samples)
    if n < 2:
        raise ValueError("need at least two samples for a CI")
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = t_quantile_975(n - 1) * math.sqrt(var / n)
    return CiResult(mean=mean, half_width=half, samples=list(samples))


def run_until_confident(measure: Callable[[int], float],
                        target_relative: float = 0.01,
                        min_runs: int = 3, max_runs: int = 20) -> CiResult:
    """Call ``measure(seed)`` with seeds 1..n until the 95% CI half-width
    falls below ``target_relative`` of the mean (the paper's <=1% target)
    or ``max_runs`` is reached."""
    if min_runs < 2:
        raise ValueError("min_runs must be >= 2")
    samples: List[float] = []
    for seed in range(1, max_runs + 1):
        samples.append(measure(seed))
        if len(samples) >= min_runs:
            ci = confidence_interval(samples)
            if ci.relative <= target_relative:
                return ci
    return confidence_interval(samples)
