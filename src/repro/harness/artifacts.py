"""Observability artifacts for harness runs.

The experiment registry's closures return rendered text, not result
objects — good for humans, useless for machines. This module gives the CLI
a side channel: :func:`install_sink` arms a module-level collector,
:func:`notify` is called by the sweep layer (:func:`~repro.harness.
parallel.run_points` and the closure fallback in ``runner._run_calls``)
with every batch of :class:`~repro.harness.runner.ExperimentResult`\\ s it
produces, and :func:`write_outputs` turns the collected points into the
``--trace-out`` / ``--report-json`` / ``--metrics-out`` files after the
experiment's report has printed.

The sink is process-local. Sweep workers never install one — results come
back to the parent through the pool (obs payloads ride along in
``result.info["obs"]``), and the parent's ``run_points`` call notifies.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..obs.hostprof import HARNESS_PROF, HOSTPROF_SCHEMA
from ..obs.perfetto import merge_traces
from ..obs.report import metrics_report, run_report

_sink: Optional["ResultSink"] = None


class ResultSink:
    """Collects every ExperimentResult the sweep layer produces, in
    first-seen order, deduplicating repeated notifications of the same
    object (run_points returns cached/shared results multiple times)."""

    def __init__(self):
        self.results: List = []
        self._seen = set()

    def add(self, results) -> None:
        for result in results:
            if result is None or not hasattr(result, "info"):
                continue
            if id(result) in self._seen:
                continue
            self._seen.add(id(result))
            self.results.append(result)


def install_sink() -> ResultSink:
    global _sink
    _sink = ResultSink()
    return _sink


def clear_sink() -> None:
    global _sink
    _sink = None


def notify(results) -> None:
    """Offer a batch of results to the installed sink (no-op without one)."""
    if _sink is not None:
        _sink.add(results)


# ---------------------------------------------------------------------------
# Writers
# ---------------------------------------------------------------------------

def point_label(result) -> str:
    system = "commtm" if result.commtm else "baseline"
    return f"{result.name} t={result.num_threads} {system}"


def _observed(results) -> List:
    return [r for r in results
            if isinstance(r.info, dict) and "obs" in r.info]


def write_trace(path: str, results) -> None:
    """Merged Chrome/Perfetto trace: one process per observed sweep point."""
    traces = [(point_label(r), r.info["obs"]["trace"])
              for r in _observed(results)]
    with open(path, "w") as fh:
        json.dump(merge_traces(traces), fh)


def write_report(path: str, experiment: str, results, *, threads=None,
                 scale=None) -> None:
    with open(path, "w") as fh:
        json.dump(run_report(experiment, results, threads=threads,
                             scale=scale), fh, indent=2)


def write_metrics(path: str, experiment: str, results) -> None:
    with open(path, "w") as fh:
        json.dump(metrics_report(experiment, results), fh, indent=2)


def write_hostprof(path: str, experiment: str, results) -> None:
    """Host wall-clock accounting: one ``repro-obs-hostprof/1`` section
    per observed sweep point (simulate/verify plus the vector engine's
    epoch/kernel/strict/drain phases when it ran), and the process-wide
    harness accountant (experiment dispatch, result-cache traffic)."""
    points = [{"name": point_label(r),
               "hostprof": r.info["obs"]["hostprof"]}
              for r in _observed(results)
              if "hostprof" in r.info["obs"]]
    doc = {
        "schema": HOSTPROF_SCHEMA,
        "experiment": experiment,
        "harness": HARNESS_PROF.report(),
        "points": points,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2)


def write_outputs(experiment: str, results, *, trace_out=None,
                  report_json=None, metrics_out=None, hostprof_out=None,
                  threads=None, scale=None) -> List[str]:
    """Write every requested artifact; returns the paths written."""
    written = []
    if trace_out:
        write_trace(trace_out, results)
        written.append(trace_out)
    if report_json:
        write_report(report_json, experiment, results, threads=threads,
                     scale=scale)
        written.append(report_json)
    if metrics_out:
        write_metrics(metrics_out, experiment, results)
        written.append(metrics_out)
    if hostprof_out:
        write_hostprof(hostprof_out, experiment, results)
        written.append(hostprof_out)
    return written


__all__ = ["ResultSink", "clear_sink", "install_sink", "notify",
           "point_label", "write_hostprof", "write_metrics",
           "write_outputs", "write_report", "write_trace"]
