"""Experiment harness: run workloads across configurations, aggregate with
confidence intervals, and print the paper's tables and figure series.

``python -m repro.harness <experiment>`` regenerates any figure by name;
``--jobs N`` fans sweep points over worker processes and the on-disk
result cache makes re-renders nearly free (see ``repro.harness.parallel``
and ``repro.harness.cache``).
"""

from .artifacts import (ResultSink, install_sink, clear_sink, notify,
                        write_metrics, write_outputs, write_report,
                        write_trace)
from .cache import ResultCache, default_cache_dir, fingerprint
from .confidence import CiResult, confidence_interval, run_until_confident
from .parallel import (PointSpec, build_path, make_spec, resolve_build,
                       resolve_jobs, run_point, run_points)
from .runner import (ExperimentResult, collect_points, run_built,
                     run_workload, speedup_curve)

__all__ = [
    "ResultSink",
    "install_sink",
    "clear_sink",
    "notify",
    "write_metrics",
    "write_outputs",
    "write_report",
    "write_trace",
    "CiResult",
    "confidence_interval",
    "run_until_confident",
    "ExperimentResult",
    "run_built",
    "run_workload",
    "speedup_curve",
    "collect_points",
    "PointSpec",
    "build_path",
    "make_spec",
    "resolve_build",
    "resolve_jobs",
    "run_point",
    "run_points",
    "ResultCache",
    "default_cache_dir",
    "fingerprint",
]
