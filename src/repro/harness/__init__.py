"""Experiment harness: run workloads across configurations, aggregate with
confidence intervals, and print the paper's tables and figure series.

``python -m repro.harness <experiment>`` regenerates any figure by name.
"""

from .confidence import CiResult, confidence_interval, run_until_confident
from .runner import ExperimentResult, run_built, run_workload, speedup_curve

__all__ = [
    "CiResult",
    "confidence_interval",
    "run_until_confident",
    "ExperimentResult",
    "run_built",
    "run_workload",
    "speedup_curve",
]
