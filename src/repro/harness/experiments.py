"""Experiment registry: every table and figure, runnable by name.

``python -m repro.harness fig09`` regenerates one experiment;
``python -m repro.harness --list`` enumerates them. The pytest-benchmark
suite in ``benchmarks/`` wraps the same definitions with shape assertions;
this module is the direct, human-driven entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..sim.stats import WastedCause
from ..workloads.micro import counter, linked_list, ordered_put, refcount, topk
from ..workloads.apps import boruvka, genome, kmeans, ssca2, vacation
from .parallel import make_spec, run_points
from .runner import speedup_curve
from .report import render_speedup_chart, render_stacked_bars


@dataclass
class Experiment:
    name: str
    description: str
    #: (threads, scale, jobs, cache) -> report
    run: Callable[..., str]


def _speedup_experiment(build, title, systems=None, **params):
    def run(threads: List[int], scale: float, jobs=None, cache=None) -> str:
        kwargs = dict(params)
        if "total_ops" in kwargs:
            kwargs["total_ops"] = max(1, int(kwargs["total_ops"] * scale))
        curves = speedup_curve(build, threads, num_cores=128,
                               systems=systems, jobs=jobs, cache=cache,
                               **kwargs)
        return render_speedup_chart(curves, title)
    return run


def _app_speedup(build, title, **params):
    # Same protocol as the microbenchmark figures: speedup_curve shares
    # the 1-thread baseline run between the denominator and the swept
    # Baseline series instead of simulating it twice.
    def run(threads: List[int], scale: float, jobs=None, cache=None) -> str:
        curves = speedup_curve(build, threads, num_cores=128, jobs=jobs,
                               cache=cache, **params)
        return render_speedup_chart(curves, title)
    return run


#: Stacked-bar column sets per breakdown kind. Fixed up front (not derived
#: from the first simulated row) so an empty thread ladder still renders.
_BREAKDOWN_COLUMNS = {
    "cycles": ("non_tx", "tx_committed", "tx_aborted"),
    "wasted": tuple(cause.value for cause in WastedCause),
    "gets": ("GETS", "GETX", "GETU"),
}


def _breakdown_experiment(build, title, kind, **params):
    def run(threads: List[int], scale: float, jobs=None, cache=None) -> str:
        columns = _BREAKDOWN_COLUMNS[kind]
        specs, labels = [], []
        for t in threads:
            for commtm in (False, True):
                labels.append(f"{'CommTM' if commtm else 'Base'}@{t}")
                specs.append(make_spec(build, t, num_cores=128,
                                       commtm=commtm, **params))
        results = run_points(specs, jobs=jobs, cache=cache)
        rows = {}
        for label, result in zip(labels, results):
            if kind == "cycles":
                rows[label] = result.stats.cycle_breakdown_totals()
            elif kind == "wasted":
                rows[label] = result.stats.wasted_breakdown()
            else:
                rows[label] = result.stats.get_breakdown()
        return render_stacked_bars(rows, columns, title)
    return run


REGISTRY: Dict[str, Experiment] = {}


def _register(name: str, description: str, run: Callable) -> None:
    REGISTRY[name] = Experiment(name, description, run)


_register("fig09", "counter increments speedup",
          _speedup_experiment(counter.build, "Fig. 9 — counter",
                              total_ops=10_000))
_register("fig10", "reference counting speedup (gather ablated)",
          _speedup_experiment(
              refcount.build, "Fig. 10 — refcount",
              systems={
                  "CommTM w/ gather": {"commtm": True},
                  "CommTM w/o gather": {"commtm": True, "use_gather": False},
                  "Baseline": {"commtm": False},
              },
              total_ops=16_000))
_register("fig12a", "linked list, 100% enqueues",
          _speedup_experiment(linked_list.build, "Fig. 12a — enqueues",
                              total_ops=2_000, enqueue_fraction=1.0))
_register("fig12b", "linked list, 50/50 mix",
          _speedup_experiment(linked_list.build, "Fig. 12b — mixed",
                              total_ops=2_000, enqueue_fraction=0.5,
                              prefill=5_120))
_register("fig13", "ordered puts",
          _speedup_experiment(ordered_put.build, "Fig. 13 — ordered puts",
                              total_ops=10_000))
_register("fig14", "top-K insertion",
          _speedup_experiment(topk.build, "Fig. 14 — top-K",
                              total_ops=10_000, k=100))

_APP_PARAMS = {
    "boruvka": (boruvka.build, dict(num_nodes=192)),
    "kmeans": (kmeans.build, dict(num_points=512, clusters=8, iterations=3)),
    "ssca2": (ssca2.build, dict(scale=8, edge_factor=4)),
    "genome": (genome.build, dict(num_segments=2048, gene_length=1024)),
    "vacation": (vacation.build, dict(num_tasks=1536, relations=128)),
}

for _app, (_build, _params) in _APP_PARAMS.items():
    _register(f"fig16-{_app}", f"{_app} speedup",
              _app_speedup(_build, f"Fig. 16 — {_app}", **_params))
    _register(f"fig17-{_app}", f"{_app} cycle breakdown",
              _breakdown_experiment(_build, f"Fig. 17 — {_app}", "cycles",
                                    **_params))
    _register(f"fig18-{_app}", f"{_app} wasted-cycle breakdown",
              _breakdown_experiment(_build, f"Fig. 18 — {_app}", "wasted",
                                    **_params))

for _app in ("boruvka", "kmeans"):
    _build, _params = _APP_PARAMS[_app]
    _register(f"fig19-{_app}", f"{_app} GET-request breakdown",
              _breakdown_experiment(_build, f"Fig. 19 — {_app}", "gets",
                                    **_params))


def run_experiment(name: str, threads: List[int] = None,
                   scale: float = 1.0, jobs: int = None,
                   cache=None) -> str:
    """Run one registered experiment.

    ``jobs`` (worker processes) and ``cache`` (a
    :class:`~repro.harness.cache.ResultCache`) are forwarded to the sweep
    layer; both default to serial, uncached execution.
    """
    if name not in REGISTRY:
        known = ", ".join(sorted(REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}")
    threads = threads if threads is not None else [1, 8, 32, 128]
    return REGISTRY[name].run(threads, scale, jobs=jobs, cache=cache)


def list_experiments() -> List[str]:
    return [f"{e.name:<16} {e.description}" for e in REGISTRY.values()]
