"""On-disk cache of simulated experiment points.

The simulator is deterministic: a :class:`~repro.harness.parallel.PointSpec`
fully determines its :class:`~repro.harness.runner.ExperimentResult`. The
cache therefore keys results by a content fingerprint of the spec —
the SHA-256 of its canonical form plus the package version — and figure
regeneration after the first run costs only unpickling.

Invalidation is structural: anything that changes the canonical form (a
workload parameter, a config override, the seed) or the package version
changes the fingerprint, so stale entries are never *read*; they are merely
left on disk until the directory is cleared.

The cache directory resolves, in order: explicit ``directory`` argument,
``REPRO_CACHE_DIR``, ``$XDG_CACHE_HOME/repro-commtm``, and finally
``~/.cache/repro-commtm``. Corrupt or unreadable entries count as misses.
Writes are atomic (temp file + ``os.replace``), so a sweep interrupted
mid-write never poisons later runs.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from .. import __version__
from ..obs.hostprof import HARNESS_PROF
from .parallel import PointSpec

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    env = os.environ.get(CACHE_DIR_ENV, "").strip()
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-commtm"


def fingerprint(spec: PointSpec) -> str:
    """Content hash identifying a point across processes and sessions."""
    payload = f"{__version__}\n{spec.canonical()}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle-per-point cache under a single directory.

    ``hits``/``misses`` count ``get`` outcomes, ``stores`` counts ``put``
    writes — handy for tests and for the CLI's cache summary.
    """

    def __init__(self, directory: Optional[os.PathLike] = None):
        self.directory = Path(directory) if directory is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, spec: PointSpec) -> Path:
        return self.directory / f"{fingerprint(spec)}.pkl"

    def get(self, spec: PointSpec):
        """Cached result for ``spec``, or None. Never raises on a bad
        entry — a corrupt file is a miss."""
        t0 = HARNESS_PROF.start()
        path = self._path(spec)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        finally:
            HARNESS_PROF.stop("cache_get", t0)
        self.hits += 1
        return result

    def put(self, spec: PointSpec, result) -> None:
        """Store ``result`` atomically; a failed write is non-fatal (the
        point simply stays uncached)."""
        t0 = HARNESS_PROF.start()
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(spec)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix=path.stem, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            return
        finally:
            HARNESS_PROF.stop("cache_put", t0)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for entry in self.directory.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))


__all__ = ["CACHE_DIR_ENV", "ResultCache", "default_cache_dir",
           "fingerprint"]
