"""Plain-text rendering of experiment results.

The paper's figures are speedup curves and stacked-bar breakdowns; these
helpers render both as ASCII so every experiment's output is readable in a
terminal and diffable in version control.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Characters used for the per-series markers in ASCII charts.
MARKERS = "o*x+#@%&"


def render_speedup_chart(curves: Dict[str, Dict[int, float]],
                         title: str = "", height: int = 16,
                         width: int = 60) -> str:
    """Render speedup-vs-threads curves as an ASCII chart.

    The x axis is thread count (linear in rank, labelled with the actual
    counts); the y axis is speedup, scaled to the maximum observed.
    """
    if not curves:
        return title
    threads = sorted(next(iter(curves.values())).keys())
    max_speedup = max(max(series.values()) for series in curves.values())
    max_speedup = max(max_speedup, 1.0)

    grid = [[" "] * width for _ in range(height)]
    xs = _spread(len(threads), width)

    for index, (name, series) in enumerate(curves.items()):
        marker = MARKERS[index % len(MARKERS)]
        for rank, t in enumerate(threads):
            y = series[t] / max_speedup
            row = height - 1 - int(round(y * (height - 1)))
            row = min(max(row, 0), height - 1)
            grid[row][xs[rank]] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        level = max_speedup * (height - 1 - i) / (height - 1)
        lines.append(f"{level:7.1f} |" + "".join(row))
    axis = [" "] * width
    labels = [" "] * width
    for rank, t in enumerate(threads):
        axis[xs[rank]] = "+"
        text = str(t)
        start = min(xs[rank], width - len(text))
        for j, ch in enumerate(text):
            labels[start + j] = ch
    lines.append(" " * 8 + "+" + "".join(axis))
    lines.append(" " * 9 + "".join(labels) + "  (threads)")
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}"
        for i, name in enumerate(curves)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def render_stacked_bars(rows: Dict[str, Dict[str, float]],
                        columns: Sequence[str], title: str = "",
                        width: int = 50) -> str:
    """Render per-config stacked bars (Fig. 17/18/19 style).

    Each row is one configuration; segment lengths are proportional to the
    column values, all scaled to the largest row total.
    """
    if not rows:
        return title
    totals = {name: sum(values.get(c, 0) for c in columns)
              for name, values in rows.items()}
    biggest = max(totals.values()) or 1.0
    seg_chars = "#=-.~^"

    lines: List[str] = []
    if title:
        lines.append(title)
    name_w = max(len(n) for n in rows)
    for name, values in rows.items():
        bar = ""
        for i, column in enumerate(columns):
            frac = values.get(column, 0) / biggest
            bar += seg_chars[i % len(seg_chars)] * int(round(frac * width))
        lines.append(f"{name:<{name_w}} |{bar:<{width}}| "
                     f"{totals[name]:.3f}")
    legend = "   ".join(
        f"{seg_chars[i % len(seg_chars)]} {c}" for i, c in enumerate(columns)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def _spread(n: int, width: int) -> List[int]:
    """n column positions spread across [0, width)."""
    if n == 1:
        return [width // 2]
    return [int(round(i * (width - 1) / (n - 1))) for i in range(n)]
