"""Parallel sweep execution.

Experiments are sweeps: the same workload builder simulated at many
(thread-count, system-flag) points, each on a fresh machine. The points are
fully independent, so the harness describes each one as a self-contained,
picklable :class:`PointSpec` and fans the specs over a persistent process
pool. Results are merged back *in spec order*, so a parallel sweep
produces byte-identical reports to a serial one — parallelism only changes
wall-clock time, never output.

Key design points:

* **Builders travel by reference.** A spec stores the workload builder as a
  ``"module:qualname"`` path, not a function object, so specs pickle
  cheaply and identically across processes. All registry builders
  (``repro.workloads.*.build``) are module-level and resolvable this way.
* **Dedupe before dispatch.** Identical specs (same canonical form) are
  simulated once and the result is shared between all requesting positions.
  This is what makes the 1-thread baseline of a speedup curve free when it
  also appears as a swept point.
* **Deterministic merge.** ``pool.map`` preserves input order; combined
  with the canonical dedupe the merge is a pure function of the spec list.
* **The pool is persistent and pays for itself.** Workers are created once
  per host process (``forkserver`` with the simulator preloaded, falling
  back to ``fork``, then ``spawn``) and reused across sweeps, so repeated
  sweeps never pay interpreter + import startup per task. Every worker
  runs a warmup initializer that imports the simulator stack at creation,
  so even ``spawn`` workers are hot before the first spec arrives;
  :func:`warm_pool` lets callers pay the whole pool startup outside any
  timed region. Sweeps smaller than a configurable threshold
  (:data:`DEFAULT_SERIAL_THRESHOLD`, override with
  ``REPRO_SERIAL_THRESHOLD`` or the ``serial_threshold`` argument) run
  serially instead — small sweeps never regress behind pool dispatch.
* **Adaptive chunk sizing.** Spec costs within one sweep routinely differ
  by an order of magnitude (an 8-thread contended point vs its 1-thread
  baseline), so fixed-size chunks leave workers idle behind the worst
  chunk. Specs are instead packed into one bucket per worker by
  longest-processing-time greedy assignment over a cost estimate
  (:func:`estimate_cost`), so each worker gets one balanced batch and the
  per-task dispatch/pickle overhead is paid ``jobs`` times, not once per
  point.
"""

from __future__ import annotations

import atexit
import dataclasses
import importlib
import logging
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..params import SystemConfig

log = logging.getLogger("repro.harness")

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable overriding the serial-fallback threshold.
SERIAL_THRESHOLD_ENV = "REPRO_SERIAL_THRESHOLD"

#: Sweeps with fewer uncached unique points than this run serially even
#: when ``jobs > 1``: dispatching a handful of points through the pool
#: costs more than it saves (BENCH_sim_throughput.json once recorded an
#: 8-point sweep at 0.37s serial vs 0.93s under a cold 4-worker pool).
DEFAULT_SERIAL_THRESHOLD = 10

#: Modules the forkserver imports *once* before any worker forks from it;
#: workers then inherit the fully-imported simulator for free. The list is
#: deliberately the harness entry point (which pulls in the whole
#: ``repro`` package transitively) rather than an exhaustive enumeration.
POOL_PRELOAD_MODULES = ["repro.harness.runner"]


def build_path(build: Callable) -> str:
    """``"module:qualname"`` path of a module-level workload builder.

    Raises :class:`SimulationError` for lambdas, closures, or anything else
    that does not round-trip through :func:`resolve_build` — those can still
    be run, just not through the parallel/cached layer.
    """
    module = getattr(build, "__module__", None)
    qualname = getattr(build, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise SimulationError(
            f"workload builder {build!r} is not addressable as "
            f"module:qualname (lambda or closure?)"
        )
    path = f"{module}:{qualname}"
    if resolve_build(path) is not build:
        raise SimulationError(
            f"workload builder {build!r} does not resolve back from {path!r}"
        )
    return path


def resolve_build(path: str) -> Callable:
    """Inverse of :func:`build_path`."""
    module, _, qualname = path.partition(":")
    obj = importlib.import_module(module)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


@dataclass(frozen=True)
class PointSpec:
    """One experiment point, self-describing and picklable.

    Mirrors the keyword surface of :func:`repro.harness.runner.run_workload`;
    ``params`` holds the workload builder's keyword arguments as a sorted
    tuple of pairs so equal specs compare (and hash) equal.
    """

    build: str                      # "module:qualname" of the builder
    num_threads: int
    num_cores: int = 128
    commtm: Optional[bool] = None
    gather: Optional[bool] = None
    seed: int = 1
    base_config: Optional[SystemConfig] = None
    verify: bool = True
    params: Tuple[Tuple[str, object], ...] = ()
    #: Effective engine backend ("interp" or "vector"). Always resolved at
    #: spec creation (:func:`make_spec`), never None in a built spec, so an
    #: env-selected backend lands in the canonical form — and therefore in
    #: the result-cache fingerprint — and so pool workers run the backend
    #: the parent resolved, whatever their own environment says.
    backend: str = "interp"

    def canonical(self) -> str:
        """Deterministic textual form: dedupe key and cache-fingerprint
        input. Two specs with the same canonical form simulate the same
        point."""
        if self.base_config is None:
            config_repr = "None"
        else:
            config_repr = repr(dataclasses.asdict(self.base_config))
        param_repr = ";".join(f"{k}={v!r}" for k, v in self.params)
        return (
            f"build={self.build}|threads={self.num_threads}"
            f"|cores={self.num_cores}|commtm={self.commtm}"
            f"|gather={self.gather}|seed={self.seed}"
            f"|verify={self.verify}|config={config_repr}"
            f"|params={param_repr}|backend={self.backend}"
        )


def make_spec(build: Callable, num_threads: int, *,
              num_cores: int = 128, commtm: Optional[bool] = None,
              gather: Optional[bool] = None, seed: int = 1,
              base_config: Optional[SystemConfig] = None,
              verify: bool = True, backend: Optional[str] = None,
              **params) -> PointSpec:
    """Spec for one :func:`run_workload`-style invocation.

    The backend is resolved *here* (explicit argument beats
    ``REPRO_BACKEND`` beats the interpreted default), so the spec — and
    with it the dedupe key and the result-cache fingerprint — always names
    the engine that will actually run the point.
    """
    from ..sim.vector import resolve_backend

    return PointSpec(
        build=build_path(build),
        num_threads=num_threads,
        num_cores=num_cores,
        commtm=commtm,
        gather=gather,
        seed=seed,
        base_config=base_config,
        verify=verify,
        params=tuple(sorted(params.items())),
        backend=resolve_backend(backend),
    )


def run_point(spec: PointSpec):
    """Simulate one point. Top-level so pool workers can import it."""
    from .runner import run_workload  # deferred: runner imports us

    return run_workload(
        resolve_build(spec.build), spec.num_threads,
        num_cores=spec.num_cores, commtm=spec.commtm, gather=spec.gather,
        seed=spec.seed, base_config=spec.base_config, verify=spec.verify,
        backend=spec.backend,
        **dict(spec.params),
    )


def estimate_cost(spec: PointSpec) -> int:
    """Relative cost estimate for one spec, for load balancing only.

    Simulated work scales with how many ops each thread issues times how
    many threads issue them, so ``total_ops * num_threads`` (with the
    micro default of 1000 when the builder has no such knob) tracks the
    real wall-clock ordering well enough for bucket packing. Estimates
    only need to get the *ranking* roughly right — the LPT packing in
    :func:`partition_specs` is what turns them into balanced buckets.
    """
    params = dict(spec.params)
    total_ops = params.get("total_ops") or 1000
    return max(1, int(total_ops) * max(1, spec.num_threads))


def partition_specs(specs: Sequence[PointSpec],
                    buckets: int) -> List[List[int]]:
    """Pack spec indices into at most ``buckets`` cost-balanced buckets.

    Longest-processing-time greedy: visit specs in descending estimated
    cost, always appending to the currently lightest bucket. Returns the
    non-empty buckets; each inner list holds indices into ``specs`` in
    descending-cost order, so every worker starts with its heaviest point
    while the others are still being dispatched.
    """
    buckets = max(1, min(buckets, len(specs)))
    loads = [0] * buckets
    out: List[List[int]] = [[] for _ in range(buckets)]
    order = sorted(range(len(specs)),
                   key=lambda i: estimate_cost(specs[i]), reverse=True)
    for i in order:
        b = loads.index(min(loads))
        out[b].append(i)
        loads[b] += estimate_cost(specs[i])
    return [bucket for bucket in out if bucket]


def run_bucket(specs: Sequence[PointSpec]) -> List:
    """Simulate a bucket of specs in order. Top-level for pool pickling."""
    return [run_point(spec) for spec in specs]


def _available_cpus() -> int:
    """CPUs this process may actually run on — the scheduler affinity
    mask where the platform exposes one (containers and cgroup quotas
    shrink it below ``os.cpu_count()``), else ``os.cpu_count()``."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument, else ``REPRO_JOBS``, else
    ``os.cpu_count()``. Always at least 1."""
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise SimulationError(
                    f"{JOBS_ENV}={env!r} is not an integer"
                ) from None
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_serial_threshold(threshold: Optional[int] = None) -> int:
    """Serial-fallback point count: explicit argument, else
    ``REPRO_SERIAL_THRESHOLD``, else :data:`DEFAULT_SERIAL_THRESHOLD`.
    ``0`` disables the fallback entirely."""
    if threshold is None:
        env = os.environ.get(SERIAL_THRESHOLD_ENV, "").strip()
        if env:
            try:
                threshold = int(env)
            except ValueError:
                raise SimulationError(
                    f"{SERIAL_THRESHOLD_ENV}={env!r} is not an integer"
                ) from None
        else:
            threshold = DEFAULT_SERIAL_THRESHOLD
    return max(0, int(threshold))


# --- persistent worker pool -------------------------------------------------
#
# One pool per host process, created on first parallel sweep and reused for
# every later one (rebuilt only if a different ``jobs`` is requested).
# ``forkserver`` + preload means worker startup is a bare fork of an
# already-imported interpreter; cold spawn startup is paid at most once.

_pool = None
_pool_jobs = 0


def _main_reimport_safe() -> bool:
    """Can ``forkserver``/``spawn`` workers re-import ``__main__``?

    Both start methods replay the parent's ``__main__`` in the worker
    (``multiprocessing.spawn.prepare``). That replay crashes — and the
    pool hangs — when the parent was fed from stdin or another
    non-importable pseudo-file, so those parents must use ``fork``.
    """
    import sys

    main = sys.modules.get("__main__")
    if main is None or getattr(main, "__spec__", None) is not None:
        return True  # ``python -m ...``: re-imported by module name
    path = getattr(main, "__file__", None)
    if path is None:
        return True  # interactive: no main replay is attempted
    return os.path.exists(path)


def _pool_context():
    """Best multiprocessing context available on this platform."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    reimport_ok = _main_reimport_safe()
    if "forkserver" in methods and reimport_ok:
        ctx = multiprocessing.get_context("forkserver")
        ctx.set_forkserver_preload(list(POOL_PRELOAD_MODULES))
        return ctx
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    if not reimport_ok:
        raise SimulationError(
            "parallel sweeps need an importable __main__ module on "
            "platforms without fork; run with jobs=1"
        )
    return multiprocessing.get_context("spawn")


def _worker_warmup() -> None:
    """Pool initializer: import the simulator stack in the worker at
    creation time, so the first real spec never pays import cost. A no-op
    under ``fork``/``forkserver`` (the modules arrive pre-imported); under
    ``spawn`` this moves the cold import out of the first sweep."""
    for module in POOL_PRELOAD_MODULES:
        importlib.import_module(module)


def get_pool(jobs: int):
    """The persistent worker pool, (re)built for ``jobs`` workers."""
    global _pool, _pool_jobs
    if _pool is not None and _pool_jobs != jobs:
        shutdown_pool()
    if _pool is None:
        _pool = _pool_context().Pool(processes=jobs,
                                     initializer=_worker_warmup)
        _pool_jobs = jobs
    return _pool


def warm_pool(jobs: Optional[int] = None) -> None:
    """Create the pool for ``jobs`` workers and wait until every worker
    is alive and warm. Benchmarks and interactive callers use this to pay
    the whole one-time pool startup outside their timed region; sweeps
    after it observe only steady-state dispatch cost. Each warmup task
    blocks briefly on a rendezvous so one worker cannot drain them all
    while its siblings are still booting."""
    workers = min(resolve_jobs(jobs), _available_cpus())
    if workers <= 1:
        return  # sweeps will run serially; there is nothing to warm
    pool = get_pool(workers)
    pool.map(_warm_task, [0.02] * workers, 1)


def _warm_task(hold_seconds: float) -> int:
    """Warmup task: hold the worker just long enough that the remaining
    warmup tasks land on its siblings. Top-level for pool pickling."""
    import time

    time.sleep(hold_seconds)
    return os.getpid()


def shutdown_pool() -> None:
    """Tear down the persistent pool (no-op when none exists)."""
    global _pool, _pool_jobs
    if _pool is not None:
        _pool.terminate()
        _pool.join()
        _pool = None
        _pool_jobs = 0


atexit.register(shutdown_pool)


def run_points(specs: Sequence[PointSpec], *, jobs: Optional[int] = None,
               cache=None, serial_threshold: Optional[int] = None) -> List:
    """Simulate every spec; return results aligned with ``specs``.

    Identical specs are simulated once. With ``cache`` (a
    :class:`~repro.harness.cache.ResultCache`), previously simulated points
    are loaded from disk and fresh ones are stored. ``jobs > 1`` fans the
    uncached unique specs over the persistent worker pool in chunks —
    unless fewer than ``serial_threshold`` points remain, in which case
    they run serially (see :func:`resolve_serial_threshold`). The output
    is identical to ``jobs=1`` by construction.
    """
    jobs = resolve_jobs(jobs)

    # Dedupe while preserving first-seen order.
    unique: Dict[str, PointSpec] = {}
    positions: List[str] = []
    for spec in specs:
        key = spec.canonical()
        positions.append(key)
        if key not in unique:
            unique[key] = spec

    results: Dict[str, object] = {}
    todo: List[Tuple[str, PointSpec]] = []
    for key, spec in unique.items():
        hit = cache.get(spec) if cache is not None else None
        if hit is not None:
            results[key] = hit
        else:
            todo.append((key, spec))

    if todo:
        todo_specs = [spec for _, spec in todo]
        n = len(todo_specs)
        threshold = resolve_serial_threshold(serial_threshold)
        # Dispatch width adapts to the CPUs this process can actually
        # use: ``jobs`` is a ceiling, not a promise to oversubscribe.
        # Fanning simulator processes out past the affinity mask only
        # adds context-switch and IPC cost on top of the same serial
        # work (the recorded sweep16 regression was exactly that — a
        # 4-worker pool on a one-CPU host losing to the serial loop).
        workers = min(jobs, _available_cpus())
        if workers > 1 and n > 1 and n >= threshold:
            pool = get_pool(workers)
            # Adaptive chunk sizing: one cost-balanced bucket per worker
            # (LPT over the spec cost estimates) instead of fixed-size
            # chunks — per-task dispatch overhead is paid ``workers``
            # times, not once per point, and no worker idles behind a
            # chunk that happened to collect the expensive points. The
            # dispatching process is a worker too: it simulates the
            # heaviest bucket itself while the pool drains the rest, so
            # that bucket's specs and results never cross a process
            # boundary at all and an otherwise-idle parent core joins
            # the sweep.
            buckets = partition_specs(todo_specs, workers)
            async_out = pool.map_async(
                run_bucket,
                [[todo_specs[i] for i in bucket] for bucket in buckets[1:]],
                1)
            local_out = run_bucket([todo_specs[i] for i in buckets[0]])
            nested = [local_out] + (async_out.get() if buckets[1:] else [])
            outputs = [None] * n
            for bucket, bucket_out in zip(buckets, nested):
                for i, result in zip(bucket, bucket_out):
                    outputs[i] = result
        else:
            if jobs > 1 and workers == 1 and n > 1:
                log.info(
                    "jobs=%d requested but only one CPU is available to "
                    "this process: running serially (an oversubscribed "
                    "pool re-runs the same serial work plus dispatch "
                    "overhead)", jobs,
                )
            elif jobs > 1 and n > 1:
                log.info(
                    "sweep has %d uncached point(s), below the serial "
                    "threshold of %d: running serially (pool dispatch "
                    "would cost more than it saves; set "
                    "%s=0 or serial_threshold=0 to force the pool)",
                    n, threshold, SERIAL_THRESHOLD_ENV,
                )
            outputs = [run_point(spec) for spec in todo_specs]
        for (key, spec), result in zip(todo, outputs):
            results[key] = result
            if cache is not None:
                cache.put(spec, result)

    ordered = [results[key] for key in positions]
    # Offer every produced/loaded result to the artifact sink (a no-op
    # unless the CLI armed one for --trace-out/--report-json/--metrics-out).
    from . import artifacts
    artifacts.notify(ordered)
    return ordered


__all__ = [
    "JOBS_ENV",
    "SERIAL_THRESHOLD_ENV",
    "DEFAULT_SERIAL_THRESHOLD",
    "POOL_PRELOAD_MODULES",
    "PointSpec",
    "build_path",
    "resolve_build",
    "make_spec",
    "run_point",
    "estimate_cost",
    "partition_specs",
    "run_bucket",
    "resolve_jobs",
    "resolve_serial_threshold",
    "get_pool",
    "warm_pool",
    "shutdown_pool",
    "run_points",
]
